//! Property tests for the journal frame codec and the slot-record codec:
//! arbitrary records round-trip bit-exactly, tail truncation always
//! recovers the intact prefix, any corruption is a typed error (never a
//! panic), and whatever `read_journal` returns is a bit-exact prefix of
//! what was written.

use std::fs;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use eotora_durability::{read_journal, DurabilityError, FsyncPolicy, JournalWriter, SlotRecord};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("eotora-jprops-{}-{tag}-{n}", std::process::id()))
}

/// Deterministic payload bytes so expected frames are reproducible from
/// the generated lengths alone.
fn payloads_from(lens: &[usize]) -> Vec<Vec<u8>> {
    lens.iter()
        .enumerate()
        .map(|(i, &n)| (0..n).map(|j| (i * 31 + j * 7 + 3) as u8).collect())
        .collect()
}

fn write_journal(dir: &Path, payloads: &[Vec<u8>], max_segment_bytes: u64) {
    let mut writer = JournalWriter::create(dir, FsyncPolicy::Os, max_segment_bytes).unwrap();
    for p in payloads {
        writer.append(p).unwrap();
    }
    writer.sync().unwrap();
}

/// On-disk byte offset of frame `i`'s header within a single-segment
/// journal ([len u32][crc u32][payload] per frame).
fn frame_offset(lens: &[usize], i: usize) -> u64 {
    lens[..i].iter().map(|&n| 8 + n as u64).sum()
}

fn flip_byte(dir: &Path, offset: u64, mask: u8) {
    let segment = dir.join("journal-000000.log");
    let mut file = fs::OpenOptions::new().read(true).write(true).open(&segment).unwrap();
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(offset)).unwrap();
    file.read_exact(&mut byte).unwrap();
    byte[0] ^= mask;
    file.seek(SeekFrom::Start(offset)).unwrap();
    file.write_all(&byte).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    /// Slot records with arbitrary bit patterns (including NaNs and
    /// infinities, which `PartialEq` cannot compare) survive
    /// encode → decode → encode with identical bytes.
    #[test]
    fn slot_records_roundtrip_bit_exactly(
        slot in 0u64..u64::MAX,
        bits in prop::collection::vec(0u64..u64::MAX, 9..10),
        stations in prop::collection::vec(0u32..64, 0..40),
        stage_parts in prop::collection::vec((0u64..u64::MAX, 0u8..26, 1usize..9), 0..6),
    ) {
        let stages: Vec<(String, f64)> = stage_parts
            .iter()
            .map(|&(b, c, n)| {
                let letter = (b'a' + c) as char;
                (letter.to_string().repeat(n), f64::from_bits(b))
            })
            .collect();
        let record = SlotRecord {
            slot,
            latency_s: f64::from_bits(bits[0]),
            cost_usd: f64::from_bits(bits[1]),
            queue: f64::from_bits(bits[2]),
            price: f64::from_bits(bits[3]),
            solve_time_s: f64::from_bits(bits[4]),
            fairness: f64::from_bits(bits[5]),
            handover_rate: f64::from_bits(bits[6]),
            mean_clock_ghz: f64::from_bits(bits[7]),
            rounds_used: f64::from_bits(bits[8]),
            stations,
            stages,
        };
        let encoded = record.encode();
        let decoded = match SlotRecord::decode(&encoded) {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e}"))),
        };
        prop_assert_eq!(decoded.encode(), encoded);
    }

    /// Truncated slot-record payloads decode to a typed error, never a
    /// panic or an over-allocation.
    #[test]
    fn truncated_slot_records_are_typed_errors(
        stations in prop::collection::vec(0u32..64, 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let record = SlotRecord {
            slot: 7,
            latency_s: 0.1,
            cost_usd: 0.2,
            queue: 0.3,
            price: 0.4,
            solve_time_s: 0.5,
            fairness: 0.6,
            handover_rate: 0.7,
            mean_clock_ghz: 0.8,
            rounds_used: 2.0,
            stations,
            stages: vec![("p2a".to_owned(), 1.5)],
        };
        let encoded = record.encode();
        let keep = ((encoded.len() as f64) * cut_frac) as usize;
        let keep = keep.min(encoded.len() - 1);
        match SlotRecord::decode(&encoded[..keep]) {
            Err(DurabilityError::CorruptRecord { .. }) => {}
            Ok(_) => prop_assert!(false, "decoded a truncated record ({keep} bytes)"),
            Err(e) => prop_assert!(false, "wrong error kind: {e}"),
        }
    }

    /// Journals split across arbitrary segment sizes read back every frame
    /// in order.
    #[test]
    fn multi_segment_journals_read_back_in_order(
        lens in prop::collection::vec(0usize..30, 1..16),
        max_segment in 16u64..128,
    ) {
        let dir = temp_dir("segments");
        let payloads = payloads_from(&lens);
        write_journal(&dir, &payloads, max_segment);
        let readback = read_journal(&dir).unwrap();
        prop_assert_eq!(&readback.frames, &payloads);
        prop_assert_eq!(readback.torn_frames_dropped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Truncating anywhere inside the final frame — header or payload, as
    /// a crash mid-append would — silently drops exactly that frame.
    #[test]
    fn tail_truncation_drops_exactly_the_torn_frame(
        lens in prop::collection::vec(0usize..50, 2..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = temp_dir("tail");
        let payloads = payloads_from(&lens);
        write_journal(&dir, &payloads, u64::MAX);
        let segment = dir.join("journal-000000.log");
        let size = fs::metadata(&segment).unwrap().len();
        let last_frame_bytes = 8 + *lens.last().unwrap() as u64;
        // Cut 1..last_frame_bytes bytes: always tears the final frame,
        // never reaches the one before it.
        let cut = 1 + ((last_frame_bytes - 1) as f64 * cut_frac) as u64;
        let cut = cut.min(last_frame_bytes - 1).max(1);
        fs::OpenOptions::new().write(true).open(&segment).unwrap().set_len(size - cut).unwrap();
        let readback = read_journal(&dir).unwrap();
        prop_assert_eq!(&readback.frames, &payloads[..payloads.len() - 1]);
        prop_assert_eq!(readback.torn_frames_dropped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A bit flip in a non-final frame's payload is a typed
    /// `CorruptFrame` naming that frame — valid bytes follow, so it can
    /// never be mistaken for a torn tail.
    #[test]
    fn mid_log_payload_flip_is_a_typed_error(
        lens in prop::collection::vec(1usize..50, 3..10),
        frame_frac in 0.0f64..1.0,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = temp_dir("midlog");
        let payloads = payloads_from(&lens);
        write_journal(&dir, &payloads, u64::MAX);
        let target = ((lens.len() - 1) as f64 * frame_frac) as usize;
        let target = target.min(lens.len() - 2);
        let within = ((lens[target] as f64) * byte_frac) as u64;
        let within = within.min(lens[target] as u64 - 1);
        flip_byte(&dir, frame_offset(&lens, target) + 8 + within, 1 << bit);
        match read_journal(&dir) {
            Err(DurabilityError::CorruptFrame { frame, .. }) => {
                prop_assert_eq!(frame, target as u64);
            }
            Ok(_) => prop_assert!(false, "corruption in frame {target} went undetected"),
            Err(e) => prop_assert!(false, "wrong error kind: {e}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A bit flip anywhere — header, CRC, or payload of any frame — never
    /// panics: recovery either returns a bit-exact prefix of the written
    /// frames (dropping at most one torn tail) or a typed corruption
    /// error.
    #[test]
    fn arbitrary_bit_flip_never_panics_and_yields_a_prefix(
        lens in prop::collection::vec(0usize..40, 1..8),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = temp_dir("anyflip");
        let payloads = payloads_from(&lens);
        write_journal(&dir, &payloads, u64::MAX);
        let segment = dir.join("journal-000000.log");
        let size = fs::metadata(&segment).unwrap().len();
        let offset = ((size as f64) * pos_frac) as u64;
        flip_byte(&dir, offset.min(size - 1), 1 << bit);
        match read_journal(&dir) {
            Ok(readback) => {
                prop_assert!(readback.torn_frames_dropped <= 1);
                prop_assert!(readback.frames.len() <= payloads.len());
                for (got, want) in readback.frames.iter().zip(&payloads) {
                    prop_assert_eq!(got, want);
                }
            }
            Err(DurabilityError::CorruptFrame { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
