//! Binary codec for the per-slot journal payload.
//!
//! One [`SlotRecord`] is appended to the write-ahead journal after every
//! completed slot: the slot's headline outputs (`T_t`, `C_t`, `Q_t`, price,
//! fairness, handover, mean clock), the decision digest needed to continue
//! the run's derived series (the per-device base-station assignment), the
//! BDMA rounds executed, and the per-stage solver timings. Every `f64`
//! round-trips bit-exactly (`to_bits`/`from_bits`), so a resumed run's
//! reconstructed series are indistinguishable from the uninterrupted run's.
//!
//! Layout (little-endian):
//!
//! ```text
//! slot          u64
//! latency_s     f64      cost_usd      f64      queue        f64
//! price         f64      solve_time_s  f64      fairness     f64
//! handover_rate f64      mean_clock_ghz f64     rounds_used  f64
//! stations_len  u32, then stations_len × u32 (per-device base station)
//! stages_len    u32, then per stage: name_len u16, name bytes, seconds f64
//! ```
//!
//! Decoding is fully bounds-checked and must consume the payload exactly;
//! any violation is a typed [`DurabilityError::CorruptRecord`], never a
//! panic or an over-allocation (length fields are validated against the
//! bytes actually present before any buffer is reserved).

use crate::error::DurabilityError;

/// Everything the simulation runner needs to replay one completed slot
/// without re-executing it.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotRecord {
    /// Slot index `t`.
    pub slot: u64,
    /// Fleet latency `T_t` (seconds).
    pub latency_s: f64,
    /// Energy cost `C_t` (dollars).
    pub cost_usd: f64,
    /// Virtual-queue backlog `Q(t+1)` after the slot.
    pub queue: f64,
    /// Electricity price `p_t` ($/kWh) after sanitization.
    pub price: f64,
    /// Wall-clock solve time of the slot (seconds; informational only —
    /// never part of bit-identity claims).
    pub solve_time_s: f64,
    /// Jain's fairness index of per-device latencies.
    pub fairness: f64,
    /// Fraction of devices that changed base station vs the previous slot.
    pub handover_rate: f64,
    /// Fleet mean clock frequency (GHz).
    pub mean_clock_ghz: f64,
    /// BDMA alternation rounds executed (0 if BDMA never ran).
    pub rounds_used: f64,
    /// Per-device base-station assignment — the decision digest that lets
    /// a resumed run compute the next slot's handover rate.
    pub stations: Vec<u32>,
    /// Seconds spent per instrumented solver stage this slot.
    pub stages: Vec<(String, f64)>,
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn corrupt(reason: impl Into<String>) -> DurabilityError {
    DurabilityError::CorruptRecord { reason: reason.into() }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DurabilityError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt(format!("length overflow reading {what}")))?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| corrupt(format!("truncated record: missing {what}")))?;
        self.pos = end;
        Ok(slice)
    }

    fn u16_le(&mut self, what: &str) -> Result<u16, DurabilityError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32_le(&mut self, what: &str) -> Result<u32, DurabilityError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64_le(&mut self, what: &str) -> Result<u64, DurabilityError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64_le(&mut self, what: &str) -> Result<f64, DurabilityError> {
        Ok(f64::from_bits(self.u64_le(what)?))
    }

    /// Validates that `count` items of `item_bytes` each can still fit in
    /// the remaining input, so corrupt length fields never over-allocate.
    fn check_capacity(
        &self,
        count: usize,
        item_bytes: usize,
        what: &str,
    ) -> Result<(), DurabilityError> {
        let need = count
            .checked_mul(item_bytes)
            .ok_or_else(|| corrupt(format!("length overflow reading {what}")))?;
        if self.bytes.len() - self.pos < need {
            return Err(corrupt(format!(
                "{what} declares {count} item(s) but only {} byte(s) remain",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl SlotRecord {
    /// Encodes the record into the journal-frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 + 9 * 8
                + 4
                + 4 * self.stations.len()
                + 4
                + self.stages.iter().map(|(n, _)| 2 + n.len() + 8).sum::<usize>(),
        );
        out.extend_from_slice(&self.slot.to_le_bytes());
        put_f64(&mut out, self.latency_s);
        put_f64(&mut out, self.cost_usd);
        put_f64(&mut out, self.queue);
        put_f64(&mut out, self.price);
        put_f64(&mut out, self.solve_time_s);
        put_f64(&mut out, self.fairness);
        put_f64(&mut out, self.handover_rate);
        put_f64(&mut out, self.mean_clock_ghz);
        put_f64(&mut out, self.rounds_used);
        out.extend_from_slice(&(self.stations.len() as u32).to_le_bytes());
        for &s in &self.stations {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&(self.stages.len() as u32).to_le_bytes());
        for (name, seconds) in &self.stages {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            put_f64(&mut out, *seconds);
        }
        out
    }

    /// Decodes a record, consuming `bytes` exactly. All length fields are
    /// validated before allocation; failures are typed, never panics.
    pub fn decode(bytes: &[u8]) -> Result<Self, DurabilityError> {
        let mut c = Cursor { bytes, pos: 0 };
        let slot = c.u64_le("slot")?;
        let latency_s = c.f64_le("latency_s")?;
        let cost_usd = c.f64_le("cost_usd")?;
        let queue = c.f64_le("queue")?;
        let price = c.f64_le("price")?;
        let solve_time_s = c.f64_le("solve_time_s")?;
        let fairness = c.f64_le("fairness")?;
        let handover_rate = c.f64_le("handover_rate")?;
        let mean_clock_ghz = c.f64_le("mean_clock_ghz")?;
        let rounds_used = c.f64_le("rounds_used")?;
        let stations_len = c.u32_le("stations_len")? as usize;
        c.check_capacity(stations_len, 4, "stations")?;
        let mut stations = Vec::with_capacity(stations_len);
        for _ in 0..stations_len {
            stations.push(c.u32_le("station")?);
        }
        let stages_len = c.u32_le("stages_len")? as usize;
        // A stage needs at least its name-length prefix and the seconds.
        c.check_capacity(stages_len, 2 + 8, "stages")?;
        let mut stages = Vec::with_capacity(stages_len);
        for _ in 0..stages_len {
            let name_len = c.u16_le("stage name length")? as usize;
            let name_bytes = c.take(name_len, "stage name")?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| corrupt("stage name is not valid UTF-8"))?
                .to_owned();
            let seconds = c.f64_le("stage seconds")?;
            stages.push((name, seconds));
        }
        if c.pos != bytes.len() {
            return Err(corrupt(format!(
                "{} trailing byte(s) after a complete record",
                bytes.len() - c.pos
            )));
        }
        Ok(Self {
            slot,
            latency_s,
            cost_usd,
            queue,
            price,
            solve_time_s,
            fairness,
            handover_rate,
            mean_clock_ghz,
            rounds_used,
            stations,
            stages,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn sample() -> SlotRecord {
        SlotRecord {
            slot: 41,
            latency_s: 1.2345678901234567,
            cost_usd: 0.1 + 0.2, // deliberately not exactly 0.3
            queue: 7.25,
            price: 0.055,
            solve_time_s: 3.2e-4,
            fairness: 0.99999999999,
            handover_rate: 0.125,
            mean_clock_ghz: 2.4000000000000004,
            rounds_used: 2.0,
            stations: vec![0, 3, 1, 1, 2],
            stages: vec![
                ("p2a".into(), 1e-4),
                ("p2b".into(), 2.5e-5),
                ("queue_update".into(), 0.0),
            ],
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let rec = sample();
        let back = SlotRecord::decode(&rec.encode()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.cost_usd.to_bits(), rec.cost_usd.to_bits());
    }

    #[test]
    fn round_trips_non_finite_floats() {
        let mut rec = sample();
        rec.latency_s = f64::NAN;
        rec.queue = f64::INFINITY;
        rec.fairness = -0.0;
        let back = SlotRecord::decode(&rec.encode()).unwrap();
        assert_eq!(back.latency_s.to_bits(), rec.latency_s.to_bits());
        assert_eq!(back.queue.to_bits(), rec.queue.to_bits());
        assert_eq!(back.fairness.to_bits(), rec.fairness.to_bits());
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            match SlotRecord::decode(&bytes[..cut]) {
                Err(DurabilityError::CorruptRecord { .. }) => {}
                other => panic!("cut at {cut}: expected CorruptRecord, got {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_a_typed_error() {
        let mut bytes = sample().encode();
        bytes.push(0xAB);
        assert!(matches!(SlotRecord::decode(&bytes), Err(DurabilityError::CorruptRecord { .. })));
    }

    #[test]
    fn huge_declared_lengths_do_not_allocate() {
        let mut bytes = sample().encode();
        // Overwrite stations_len (at offset 8 + 9*8 = 80) with u32::MAX.
        bytes[80..84].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(SlotRecord::decode(&bytes), Err(DurabilityError::CorruptRecord { .. })));
    }

    #[test]
    fn empty_collections_round_trip() {
        let rec = SlotRecord { stations: vec![], stages: vec![], ..sample() };
        assert_eq!(SlotRecord::decode(&rec.encode()).unwrap(), rec);
    }
}
