//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! shared by the snapshot header and every journal frame.
//!
//! Hand-rolled table-driven implementation so the offline build needs no
//! external crate; the standard check value `crc32(b"123456789") ==
//! 0xCBF4_3926` is pinned in tests.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (IEEE, init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let base = b"energy-aware online task offloading".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
