//! Versioned, self-describing, atomically-written snapshot files.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic        8 bytes   b"EOTSNAP\0"
//! version      u32       format version (currently 1)
//! schema_len   u32       length of the schema identifier
//! schema       bytes     UTF-8 schema identifier (e.g. "eotora.run.v1")
//! payload_len  u64       length of the payload
//! payload_crc  u32       CRC-32 (IEEE) of the payload
//! payload      bytes     opaque producer-defined state
//! ```
//!
//! Writes are atomic: the full file is assembled in memory, written to a
//! `.tmp` sibling, fsynced, renamed over the target, and the containing
//! directory is fsynced — a crash at any point leaves either the old
//! snapshot or the new one, never a torn mix. Reads validate magic,
//! version, schema, lengths, and CRC before a single payload byte is
//! handed back.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::crc::crc32;
use crate::error::DurabilityError;

/// Current snapshot format version. Bump on any layout change; readers
/// reject anything newer than what they were built against.
pub const SNAPSHOT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"EOTSNAP\0";

/// Writes `bytes` to `path` atomically: temp-file sibling, fsync, rename,
/// directory fsync. Safe against crashes at any point in the sequence.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), DurabilityError> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp).map_err(|e| DurabilityError::io(&tmp, &e))?;
        file.write_all(bytes).map_err(|e| DurabilityError::io(&tmp, &e))?;
        file.sync_all().map_err(|e| DurabilityError::io(&tmp, &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| DurabilityError::io(path, &e))?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself (the directory entry). Some platforms
        // refuse to open a directory for writing; the rename is still
        // ordered after the data sync there, so ignore only that failure.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Writes a snapshot of `payload` under `schema` to `path`, atomically.
pub fn write_snapshot(path: &Path, schema: &str, payload: &[u8]) -> Result<(), DurabilityError> {
    let mut bytes = Vec::with_capacity(8 + 4 + 4 + schema.len() + 8 + 4 + payload.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(schema.len() as u32).to_le_bytes());
    bytes.extend_from_slice(schema.as_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    write_atomic(path, &bytes)
}

fn corrupt(path: &Path, reason: impl Into<String>) -> DurabilityError {
    DurabilityError::CorruptSnapshot { path: path.display().to_string(), reason: reason.into() }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u32_le(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64_le(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

/// Reads and validates the snapshot at `path`, returning its payload.
/// `schema` must match the identifier the snapshot was written under.
pub fn read_snapshot(path: &Path, schema: &str) -> Result<Vec<u8>, DurabilityError> {
    let bytes = fs::read(path).map_err(|e| DurabilityError::io(path, &e))?;
    let mut r = Reader { bytes: &bytes, pos: 0 };
    let magic = r.take(MAGIC.len()).ok_or_else(|| corrupt(path, "truncated header"))?;
    if magic != MAGIC {
        return Err(corrupt(path, "bad magic (not an eotora snapshot)"));
    }
    let version = r.u32_le().ok_or_else(|| corrupt(path, "truncated header"))?;
    if version > SNAPSHOT_VERSION {
        return Err(DurabilityError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let schema_len = r.u32_le().ok_or_else(|| corrupt(path, "truncated header"))? as usize;
    if schema_len > 4096 {
        return Err(corrupt(path, format!("implausible schema length {schema_len}")));
    }
    let schema_bytes = r.take(schema_len).ok_or_else(|| corrupt(path, "truncated schema"))?;
    let found = String::from_utf8_lossy(schema_bytes).into_owned();
    if found != schema {
        return Err(DurabilityError::SchemaMismatch { expected: schema.to_owned(), found });
    }
    let payload_len = r.u64_le().ok_or_else(|| corrupt(path, "truncated header"))?;
    let expected_crc = r.u32_le().ok_or_else(|| corrupt(path, "truncated header"))?;
    let remaining = bytes.len() - r.pos;
    if payload_len != remaining as u64 {
        return Err(corrupt(
            path,
            format!("payload length mismatch: header says {payload_len}, file holds {remaining}"),
        ));
    }
    let payload = &bytes[r.pos..];
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(corrupt(
            path,
            format!(
                "payload checksum mismatch: expected {expected_crc:#010x}, got {actual_crc:#010x}"
            ),
        ));
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_file(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("eotora-snap-{}-{tag}-{n}.bin", std::process::id()))
    }

    #[test]
    fn round_trips_payload() {
        let path = temp_file("roundtrip");
        let payload = b"the quick brown fox \x00\x01\x02";
        write_snapshot(&path, "eotora.test.v1", payload).unwrap();
        let back = read_snapshot(&path, "eotora.test.v1").unwrap();
        assert_eq!(back, payload);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_wrong_schema() {
        let path = temp_file("schema");
        write_snapshot(&path, "eotora.a.v1", b"x").unwrap();
        match read_snapshot(&path, "eotora.b.v1") {
            Err(DurabilityError::SchemaMismatch { expected, found }) => {
                assert_eq!(expected, "eotora.b.v1");
                assert_eq!(found, "eotora.a.v1");
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_newer_version() {
        let path = temp_file("version");
        write_snapshot(&path, "s", b"x").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match read_snapshot(&path, "s") {
            Err(DurabilityError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(supported, SNAPSHOT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detects_payload_corruption() {
        let path = temp_file("crc");
        write_snapshot(&path, "s", b"sensitive controller state").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match read_snapshot(&path, "s") {
            Err(DurabilityError::CorruptSnapshot { reason, .. }) => {
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected CorruptSnapshot, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detects_truncation() {
        let path = temp_file("trunc");
        write_snapshot(&path, "s", b"0123456789").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [3, 10, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(read_snapshot(&path, "s"), Err(DurabilityError::CorruptSnapshot { .. })),
                "cut at {cut}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_non_snapshot_file() {
        let path = temp_file("magic");
        std::fs::write(&path, b"{\"this\": \"is json\"}").unwrap();
        assert!(matches!(read_snapshot(&path, "s"), Err(DurabilityError::CorruptSnapshot { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overwrite_replaces_previous_snapshot() {
        let path = temp_file("overwrite");
        write_snapshot(&path, "s", b"first").unwrap();
        write_snapshot(&path, "s", b"second, longer payload").unwrap();
        assert_eq!(read_snapshot(&path, "s").unwrap(), b"second, longer payload");
        std::fs::remove_file(&path).unwrap();
    }
}
