//! Append-only write-ahead slot journal with checksummed framing.
//!
//! A journal is a directory of segment files `journal-000000.log`,
//! `journal-000001.log`, … Each segment holds a sequence of frames:
//!
//! ```text
//! len   u32 LE   payload length (≤ MAX_FRAME_BYTES)
//! crc   u32 LE   CRC-32 (IEEE) of the payload
//! payload bytes
//! ```
//!
//! Writers append one frame per completed slot, rotating to a new segment
//! once the current one exceeds [`DEFAULT_SEGMENT_BYTES`] (configurable),
//! and fsync according to an [`FsyncPolicy`].
//!
//! # Recovery semantics
//!
//! A crash mid-append can only damage the *tail* of the *last* segment —
//! frames are written with a single `write_all` and earlier segments are
//! closed. The reader therefore distinguishes:
//!
//! * **Torn tail** — the final frame of the final segment is incomplete
//!   (header truncated, payload shorter than declared, or checksum
//!   mismatch with nothing after it): the frame is silently dropped and
//!   counted in [`JournalReadback::torn_frames_dropped`]. The run resumes.
//! * **Mid-log corruption** — a bad frame with valid data after it, a
//!   declared length above [`MAX_FRAME_BYTES`] (impossible for a torn
//!   write of a sane frame), or a truncated non-final segment: typed
//!   [`DurabilityError::CorruptFrame`]. Everything after the damage would
//!   be misaligned, so the read fails loudly instead of guessing.
//!
//! One caveat is inherent to length-prefixed framing: a bit flip *inside a
//! stored length field* near the tail can make the final frame appear to
//! extend past EOF, which is indistinguishable from a torn write. The
//! reader then recovers fewer frames than were written — never silently
//! wrong ones — and the resume layer catches the shortfall against the
//! snapshot ([`DurabilityError::JournalBehindSnapshot`]).

use std::fs;
use std::io::{Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::str::FromStr;

use crate::crc::crc32;
use crate::error::DurabilityError;

/// Default segment-rotation threshold (8 MiB).
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// Hard upper bound on one frame's payload. Nothing the runner journals
/// comes near this; a declared length above it is corruption, not a torn
/// write.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

const FRAME_HEADER_BYTES: u64 = 8;

/// When the journal writer forces data to stable storage.
///
/// Trade-off: `EverySlot` bounds loss to zero completed slots but puts an
/// fsync on the per-slot critical path; `EveryK` amortizes that cost and
/// bounds loss to at most `k − 1` slots past the last snapshot; `Os` defers
/// entirely to the page cache (fastest, loss bounded only by the OS
/// writeback interval). A snapshot write always forces a sync first,
/// whatever the policy, preserving the invariant *snapshot at slot S ⇒
/// journal durable through frame S*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended frame.
    EverySlot,
    /// `fsync` after every `k`-th appended frame.
    EveryK(u32),
    /// Never `fsync` from the writer; the OS flushes when it pleases.
    Os,
}

impl Default for FsyncPolicy {
    /// `EveryK(16)` — the measured-overhead default the bench guard pins.
    fn default() -> Self {
        Self::EveryK(16)
    }
}

impl FromStr for FsyncPolicy {
    type Err = String;

    /// Parses `"every-slot"`, `"os"`, or `"every-K"` (e.g. `"every-16"`).
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "every-slot" => Ok(Self::EverySlot),
            "os" => Ok(Self::Os),
            _ => match s.strip_prefix("every-").and_then(|k| k.parse::<u32>().ok()) {
                Some(k) if k > 0 => Ok(Self::EveryK(k)),
                _ => Err(format!(
                    "unknown fsync policy `{s}` (expected `every-slot`, `every-K`, or `os`)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EverySlot => write!(f, "every-slot"),
            Self::EveryK(k) => write!(f, "every-{k}"),
            Self::Os => write!(f, "os"),
        }
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("journal-{index:06}.log"))
}

/// Lists the journal segments in `dir`, sorted by index.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut segments = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| DurabilityError::io(dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| DurabilityError::io(dir, &e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(index) = name
            .strip_prefix("journal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_by_key(|&(index, _)| index);
    Ok(segments)
}

/// One frame located inside a segment during a scan.
struct ScannedFrame {
    /// Byte offset of the frame header within the segment.
    offset: u64,
    payload: Vec<u8>,
}

/// How a segment's valid prefix ends.
enum TailError {
    /// Consistent with a crash mid-append: the bytes after the last valid
    /// frame do not reach EOF as a complete frame (truncated header, sane
    /// length extending past EOF, or a checksum failure on a frame that is
    /// the very last thing in the file). Recoverable if this is the final
    /// segment.
    Torn(String),
    /// Cannot come from a torn write no matter where it sits: a declared
    /// length above [`MAX_FRAME_BYTES`], or a checksum failure with more
    /// bytes after the frame.
    Hard(String),
}

/// Outcome of scanning one segment's bytes.
struct SegmentScan {
    frames: Vec<ScannedFrame>,
    tail_error: Option<TailError>,
    /// Offset where the valid prefix ends.
    valid_end: u64,
}

fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return SegmentScan { frames, tail_error: None, valid_end: pos as u64 };
        }
        let start = pos;
        if bytes.len() - pos < FRAME_HEADER_BYTES as usize {
            return SegmentScan {
                frames,
                tail_error: Some(TailError::Torn(format!(
                    "truncated frame header ({} byte(s) at offset {start})",
                    bytes.len() - pos
                ))),
                valid_end: start as u64,
            };
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let expected_crc =
            u32::from_le_bytes([bytes[pos + 4], bytes[pos + 5], bytes[pos + 6], bytes[pos + 7]]);
        pos += FRAME_HEADER_BYTES as usize;
        if len > MAX_FRAME_BYTES {
            // Larger than anything a writer ever produces: corruption of
            // the length field, not a torn write.
            return SegmentScan {
                frames,
                tail_error: Some(TailError::Hard(format!(
                    "frame at offset {start} declares {len} bytes (> MAX_FRAME_BYTES)"
                ))),
                valid_end: start as u64,
            };
        }
        let len = len as usize;
        if bytes.len() - pos < len {
            return SegmentScan {
                frames,
                tail_error: Some(TailError::Torn(format!(
                    "frame at offset {start} declares {len} byte(s) but only {} remain",
                    bytes.len() - pos
                ))),
                valid_end: start as u64,
            };
        }
        let payload = &bytes[pos..pos + len];
        let actual_crc = crc32(payload);
        if actual_crc != expected_crc {
            let reason = format!(
                "frame at offset {start} checksum mismatch \
                 (expected {expected_crc:#010x}, got {actual_crc:#010x})"
            );
            // A torn write damages only the last frame written; a bad
            // checksum with further bytes behind it is mid-log corruption
            // even inside the final segment.
            let tail_error = if pos + len == bytes.len() {
                TailError::Torn(reason)
            } else {
                TailError::Hard(reason)
            };
            return SegmentScan { frames, tail_error: Some(tail_error), valid_end: start as u64 };
        }
        pos += len;
        frames.push(ScannedFrame { offset: start as u64, payload: payload.to_vec() });
    }
}

/// All recoverable frames of a journal, in append order.
#[derive(Debug)]
pub struct JournalReadback {
    /// Frame payloads, oldest first.
    pub frames: Vec<Vec<u8>>,
    /// Torn frames dropped from the tail of the final segment (0 or 1 per
    /// crash; a length-field flip near the tail can hide subsequent frames
    /// behind one reported drop — see the module docs).
    pub torn_frames_dropped: u64,
}

/// Reads every frame from the journal in `dir`.
///
/// Torn tails recover silently (counted); mid-log corruption — a bad frame
/// anywhere except the very tail of the final segment — is a typed error.
pub fn read_journal(dir: &Path) -> Result<JournalReadback, DurabilityError> {
    let segments = list_segments(dir)?;
    let mut frames = Vec::new();
    let mut torn = 0u64;
    let last = segments.len().saturating_sub(1);
    for (pos, (_, path)) in segments.iter().enumerate() {
        let bytes = fs::read(path).map_err(|e| DurabilityError::io(path, &e))?;
        let scan = scan_segment(&bytes);
        let frame_base = frames.len() as u64;
        match scan.tail_error {
            None => {}
            Some(TailError::Torn(_)) if pos == last => torn += 1,
            // Bad bytes in a non-final segment, or damage that no torn
            // append can produce, cannot be crash fallout: fail loudly.
            Some(TailError::Torn(reason)) | Some(TailError::Hard(reason)) => {
                let qualifier = if pos != last { " (non-final segment)" } else { "" };
                return Err(DurabilityError::CorruptFrame {
                    segment: path.display().to_string(),
                    frame: frame_base + scan.frames.len() as u64,
                    reason: format!("{reason}{qualifier}"),
                });
            }
        }
        frames.extend(scan.frames.into_iter().map(|f| f.payload));
    }
    Ok(JournalReadback { frames, torn_frames_dropped: torn })
}

/// Truncates the journal in `dir` to its first `keep` frames and opens a
/// writer positioned to append frame `keep` next.
///
/// Used on resume: frames past the snapshot slot are re-executed, so the
/// stale suffix (including any torn tail) is cut at a frame boundary —
/// later segments are deleted first, then the boundary segment is
/// truncated, so a crash mid-way leaves a journal this same call repairs
/// again on the next resume.
///
/// Fails with [`DurabilityError::JournalBehindSnapshot`] if fewer than
/// `keep` valid frames exist.
pub fn open_for_append_after(
    dir: &Path,
    keep: u64,
    policy: FsyncPolicy,
    max_segment_bytes: u64,
) -> Result<JournalWriter, DurabilityError> {
    let segments = list_segments(dir)?;
    // Locate the boundary: the segment and byte offset where frame `keep`
    // would begin.
    let mut remaining = keep;
    let mut boundary: Option<(usize, u64)> = None; // (segment position, byte offset)
    let mut total_valid = 0u64;
    let mut scans = Vec::with_capacity(segments.len());
    for (_, path) in &segments {
        let bytes = fs::read(path).map_err(|e| DurabilityError::io(path, &e))?;
        let scan = scan_segment(&bytes);
        total_valid += scan.frames.len() as u64;
        scans.push(scan);
    }
    if total_valid < keep {
        return Err(DurabilityError::JournalBehindSnapshot {
            snapshot_slots: keep,
            journal_frames: total_valid,
        });
    }
    for (pos, scan) in scans.iter().enumerate() {
        let in_segment = scan.frames.len() as u64;
        if remaining < in_segment {
            let offset = scan.frames[remaining as usize].offset;
            boundary = Some((pos, offset));
            break;
        }
        remaining -= in_segment;
        if remaining == 0 {
            // Frame `keep` starts right after this segment's valid prefix
            // (cutting any torn tail too).
            boundary = Some((pos, scan.valid_end));
            break;
        }
    }
    let (boundary_pos, boundary_offset) = match boundary {
        Some(b) => b,
        // keep == 0 with no segments at all: start a fresh journal.
        None => {
            return JournalWriter::create(dir, policy, max_segment_bytes);
        }
    };

    // Delete later segments first: a crash between steps leaves extra
    // frames that the *next* resume (same snapshot) truncates again.
    for (_, path) in segments.iter().skip(boundary_pos + 1) {
        fs::remove_file(path).map_err(|e| DurabilityError::io(path, &e))?;
    }
    let (seg_index, seg_path) = (segments[boundary_pos].0, segments[boundary_pos].1.clone());
    let mut file = fs::OpenOptions::new()
        .write(true)
        .open(&seg_path)
        .map_err(|e| DurabilityError::io(&seg_path, &e))?;
    file.set_len(boundary_offset).map_err(|e| DurabilityError::io(&seg_path, &e))?;
    file.seek(std::io::SeekFrom::Start(boundary_offset))
        .map_err(|e| DurabilityError::io(&seg_path, &e))?;
    file.sync_all().map_err(|e| DurabilityError::io(&seg_path, &e))?;
    Ok(JournalWriter {
        dir: dir.to_path_buf(),
        policy,
        max_segment_bytes,
        file,
        seg_path,
        seg_index,
        seg_bytes: boundary_offset,
        unsynced: 0,
        last_sync_nanos: None,
    })
}

/// Appends checksummed frames to the journal in `dir`.
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    policy: FsyncPolicy,
    max_segment_bytes: u64,
    file: fs::File,
    seg_path: PathBuf,
    seg_index: u64,
    seg_bytes: u64,
    /// Frames appended since the last sync (drives `EveryK`).
    unsynced: u32,
    /// Wall-clock duration of the most recent `sync_data`, if one has run
    /// since the last [`take_last_sync_nanos`](Self::take_last_sync_nanos).
    last_sync_nanos: Option<u64>,
}

impl JournalWriter {
    /// Opens a fresh journal in `dir` (which must hold no segments yet),
    /// starting at segment 0.
    pub fn create(
        dir: &Path,
        policy: FsyncPolicy,
        max_segment_bytes: u64,
    ) -> Result<Self, DurabilityError> {
        fs::create_dir_all(dir).map_err(|e| DurabilityError::io(dir, &e))?;
        if let Some((_, existing)) = list_segments(dir)?.first() {
            return Err(DurabilityError::InvalidConfig {
                reason: format!(
                    "journal directory {} already holds segments (first: {}); \
                     resume it instead of starting fresh",
                    dir.display(),
                    existing.display()
                ),
            });
        }
        let seg_path = segment_path(dir, 0);
        let file = fs::File::create(&seg_path).map_err(|e| DurabilityError::io(&seg_path, &e))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            policy,
            max_segment_bytes,
            file,
            seg_path,
            seg_index: 0,
            seg_bytes: 0,
            unsynced: 0,
            last_sync_nanos: None,
        })
    }

    fn rotate(&mut self) -> Result<(), DurabilityError> {
        // Close out the current segment durably before opening the next;
        // after rotation the old segment is never written again, which is
        // what lets the reader treat non-final segments as complete.
        self.file.sync_all().map_err(|e| DurabilityError::io(&self.seg_path, &e))?;
        self.unsynced = 0;
        self.seg_index += 1;
        self.seg_path = segment_path(&self.dir, self.seg_index);
        self.file = fs::File::create(&self.seg_path)
            .map_err(|e| DurabilityError::io(&self.seg_path, &e))?;
        self.seg_bytes = 0;
        Ok(())
    }

    /// Appends one frame. The whole frame (header + payload) goes out in a
    /// single `write_all`, so a crash can only tear the final frame.
    ///
    /// Fails with [`DurabilityError::InvalidConfig`] if `payload` exceeds
    /// [`MAX_FRAME_BYTES`].
    pub fn append(&mut self, payload: &[u8]) -> Result<(), DurabilityError> {
        if payload.len() as u64 > MAX_FRAME_BYTES as u64 {
            return Err(DurabilityError::InvalidConfig {
                reason: format!(
                    "frame payload of {} bytes exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})",
                    payload.len()
                ),
            });
        }
        let frame_bytes = FRAME_HEADER_BYTES + payload.len() as u64;
        if self.seg_bytes > 0 && self.seg_bytes + frame_bytes > self.max_segment_bytes {
            self.rotate()?;
        }
        let mut frame = Vec::with_capacity(frame_bytes as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame).map_err(|e| DurabilityError::io(&self.seg_path, &e))?;
        self.seg_bytes += frame_bytes;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::EverySlot => self.sync()?,
            FsyncPolicy::EveryK(k) => {
                if self.unsynced >= k {
                    self.sync()?;
                }
            }
            FsyncPolicy::Os => {}
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage, regardless of
    /// policy. Called before every snapshot write.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        let start = std::time::Instant::now();
        self.file.sync_data().map_err(|e| DurabilityError::io(&self.seg_path, &e))?;
        self.unsynced = 0;
        self.last_sync_nanos = Some(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        Ok(())
    }

    /// Duration of the most recent [`sync`](Self::sync) in nanoseconds, if
    /// one has run since the previous call. Consumed by the simulation
    /// runner to surface fsync latency as a telemetry span without the
    /// journal knowing about recorders.
    pub fn take_last_sync_nanos(&mut self) -> Option<u64> {
        self.last_sync_nanos.take()
    }

    /// Segments written so far (current index + 1).
    pub fn segments(&self) -> u64 {
        self.seg_index + 1
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("eotora-journal-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("frame-{i}-{}", "x".repeat(i % 7)).into_bytes()).collect()
    }

    #[test]
    fn append_and_read_back_in_order() {
        let dir = temp_dir("roundtrip");
        let frames = payloads(20);
        let mut w =
            JournalWriter::create(&dir, FsyncPolicy::default(), DEFAULT_SEGMENT_BYTES).unwrap();
        for p in &frames {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        let rb = read_journal(&dir).unwrap();
        assert_eq!(rb.frames, frames);
        assert_eq!(rb.torn_frames_dropped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_into_segments_and_reads_across_them() {
        let dir = temp_dir("rotation");
        let frames = payloads(50);
        // Tiny segments: force many rotations.
        let mut w = JournalWriter::create(&dir, FsyncPolicy::Os, 64).unwrap();
        for p in &frames {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        assert!(w.segments() > 3, "expected rotation, got {} segment(s)", w.segments());
        let rb = read_journal(&dir).unwrap();
        assert_eq!(rb.frames, frames);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_silently_and_counted() {
        let dir = temp_dir("torn");
        let frames = payloads(8);
        let mut w =
            JournalWriter::create(&dir, FsyncPolicy::EverySlot, DEFAULT_SEGMENT_BYTES).unwrap();
        for p in &frames {
            w.append(p).unwrap();
        }
        drop(w);
        // Tear 3 bytes off the single segment: the final frame is torn.
        let seg = segment_path(&dir, 0);
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let rb = read_journal(&dir).unwrap();
        assert_eq!(rb.frames, frames[..7].to_vec());
        assert_eq!(rb.torn_frames_dropped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let dir = temp_dir("midlog");
        let frames = payloads(10);
        let mut w =
            JournalWriter::create(&dir, FsyncPolicy::EverySlot, DEFAULT_SEGMENT_BYTES).unwrap();
        for p in &frames {
            w.append(p).unwrap();
        }
        drop(w);
        // Flip a payload byte in the middle of the log (frame 2's payload).
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let offset = (0..2).map(|i| 8 + frames[i].len()).sum::<usize>() + 8 + 1;
        bytes[offset] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();
        match read_journal(&dir) {
            Err(DurabilityError::CorruptFrame { frame, .. }) => assert_eq!(frame, 2),
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_a_non_final_segment_is_a_typed_error() {
        let dir = temp_dir("nonfinal");
        let frames = payloads(30);
        let mut w = JournalWriter::create(&dir, FsyncPolicy::Os, 128).unwrap();
        for p in &frames {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        assert!(w.segments() >= 3);
        // Tear the tail of the FIRST segment — not recoverable.
        let seg = segment_path(&dir, 0);
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 2]).unwrap();
        assert!(matches!(read_journal(&dir), Err(DurabilityError::CorruptFrame { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_then_continue_appending() {
        let dir = temp_dir("truncate");
        let frames = payloads(40);
        let mut w = JournalWriter::create(&dir, FsyncPolicy::Os, 96).unwrap();
        for p in &frames {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Keep the first 17 frames, then append 5 fresh ones.
        let mut w = open_for_append_after(&dir, 17, FsyncPolicy::Os, 96).unwrap();
        let fresh = payloads(5);
        for p in &fresh {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        let rb = read_journal(&dir).unwrap();
        let mut expected = frames[..17].to_vec();
        expected.extend(fresh);
        assert_eq!(rb.frames, expected);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_past_available_frames_fails_typed() {
        let dir = temp_dir("behind");
        let frames = payloads(5);
        let mut w =
            JournalWriter::create(&dir, FsyncPolicy::EverySlot, DEFAULT_SEGMENT_BYTES).unwrap();
        for p in &frames {
            w.append(p).unwrap();
        }
        drop(w);
        match open_for_append_after(&dir, 9, FsyncPolicy::Os, DEFAULT_SEGMENT_BYTES) {
            Err(DurabilityError::JournalBehindSnapshot { snapshot_slots, journal_frames }) => {
                assert_eq!(snapshot_slots, 9);
                assert_eq!(journal_frames, 5);
            }
            other => panic!("expected JournalBehindSnapshot, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_cuts_a_torn_tail_too() {
        let dir = temp_dir("truncate-torn");
        let frames = payloads(10);
        let mut w =
            JournalWriter::create(&dir, FsyncPolicy::EverySlot, DEFAULT_SEGMENT_BYTES).unwrap();
        for p in &frames {
            w.append(p).unwrap();
        }
        drop(w);
        let seg = segment_path(&dir, 0);
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 1]).unwrap();
        // 9 intact frames remain; keep 8, the torn 10th disappears.
        let mut w = open_for_append_after(&dir, 8, FsyncPolicy::Os, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(b"new-frame").unwrap();
        w.sync().unwrap();
        let rb = read_journal(&dir).unwrap();
        assert_eq!(rb.frames.len(), 9);
        assert_eq!(rb.frames[..8], frames[..8]);
        assert_eq!(rb.frames[8], b"new-frame");
        assert_eq!(rb.torn_frames_dropped, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!("every-slot".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::EverySlot);
        assert_eq!("os".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Os);
        assert_eq!("every-16".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::EveryK(16));
        assert!("every-0".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::EveryK(4).to_string(), "every-4");
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::EveryK(16));
    }

    #[test]
    fn create_refuses_a_dir_with_segments() {
        let dir = temp_dir("busy");
        let mut w = JournalWriter::create(&dir, FsyncPolicy::Os, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(b"x").unwrap();
        drop(w);
        assert!(matches!(
            JournalWriter::create(&dir, FsyncPolicy::Os, DEFAULT_SEGMENT_BYTES),
            Err(DurabilityError::InvalidConfig { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let dir = temp_dir("oversize");
        let mut w = JournalWriter::create(&dir, FsyncPolicy::Os, DEFAULT_SEGMENT_BYTES).unwrap();
        let huge = vec![0u8; MAX_FRAME_BYTES as usize + 1];
        assert!(matches!(w.append(&huge), Err(DurabilityError::InvalidConfig { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }
}
