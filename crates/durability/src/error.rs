//! Typed failure modes for the durability subsystem.
//!
//! Mirrors the `SolveError` convention from `eotora-core`: every way a
//! snapshot, journal, or resume can fail is an explicit variant with enough
//! context to act on. Corrupt *input* never panics — the lint wall in
//! `lib.rs` denies `unwrap`/`expect`/`panic` crate-wide.

use std::fmt;
use std::path::Path;

/// A failure while writing, reading, or validating durable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// The OS error, stringified.
        message: String,
    },
    /// A snapshot file failed structural validation (bad magic, truncated
    /// header, length mismatch, or CRC failure).
    CorruptSnapshot {
        /// Path of the rejected snapshot.
        path: String,
        /// What failed.
        reason: String,
    },
    /// A snapshot carries a different schema identifier than the reader
    /// expects — it belongs to a different producer or state family.
    SchemaMismatch {
        /// Schema the reader requires.
        expected: String,
        /// Schema found in the file.
        found: String,
    },
    /// A snapshot's format version is newer than this build supports.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// A journal frame in the *middle* of the log failed its checksum or
    /// declared an impossible length. Unlike a torn final frame (recovered
    /// silently), mid-log corruption means data after the damage would be
    /// misaligned, so the read fails loudly.
    CorruptFrame {
        /// Segment file containing the bad frame.
        segment: String,
        /// Zero-based frame index within the whole journal.
        frame: u64,
        /// What failed (checksum, length bound, truncated non-final
        /// segment).
        reason: String,
    },
    /// A journal frame's payload decoded to a structurally invalid
    /// [`crate::frame::SlotRecord`].
    CorruptRecord {
        /// What failed.
        reason: String,
    },
    /// The checkpoint directory's manifest is unreadable or unparsable.
    CorruptManifest {
        /// Path of the manifest.
        path: String,
        /// What failed.
        reason: String,
    },
    /// The snapshot claims more completed slots than the journal holds
    /// frames — the snapshot/journal write-ordering invariant was violated
    /// (or journal segments were deleted by hand).
    JournalBehindSnapshot {
        /// Slots the snapshot claims completed.
        snapshot_slots: u64,
        /// Frames actually recoverable from the journal.
        journal_frames: u64,
    },
    /// The requested durability configuration cannot be honoured (e.g.
    /// starting a fresh checkpointed run in a directory that already holds
    /// one).
    InvalidConfig {
        /// What is wrong.
        reason: String,
    },
}

impl DurabilityError {
    /// Wraps an I/O error with the path it occurred on.
    pub fn io(path: &Path, err: &std::io::Error) -> Self {
        Self::Io { path: path.display().to_string(), message: err.to_string() }
    }
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, message } => write!(f, "I/O error on {path}: {message}"),
            Self::CorruptSnapshot { path, reason } => {
                write!(f, "corrupt snapshot {path}: {reason}")
            }
            Self::SchemaMismatch { expected, found } => {
                write!(f, "snapshot schema mismatch: expected `{expected}`, found `{found}`")
            }
            Self::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} is newer than the supported version {supported}"
                )
            }
            Self::CorruptFrame { segment, frame, reason } => {
                write!(f, "corrupt journal frame {frame} in {segment}: {reason}")
            }
            Self::CorruptRecord { reason } => write!(f, "corrupt slot record: {reason}"),
            Self::CorruptManifest { path, reason } => {
                write!(f, "corrupt run manifest {path}: {reason}")
            }
            Self::JournalBehindSnapshot { snapshot_slots, journal_frames } => {
                write!(
                    f,
                    "journal holds {journal_frames} frame(s) but the snapshot claims \
                     {snapshot_slots} completed slot(s); the journal must be at least as \
                     far along as the snapshot"
                )
            }
            Self::InvalidConfig { reason } => write!(f, "invalid durability config: {reason}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = DurabilityError::CorruptSnapshot { path: "s.bin".into(), reason: "bad crc".into() };
        assert!(e.to_string().contains("s.bin"));
        assert!(e.to_string().contains("bad crc"));
        let e = DurabilityError::UnsupportedVersion { found: 9, supported: 1 };
        assert!(e.to_string().contains('9'));
        let e = DurabilityError::JournalBehindSnapshot { snapshot_slots: 20, journal_frames: 7 };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains('7'));
        let e = DurabilityError::CorruptFrame {
            segment: "journal-000001.log".into(),
            frame: 3,
            reason: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("journal-000001.log"));
    }
}
