//! Crash-safe durability for long-running eotora controllers.
//!
//! The DPP controller is stateful across slots — the virtual queue, the
//! warm-start workspace, and the sanitizer's last-known-good `β_t` all
//! carry the long-run energy-budget guarantee — so a process crash loses
//! not just a run but the budget accounting itself. This crate provides
//! the two on-disk artifacts that make a run resumable, plus the framing
//! and integrity machinery they share:
//!
//! * [`snapshot`] — a versioned, self-describing, CRC-checked snapshot
//!   file written atomically (temp file + fsync + rename), with strict
//!   magic/schema/version validation on load. The payload is opaque bytes;
//!   `eotora-sim` stores the serialized controller state in it.
//! * [`journal`] — an append-only write-ahead slot journal: one
//!   length+CRC-framed record per completed slot, size-based segment
//!   rotation, a configurable [`journal::FsyncPolicy`], and a reader that
//!   silently drops a torn final frame (a crash mid-append) while turning
//!   any *mid-log* corruption into a typed [`DurabilityError`].
//! * [`frame`] — the binary codec for the per-slot [`frame::SlotRecord`]
//!   payload (inputs digest, decision digest, `C_t`, `Q_t`, per-stage
//!   timings), bit-exact for every `f64` it carries.
//! * [`crc`] — the CRC-32 (IEEE) implementation everything above shares.
//!
//! Nothing in this crate panics on corrupt input: every failure mode is a
//! [`DurabilityError`] variant, enforced by the crate-wide lint wall below
//! and the proptests under `tests/`.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod crc;
mod error;
pub mod frame;
pub mod journal;
pub mod snapshot;

pub use crc::crc32;
pub use error::DurabilityError;
pub use frame::SlotRecord;
pub use journal::{
    open_for_append_after, read_journal, FsyncPolicy, JournalReadback, JournalWriter,
    DEFAULT_SEGMENT_BYTES, MAX_FRAME_BYTES,
};
pub use snapshot::{read_snapshot, write_atomic, write_snapshot, SNAPSHOT_VERSION};
