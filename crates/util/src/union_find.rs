//! A plain disjoint-set forest (union by size, path halving).
//!
//! Shared by the topology layer (base-station/server infrastructure
//! components) and the game layer (resource components over the strategy
//! `touching` index). Deterministic: component representatives depend only
//! on the sequence of `union` calls, never on hashing or allocation order,
//! and [`UnionFind::component_ids`] numbers components by their smallest
//! member so downstream shard ordering is reproducible.

/// Disjoint-set forest over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// `len` singleton sets.
    pub fn new(len: usize) -> Self {
        Self { parent: (0..len).collect(), size: vec![1; len], components: len }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// The representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Flattens the forest into dense component ids `0..components`, one per
    /// element, numbered in order of each component's smallest member (so
    /// component 0 contains element 0).
    pub fn component_ids(&mut self) -> Vec<usize> {
        let len = self.len();
        let mut ids = vec![usize::MAX; len];
        let mut next = 0;
        let mut out = Vec::with_capacity(len);
        for x in 0..len {
            let root = self.find(x);
            if ids[root] == usize::MAX {
                ids[root] = next;
                next += 1;
            }
            out.push(ids[root]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 2));
        assert!(uf.union(2, 4));
        assert!(!uf.union(0, 4));
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(0, 4));
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn component_ids_are_dense_and_smallest_member_ordered() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(1, 2);
        let ids = uf.component_ids();
        // Components by smallest member: {0}=0, {1,2}=1, {3,5}=2, {4}=3.
        assert_eq!(ids, vec![0, 1, 1, 2, 3, 2]);
    }

    #[test]
    fn empty_forest() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.components(), 0);
        assert!(uf.component_ids().is_empty());
    }
}
