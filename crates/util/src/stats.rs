//! Descriptive statistics for experiment reporting.
//!
//! Two flavours are provided: [`Summary`], a batch summary of a slice, and
//! [`Welford`], a numerically stable streaming accumulator used when series
//! are too long to retain in memory (e.g. long DPP horizons).

use serde::{Deserialize, Serialize};

/// Batch summary statistics of a sample.
///
/// # Examples
///
/// ```
/// use eotora_util::stats::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean; `0.0` for an empty sample.
    pub mean: f64,
    /// Unbiased (n−1) sample standard deviation; `0.0` when `count < 2`.
    pub std_dev: f64,
    /// Smallest observation; `+∞` for an empty sample.
    pub min: f64,
    /// Largest observation; `−∞` for an empty sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `xs`.
    pub fn from_slice(xs: &[f64]) -> Self {
        let count = xs.len();
        if count == 0 {
            return Self {
                count,
                mean: 0.0,
                std_dev: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            };
        }
        let mean = xs.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Self { count, mean, std_dev: var.sqrt(), min, max }
    }

    /// Half-width of the asymptotic 95% confidence interval for the mean.
    ///
    /// Uses the normal approximation (`1.96·s/√n`), adequate for the sample
    /// sizes in the experiment harnesses.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

/// Returns the `q`-quantile (`0 ≤ q ≤ 1`) of `xs` by linear interpolation.
///
/// Returns `None` if `xs` is empty.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
///
/// # Examples
///
/// ```
/// use eotora_util::stats::quantile;
///
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` of a non-negative sample:
/// `1.0` means perfectly equal shares, `1/n` means one member takes all.
///
/// Returns `None` for an empty sample or an all-zero sample.
///
/// # Examples
///
/// ```
/// use eotora_util::stats::jains_index;
///
/// assert_eq!(jains_index(&[1.0, 1.0, 1.0]), Some(1.0));
/// assert_eq!(jains_index(&[1.0, 0.0, 0.0]), Some(1.0 / 3.0));
/// assert_eq!(jains_index(&[]), None);
/// ```
pub fn jains_index(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        None
    } else {
        Some(sum * sum / (xs.len() as f64 * sum_sq))
    }
}

/// Numerically stable streaming mean/variance accumulator (Welford, 1962).
///
/// # Examples
///
/// ```
/// use eotora_util::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.0);
/// assert_eq!(w.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; `0.0` before any observation.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; `0.0` when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq;

    #[test]
    fn summary_of_empty() {
        let s = Summary::from_slice(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert!(s.min.is_infinite() && s.min > 0.0);
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::from_slice(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!(approx_eq(s.mean, 5.0, 1e-12));
        // Sample (n-1) std dev of this classic example is sqrt(32/7).
        assert!(approx_eq(s.std_dev, (32.0f64 / 7.0).sqrt(), 1e-12));
    }

    #[test]
    fn quantile_edges_and_median() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 0.5), Some(20.0));
        assert_eq!(quantile(&xs, 1.0), Some(30.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_bad_q() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn jains_index_bounds() {
        // Always within [1/n, 1] for non-negative samples.
        let xs = [5.0, 1.0, 3.0, 0.5];
        let j = jains_index(&xs).unwrap();
        assert!(j >= 1.0 / xs.len() as f64 && j <= 1.0);
    }

    #[test]
    fn jains_index_degenerate_cases() {
        assert_eq!(jains_index(&[0.0, 0.0]), None);
        assert_eq!(jains_index(&[7.0]), Some(1.0));
    }

    #[test]
    fn welford_agrees_with_batch() {
        let xs = [1.5, -2.0, 3.25, 0.0, 9.5, -7.75];
        let batch = Summary::from_slice(&xs);
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!(approx_eq(w.mean(), batch.mean, 1e-12));
        assert!(approx_eq(w.std_dev(), batch.std_dev, 1e-12));
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.count(), 0);
    }
}
