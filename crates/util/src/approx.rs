//! Floating-point comparison helpers used throughout the test suites.

/// Returns `true` when `a` and `b` are within `tol` absolutely **or**
/// relatively (relative to the larger magnitude).
///
/// # Examples
///
/// ```
/// use eotora_util::approx::approx_eq;
///
/// assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
/// assert!(!approx_eq(1.0, 1.1, 1e-3));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

/// Relative difference `|a − b| / max(|a|, |b|)`; `0.0` when both are zero.
///
/// # Examples
///
/// ```
/// use eotora_util::approx::rel_diff;
///
/// assert_eq!(rel_diff(0.0, 0.0), 0.0);
/// assert!((rel_diff(100.0, 101.0) - 1.0 / 101.0).abs() < 1e-12);
/// ```
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// Asserts two floats are close (per [`approx_eq`]) with a helpful message.
///
/// ```
/// use eotora_util::assert_close;
///
/// assert_close!(2.0_f64.sqrt() * 2.0_f64.sqrt(), 2.0, 1e-12);
/// ```
#[macro_export]
macro_rules! assert_close {
    ($a:expr, $b:expr, $tol:expr) => {{
        let (a, b, tol) = ($a, $b, $tol);
        assert!(
            $crate::approx::approx_eq(a, b, tol),
            "assert_close!({} = {a:?}, {} = {b:?}) failed with tol {tol:?}",
            stringify!($a),
            stringify!($b),
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_equality() {
        assert!(approx_eq(0.0, 0.0, 0.0));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 1e-9));
    }

    #[test]
    fn nan_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e9));
        assert!(!approx_eq(f64::NAN, 1.0, 1e9));
    }

    #[test]
    fn absolute_tolerance_near_zero() {
        assert!(approx_eq(1e-12, 0.0, 1e-9));
        assert!(!approx_eq(1e-6, 0.0, 1e-9));
    }

    #[test]
    fn relative_tolerance_at_scale() {
        assert!(approx_eq(1e9, 1e9 + 0.5, 1e-9));
        assert!(!approx_eq(1e9, 1e9 * 1.01, 1e-9));
    }

    #[test]
    fn rel_diff_symmetric() {
        assert_eq!(rel_diff(3.0, 4.0), rel_diff(4.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "assert_close!")]
    fn macro_panics_on_mismatch() {
        assert_close!(1.0, 2.0, 1e-9);
    }
}
