//! Deterministic random number generation.
//!
//! The workspace uses a small, self-contained PCG-32 generator ([`Pcg32`])
//! so that every experiment is exactly reproducible from a `u64` seed,
//! independent of `rand`'s internal algorithm choices across versions.
//! [`Pcg32`] implements [`rand::Rng`], so it composes with the whole
//! `rand` ecosystem (ranges, shuffles, distributions).

use std::convert::Infallible;

use rand::rand_core::TryRng;

/// A PCG-XSH-RR 64/32 pseudo-random generator (O'Neill 2014).
///
/// Small (two `u64` words), fast, statistically solid for simulation use, and
/// — most importantly for this workspace — its output is fully determined by
/// the seed and stream constants below, so results never silently change when
/// the `rand` crate is upgraded.
///
/// # Examples
///
/// ```
/// use eotora_util::rng::Pcg32;
/// use rand::RngExt;
///
/// let mut a = Pcg32::seed(42);
/// let mut b = Pcg32::seed(42);
/// assert_eq!(a.next(), b.next());
/// let x: f64 = a.random_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;
const PCG_DEFAULT_STREAM: u64 = 1442695040888963407;

impl Pcg32 {
    /// Creates a generator from a 64-bit seed on the default stream.
    pub fn seed(seed: u64) -> Self {
        Self::seed_stream(seed, PCG_DEFAULT_STREAM)
    }

    /// Creates a generator from a seed and an explicit stream selector.
    ///
    /// Different streams produce statistically independent sequences for the
    /// same seed; used to derive per-component generators from a master seed.
    pub fn seed_stream(seed: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = Self { state: 0, inc };
        rng.next();
        rng.state = rng.state.wrapping_add(seed);
        rng.next();
        rng
    }

    /// Derives an independent child generator, e.g. one per mobile device.
    ///
    /// The child is seeded from this generator's output and placed on a
    /// stream keyed by `tag`, so children with different tags never share a
    /// sequence even if their seeds collide.
    pub fn fork(&mut self, tag: u64) -> Self {
        let seed = ((self.next() as u64) << 32) | self.next() as u64;
        Self::seed_stream(seed, tag.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    /// Returns the next `u32` of the stream.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite raw stream
    #[inline]
    pub fn next(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        let hi = (self.next() as u64) << 21;
        let lo = (self.next() as u64) >> 11;
        ((hi | lo) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        let mut x = ((self.next() as u64) << 32) | self.next() as u64;
        let mut m = x as u128 * n as u128;
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = ((self.next() as u64) << 32) | self.next() as u64;
                m = x as u128 * n as u128;
                low = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Standard-normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // u1 in (0,1] so ln(u1) is finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given `mean` and standard deviation `std_dev`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative standard deviation {std_dev}");
        mean + std_dev * self.standard_normal()
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// Returns `None` on an empty slice.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

// Implementing the infallible `TryRng` provides `rand::Rng` (and therefore
// all of `rand::RngExt`) through rand_core's blanket impl.
impl TryRng for Pcg32 {
    type Error = Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok(self.next())
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(((self.next() as u64) << 32) | self.next() as u64)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
        for chunk in dest.chunks_mut(4) {
            let w = self.next().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg32::seed(123);
        let mut b = Pcg32::seed(123);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seed(1);
        let mut b = Pcg32::seed(2);
        let same = (0..32).filter(|_| a.next() == b.next()).count();
        assert!(same < 4, "streams should not track each other");
    }

    #[test]
    fn forks_are_independent() {
        let mut root = Pcg32::seed(9);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let same = (0..64).filter(|_| c1.next() == c2.next()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Pcg32::seed(5);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Pcg32::seed(77);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::seed(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Pcg32::seed(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seed(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_scales() {
        let mut rng = Pcg32::seed(12);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seed(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_empty_is_none() {
        let mut rng = Pcg32::seed(4);
        assert!(rng.pick::<u8>(&[]).is_none());
    }

    #[test]
    fn rngcore_integration_with_rand() {
        use rand::RngExt;
        let mut rng = Pcg32::seed(8);
        let x: f64 = rng.random_range(2.0..3.0);
        assert!((2.0..3.0).contains(&x));
        let y: u32 = rng.random_range(0..10);
        assert!(y < 10);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        use rand::Rng;
        let mut rng = Pcg32::seed(6);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        // Statistically, 7 zero bytes after filling is (1/256)^7 — treat as failure.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
