//! A bounded worker pool over scoped `std` threads.
//!
//! The simulation and experiment layers fan out over independent jobs
//! (scenarios, sweep points, trials). Spawning one OS thread per job is
//! wasteful and unbounded — a paper-scale sweep can easily queue dozens of
//! runs — so everything funnels through [`WorkerPool`]: at most `workers`
//! threads, jobs handed out by an atomic cursor, and results returned **in
//! job order** regardless of which worker finished when. Determinism of the
//! output therefore depends only on the jobs themselves (which are seeded),
//! never on scheduling.
//!
//! The process-wide default worker count is configurable via
//! [`set_default_workers`] (the CLI's `--jobs N` flag ends up here); it
//! falls back to [`std::thread::available_parallelism`].
//!
//! # Examples
//!
//! ```
//! use eotora_util::pool::WorkerPool;
//!
//! let squares = WorkerPool::new(4).map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide default worker count; 0 means "auto" (available
/// parallelism).
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Worker threads currently executing a parallel batch, process-wide.
/// Feeds [`WorkerPool::idle_workers`] so opportunistic work (the
/// speculative pre-solve) can yield to batches already in flight.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// RAII bump of [`ACTIVE_WORKERS`] for one batch, released even if a job
/// panics out of the scope.
struct ActiveBatch(usize);

impl ActiveBatch {
    fn enter(workers: usize) -> Self {
        ACTIVE_WORKERS.fetch_add(workers, Ordering::Relaxed);
        Self(workers)
    }
}

impl Drop for ActiveBatch {
    fn drop(&mut self) {
        ACTIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
    }
}

/// Sets the process-wide default worker count used by
/// [`WorkerPool::with_default`]. Passing 0 restores auto-detection.
pub fn set_default_workers(n: usize) {
    DEFAULT_WORKERS.store(n, Ordering::Relaxed);
}

/// The process-wide default worker count: the last value passed to
/// [`set_default_workers`], or the machine's available parallelism (at
/// least 1) when unset.
pub fn default_workers() -> usize {
    match DEFAULT_WORKERS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// A fixed-width pool executing batches of independent jobs on scoped
/// threads.
///
/// The pool holds no threads between calls — each [`map`](Self::map) /
/// [`map_indexed`](Self::map_indexed) spawns at most `workers` scoped
/// threads for the duration of the batch and joins them before returning,
/// so borrows of the surrounding stack work naturally.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// Creates a pool running at most `workers` jobs concurrently
    /// (clamped up to 1).
    pub fn new(workers: usize) -> Self {
        Self { workers: workers.max(1) }
    }

    /// Creates a pool sized by [`default_workers`].
    pub fn with_default() -> Self {
        Self::new(default_workers())
    }

    /// The concurrency bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// How many of this pool's workers are free right now: the bound minus
    /// the worker threads any pool in the process currently has running
    /// (batches don't reserve capacity per instance — `WorkerPool` is a
    /// width, not a thread set). Advisory by nature: a batch may start
    /// between the read and any action taken on it. The speculative
    /// controller polls this to stage pre-solves only into idle capacity.
    pub fn idle_workers(&self) -> usize {
        self.workers.saturating_sub(ACTIVE_WORKERS.load(Ordering::Relaxed))
    }

    /// Applies `f` to every item, returning results in item order.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.map_indexed(items.len(), |i| f(&items[i]))
    }

    /// Runs `jobs` indexed jobs, returning `f(0), f(1), …` in index order.
    ///
    /// At most `min(workers, jobs)` threads run. Every width — including a
    /// single effective worker, which executes inline on the calling thread
    /// without spawning — goes through the *same* claim-from-cursor /
    /// store-into-slot routine, so result ordering and collection mechanics
    /// are identical regardless of parallelism (the sharded solver's merge
    /// determinism relies on this). Workers claim indices from a shared
    /// atomic cursor, so an unlucky long job delays only itself.
    ///
    /// # Panics
    ///
    /// Panics if any job panics (the first panic is propagated after the
    /// batch is joined).
    pub fn map_indexed<U, F>(&self, jobs: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let workers = self.workers.min(jobs);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<U>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= jobs {
                break;
            }
            let result = f(i);
            *slots[i].lock().expect("result slot poisoned") = Some(result);
        };
        if workers <= 1 {
            work();
        } else {
            let active = ActiveBatch::enter(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers).map(|_| scope.spawn(work)).collect();
                for handle in handles {
                    handle.join().expect("worker thread panicked");
                }
            });
            drop(active);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every claimed job stores a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let pool = WorkerPool::new(4);
        // Make early jobs the slowest so out-of-order completion is likely.
        let out = pool.map_indexed(16, |i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i as u64) / 4));
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn map_borrows_items_in_place() {
        let items: Vec<String> = (0..8).map(|i| format!("job-{i}")).collect();
        let lens = WorkerPool::new(3).map(&items, |s| s.len());
        assert_eq!(lens, vec![5; 8]);
    }

    #[test]
    fn single_worker_is_serial_and_equivalent() {
        let serial = WorkerPool::new(1).map_indexed(9, |i| i * i);
        let parallel = WorkerPool::new(8).map_indexed(9, |i| i * i);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_worker_count_produces_identical_ordering() {
        // The serial (inline) and parallel paths share the same
        // cursor/slot routine; any width must return byte-identical
        // results in job order — the sharded merge depends on it.
        let reference: Vec<u64> = (0..33).map(|i| (i as u64).wrapping_mul(0x9E37_79B9)).collect();
        for workers in [1, 2, 3, 8, 64] {
            let out =
                WorkerPool::new(workers).map_indexed(33, |i| (i as u64).wrapping_mul(0x9E37_79B9));
            assert_eq!(out, reference, "workers = {workers}");
        }
        // jobs == 1 takes the inline path even on a wide pool.
        assert_eq!(WorkerPool::new(8).map_indexed(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
        assert_eq!(WorkerPool::new(0).map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn empty_batch_is_empty() {
        let out: Vec<usize> = WorkerPool::new(4).map_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_batch_returns_without_spawning_or_calling() {
        // jobs == 0 clamps the width to 0 → the inline path runs, the
        // cursor immediately exceeds the (empty) job range, and the
        // closure is never invoked. No thread::scope is entered.
        let calls = AtomicUsize::new(0);
        let out: Vec<usize> = WorkerPool::new(8).map_indexed(0, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert!(out.is_empty());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn idle_workers_tracks_running_batches() {
        let pool = WorkerPool::new(3);
        assert!(pool.idle_workers() <= 3);
        // While a wide batch runs, a probe from inside a job must see the
        // batch's workers accounted as busy. Other tests may run batches
        // concurrently, so only assert the direction of the change.
        let observed_idle = std::sync::Mutex::new(usize::MAX);
        pool.map_indexed(3, |_| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            let idle = pool.idle_workers();
            let mut min = observed_idle.lock().unwrap();
            *min = (*min).min(idle);
        });
        assert_eq!(observed_idle.into_inner().unwrap(), 0);
        // After the join, this batch's claim is released.
        assert!(pool.idle_workers() <= 3);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = WorkerPool::new(64).map_indexed(2, |i| i + 1);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
