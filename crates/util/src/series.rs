//! Time-series bookkeeping for time-average metrics.
//!
//! The paper's objective and constraint are *time averages*
//! (`lim (1/T) Σ_t E[·]`), so the simulator needs cheap running and windowed
//! averages over long horizons. [`TimeSeries`] retains the raw samples (for
//! plotting figures), while callers that only need the running mean should
//! prefer [`crate::stats::Welford`].

use serde::{Deserialize, Serialize};

/// An append-only series of per-slot samples with average helpers.
///
/// # Examples
///
/// ```
/// use eotora_util::series::TimeSeries;
///
/// let mut s = TimeSeries::new("latency");
/// s.push(2.0);
/// s.push(4.0);
/// assert_eq!(s.time_average(), 3.0);
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), values: Vec::new() }
    }

    /// The label given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one sample.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw samples in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean of all samples so far; `0.0` if empty.
    pub fn time_average(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Mean of the last `window` samples (or all, if fewer exist).
    ///
    /// The paper reports e.g. "each latency is an average of 48 slots"
    /// (Fig. 9) — this is that operation.
    pub fn tail_average(&self, window: usize) -> f64 {
        if self.values.is_empty() || window == 0 {
            return 0.0;
        }
        let start = self.values.len().saturating_sub(window);
        let tail = &self.values[start..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Running means: element `t` is the average of samples `0..=t`.
    pub fn cumulative_average(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.values.len());
        let mut sum = 0.0;
        for (i, &v) in self.values.iter().enumerate() {
            sum += v;
            out.push(sum / (i as f64 + 1.0));
        }
        out
    }

    /// Non-overlapping block means of size `block`; the final partial block
    /// (if any) is averaged over its actual length.
    ///
    /// # Panics
    ///
    /// Panics if `block == 0`.
    pub fn block_averages(&self, block: usize) -> Vec<f64> {
        assert!(block > 0, "block size must be positive");
        self.values.chunks(block).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect()
    }

    /// Final sample, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Sample autocorrelation at `lag` (biased estimator, normalized by the
    /// full-series variance). Returns `None` when the series is shorter than
    /// `lag + 2` or has zero variance.
    ///
    /// Used to verify the periodicity of the state processes (a daily trend
    /// shows a strong peak at lag 24 for hourly slots).
    pub fn autocorrelation(&self, lag: usize) -> Option<f64> {
        autocorrelation(&self.values, lag)
    }
}

/// Sample autocorrelation of `xs` at `lag`; see
/// [`TimeSeries::autocorrelation`].
///
/// # Examples
///
/// ```
/// use eotora_util::series::autocorrelation;
///
/// // Period-2 alternation: perfectly anti-correlated at lag 1.
/// let xs: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// assert!(autocorrelation(&xs, 1).unwrap() < -0.9);
/// assert!(autocorrelation(&xs, 2).unwrap() > 0.9);
/// ```
pub fn autocorrelation(xs: &[f64], lag: usize) -> Option<f64> {
    if xs.len() < lag + 2 {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let denom: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom == 0.0 {
        return None;
    }
    let num: f64 = (0..xs.len() - lag).map(|i| (xs[i] - mean) * (xs[i + lag] - mean)).sum();
    Some(num / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let mut s = TimeSeries::new("x");
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.time_average(), 2.5);
        assert_eq!(s.tail_average(2), 3.5);
        assert_eq!(s.tail_average(10), 2.5);
        assert_eq!(s.last(), Some(4.0));
    }

    #[test]
    fn empty_series() {
        let s = TimeSeries::new("x");
        assert!(s.is_empty());
        assert_eq!(s.time_average(), 0.0);
        assert_eq!(s.tail_average(5), 0.0);
        assert_eq!(s.last(), None);
        assert!(s.cumulative_average().is_empty());
    }

    #[test]
    fn cumulative_average_matches() {
        let mut s = TimeSeries::new("x");
        for v in [2.0, 4.0, 6.0] {
            s.push(v);
        }
        assert_eq!(s.cumulative_average(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn block_averages_partial_tail() {
        let mut s = TimeSeries::new("x");
        for v in [1.0, 3.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert_eq!(s.block_averages(2), vec![2.0, 6.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn block_zero_panics() {
        TimeSeries::new("x").block_averages(0);
    }

    #[test]
    fn autocorrelation_detects_period() {
        let mut s = TimeSeries::new("daily");
        for t in 0..240 {
            s.push((t % 24) as f64);
        }
        let a24 = s.autocorrelation(24).unwrap();
        let a12 = s.autocorrelation(12).unwrap();
        assert!(a24 > 0.85, "lag-24 autocorrelation {a24}");
        assert!(a24 > a12);
    }

    #[test]
    fn autocorrelation_degenerate() {
        assert_eq!(autocorrelation(&[1.0, 1.0, 1.0], 1), None); // zero variance
        assert_eq!(autocorrelation(&[1.0], 1), None); // too short
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = TimeSeries::new("queue");
        s.push(1.25);
        let json = serde_json::to_string(&s).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
