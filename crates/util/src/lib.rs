//! Shared numeric utilities for the `eotora` workspace.
//!
//! This crate provides the low-level plumbing every other crate builds on:
//!
//! * [`rng`] — a deterministic, seedable PCG-32 generator implementing
//!   [`rand::Rng`], plus Gaussian sampling via Box–Muller. All simulation
//!   results in the workspace are reproducible given a seed.
//! * [`stats`] — streaming and batch descriptive statistics (mean, variance,
//!   quantiles, confidence intervals) used by the experiment harnesses.
//! * [`series`] — time-series helpers (cumulative/time averages, windowed
//!   means) used to report the paper's time-average metrics.
//! * [`approx`] — relative/absolute floating-point comparison helpers and the
//!   [`assert_close!`] macro used pervasively in tests.
//! * [`pool`] — a bounded worker pool over scoped std threads with
//!   deterministic result ordering, used by the sweep/experiment layers
//!   (and sized by the CLI's `--jobs` flag).
//! * [`union_find`] — a deterministic disjoint-set forest used by the
//!   topology and game layers to compute shardable components.
//!
//! # Examples
//!
//! ```
//! use eotora_util::rng::Pcg32;
//! use eotora_util::stats::Summary;
//! use rand::RngExt;
//!
//! let mut rng = Pcg32::seed(7);
//! let xs: Vec<f64> = (0..1000).map(|_| rng.random_range(0.0..1.0)).collect();
//! let s = Summary::from_slice(&xs);
//! assert!((s.mean - 0.5).abs() < 0.05);
//! ```

pub mod approx;
pub mod pool;
pub mod rng;
pub mod series;
pub mod stats;
pub mod union_find;

pub use approx::{approx_eq, rel_diff};
pub use pool::WorkerPool;
pub use rng::Pcg32;
pub use series::TimeSeries;
pub use stats::Summary;
pub use union_find::UnionFind;
