//! Sharded P2-A solve: per-cluster CGBA subgames merged deterministically.
//!
//! On topologies whose base stations reach disjoint server clusters (BS
//! islands), the P2-A congestion game is block-diagonal: a
//! [`ShardPlan`] splits it into independent subgames, each solved by its
//! own CGBA run on a dense shard-local game, and the per-shard choices are
//! merged back in a fixed order. Shards run on a bounded
//! [`WorkerPool`], so 100k–1M-device slots scale across cores while the
//! result stays independent of worker count.
//!
//! # Why the merge is decision-identical on separable games
//!
//! A move inside one component never changes costs or best-response gaps in
//! another (disjoint resources). Global MaxGain therefore interleaves
//! per-shard mover sequences; whenever it picks a player from shard `S`,
//! that player has the maximal gap *within `S`* — and the tie-break
//! (strict `>` scanning players in ascending index order, with shard-local
//! player order equal to ascending global order) picks the same player the
//! shard-local scan would. By induction each shard's subsequence equals the
//! shard-local MaxGain sequence from the same split initial profile, so the
//! converged profiles agree move for move. Local games preserve strategy
//! and resource order, so every cost is the *bit-identical* float sum.
//! [`ShardedCgbaSolver`] additionally draws its random initial profile
//! from the **global** game exactly like
//! [`CgbaSolver`](crate::bdma::CgbaSolver) does, consuming the same RNG
//! stream — on separable topologies the two solvers are interchangeable
//! (pinned by tests).
//!
//! # Cut players and reconciliation
//!
//! Players whose strategy set spans components (devices covered by two
//! islands) are homed to the majority component; their out-of-home
//! strategies are invisible to the shard solve. After the merge, a bounded
//! number ([`RECONCILE_PASSES`]) of global best-response sweeps over the
//! (sorted) cut players restores their full-strategy-set response using
//! the exact CGBA move condition, so the merged profile stays a
//! λ-equilibrium for every non-cut player and the social-cost gap to the
//! sequential solve is small (≤ 1% on weakly cut topologies, pinned by
//! tests). When the cut is not weak, [`ShardPlan::compute`] already
//! collapses to a single shard and this module degrades exactly to the
//! sequential path.

use std::sync::Mutex;

use eotora_game::{
    cgba_from_filtered, cgba_from_with_scratch, cgba_warm_from_with_scratch, CgbaConfig,
    CgbaReport, CgbaScratch, CongestionGame, GameStructure, Profile, ResourceWeights, ShardPlan,
    SplitGame, StrategyFilter,
};
use eotora_obs::{NoopRecorder, Recorder};
use eotora_util::pool::WorkerPool;
use eotora_util::rng::Pcg32;

use crate::bdma::P2aSolver;
use crate::p2a::P2aProblem;

/// Upper bound on post-merge global best-response sweeps over the cut
/// players. Each sweep visits every cut player once in ascending order and
/// stops early when a sweep makes no move; four sweeps settle the small
/// cross-island interactions a weak cut leaves behind without reopening
/// the whole game.
pub const RECONCILE_PASSES: usize = 4;

/// One shard's dense solver state: the remapped local game plus the cold
/// and warm CGBA scratches (separate, for the same reason
/// [`crate::bdma::CgbaSolver`] keeps two — a cold restart must not wipe
/// the warm snapshot).
#[derive(Debug)]
struct ShardState {
    structure: GameStructure,
    weights: ResourceWeights,
    scratch: CgbaScratch,
    warm_scratch: CgbaScratch,
}

/// What one shard's CGBA run reports back to the merge.
struct ShardRun {
    choices: Vec<usize>,
    iterations: usize,
    probes: u64,
    converged: bool,
}

/// A [`P2aSolver`] running CGBA(λ) per shard of a [`ShardPlan`] on a
/// bounded worker pool, then merging deterministically and reconciling cut
/// players. Owns the plan and per-shard state, rebuilt only when the game
/// *shape* changes (per-slot weight updates are synced in place inside the
/// shard jobs, so steady-state slots allocate nothing).
#[derive(Debug, Default)]
pub struct ShardedCgbaSolver {
    /// CGBA parameters (λ, iteration cap, scheduling rule) applied to
    /// every shard.
    pub config: CgbaConfig,
    /// Shard-count cap handed to [`ShardPlan::compute`]; `0` means one
    /// shard per connected component.
    pub max_shards: usize,
    plan: Option<ShardPlan>,
    shards: Vec<Mutex<ShardState>>,
}

impl ShardedCgbaSolver {
    /// Sharded CGBA with the given λ and shard cap (`0` = auto).
    pub fn with_lambda(lambda: f64, max_shards: usize) -> Self {
        Self {
            config: CgbaConfig { lambda, ..Default::default() },
            max_shards,
            ..Default::default()
        }
    }

    /// The plan of the most recent solve, if any — exposes shard counts
    /// and cut players for telemetry and benches.
    pub fn plan(&self) -> Option<&ShardPlan> {
        self.plan.as_ref()
    }

    /// (Re)computes the plan and per-shard local games when the shape
    /// changed; otherwise leaves them in place (weights are synced inside
    /// the shard jobs).
    fn ensure_plan(&mut self, game: &CongestionGame) {
        let structure = game.structure();
        if self.plan.as_ref().is_some_and(|p| p.matches(structure)) {
            return;
        }
        let plan = ShardPlan::compute(structure, self.max_shards);
        self.shards = plan
            .shards()
            .iter()
            .map(|spec| {
                let (local_structure, local_weights) = spec.build_local(structure, game.weights());
                Mutex::new(ShardState {
                    structure: local_structure,
                    weights: local_weights,
                    scratch: CgbaScratch::default(),
                    warm_scratch: CgbaScratch::default(),
                })
            })
            .collect();
        self.plan = Some(plan);
    }

    /// The shared solve body: split `initial_choices`, run CGBA per shard
    /// (cold or warm scratch), merge, reconcile cut players, emit counters.
    fn solve_split(
        &mut self,
        problem: &P2aProblem,
        initial_choices: Vec<usize>,
        warm: bool,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        let game = problem.game();
        self.ensure_plan(game);
        let plan = self.plan.as_ref().expect("ensure_plan installed a plan");
        let locals = plan.split_choices(&initial_choices);
        let config = &self.config;
        let structure = game.structure();
        let weights = game.weights();
        let shards = &self.shards;
        let runs: Vec<ShardRun> = WorkerPool::with_default().map_indexed(plan.num_shards(), |s| {
            let state = &mut *shards[s].lock().expect("shard state poisoned");
            plan.shard(s).sync_local(structure, weights, &mut state.structure, &mut state.weights);
            let local_game = SplitGame { structure: &state.structure, weights: &state.weights };
            let initial = Profile::from_choices(&local_game, locals[s].clone());
            let (report, probes) = if warm {
                let before = state.warm_scratch.probes();
                let report = cgba_warm_from_with_scratch(
                    &local_game,
                    initial,
                    config,
                    &mut state.warm_scratch,
                );
                (report, state.warm_scratch.probes() - before)
            } else {
                let before = state.scratch.probes();
                let report =
                    cgba_from_with_scratch(&local_game, initial, config, &mut state.scratch);
                (report, state.scratch.probes() - before)
            };
            ShardRun {
                choices: report.profile.choices().to_vec(),
                iterations: report.iterations,
                probes,
                converged: report.converged,
            }
        });

        let mut merged = initial_choices;
        let choice_vecs: Vec<Vec<usize>> = runs.iter().map(|r| r.choices.clone()).collect();
        plan.merge_choices(&choice_vecs, &mut merged);

        let mut reconcile_moves = 0u64;
        if !plan.cut_players().is_empty() {
            let mut profile = Profile::from_choices(game, merged);
            for _ in 0..RECONCILE_PASSES {
                let mut moved = false;
                for &i in plan.cut_players() {
                    let cost = profile.player_cost(game, i);
                    let (s, br) = profile.best_response(game, i);
                    if (1.0 - self.config.lambda) * cost > br {
                        profile.switch(game, i, s);
                        reconcile_moves += 1;
                        moved = true;
                    }
                }
                if !moved {
                    break;
                }
            }
            merged = profile.choices().to_vec();
        }

        if recorder.is_enabled() {
            let iterations: u64 = runs.iter().map(|r| r.iterations as u64).sum();
            let probes: u64 = runs.iter().map(|r| r.probes).sum();
            recorder.add(eotora_obs::COUNTER_CGBA_ITERATIONS, iterations);
            recorder.add(eotora_obs::COUNTER_CGBA_PROBES, probes);
            if warm {
                recorder.add(eotora_obs::COUNTER_CGBA_WARM_MOVES, iterations);
            }
            if runs.iter().all(|r| r.converged) {
                recorder.add(eotora_obs::COUNTER_CGBA_CONVERGED, 1);
            }
            recorder.add(eotora_obs::COUNTER_SHARD_SOLVES, plan.num_shards() as u64);
            if !plan.cut_players().is_empty() {
                recorder
                    .add(eotora_obs::COUNTER_SHARD_CUT_PLAYERS, plan.cut_players().len() as u64);
                recorder.add(eotora_obs::COUNTER_SHARD_RECONCILE_MOVES, reconcile_moves);
            }
        }
        merged
    }
}

impl P2aSolver for ShardedCgbaSolver {
    fn name(&self) -> &'static str {
        "Sharded-CGBA"
    }

    fn solve(&mut self, problem: &P2aProblem, rng: &mut Pcg32) -> Vec<usize> {
        self.solve_with(problem, rng, &NoopRecorder)
    }

    fn solve_with(
        &mut self,
        problem: &P2aProblem,
        rng: &mut Pcg32,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        // The initial profile is drawn from the *global* game, exactly like
        // the sequential CgbaSolver — same RNG consumption, same split seed.
        let initial = Profile::random(problem.game(), rng);
        self.solve_split(problem, initial.choices().to_vec(), false, recorder)
    }

    fn solve_seeded(
        &mut self,
        problem: &P2aProblem,
        seed: Option<&[usize]>,
        rng: &mut Pcg32,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        let warm_seed = seed.and_then(|c| Profile::from_retained_choices(problem.game(), c));
        let Some(initial) = warm_seed else {
            return self.solve_with(problem, rng, recorder);
        };
        self.solve_split(problem, initial.choices().to_vec(), true, recorder)
    }
}

/// Result of [`cgba_sharded_filtered`]: the merged report plus shard-level
/// accounting for the robust ladder's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedFilteredOutcome {
    /// The merged profile with global costs — drop-in for the report
    /// [`cgba_from_filtered`] would have produced.
    pub report: CgbaReport,
    /// Shards the plan produced (1 when the cut was not weak).
    pub shards_used: usize,
    /// Shards whose run ended un-converged — the deadline (or iteration
    /// cap) cut them short and their best-so-far profile was merged. Each
    /// shard degrades alone; converged shards still contribute their
    /// equilibrium.
    pub degraded_shards: u64,
    /// Global best-response moves the cut-player reconciliation made.
    pub reconcile_moves: u64,
}

/// The sharded counterpart of [`cgba_from_filtered`]: split, solve each
/// shard with the filter projected onto its local view
/// ([`StrategyFilter::project`]) and the shared `should_stop` deadline,
/// merge, then reconcile cut players with *filtered* global best responses
/// (also deadline-polled). Built for the robust path, where plans are not
/// cached — locals are built per call.
///
/// On separable games with an all-allowing filter and a never-firing
/// `should_stop`, the merged choices equal the sequential
/// [`cgba_from_filtered`] run move for move (same restriction argument as
/// the module docs). A shard that misses the deadline merges its
/// best-so-far profile while the others still converge — the failure is
/// contained to the shard.
///
/// # Panics
///
/// Same conditions as [`cgba_from_filtered`].
pub fn cgba_sharded_filtered(
    game: &CongestionGame,
    initial: Profile,
    config: &CgbaConfig,
    filter: &StrategyFilter,
    max_shards: usize,
    should_stop: &(dyn Fn() -> bool + Sync),
) -> ShardedFilteredOutcome {
    let plan = ShardPlan::compute(game.structure(), max_shards);
    if plan.is_trivial() {
        let report = cgba_from_filtered(game, initial, config, filter, should_stop);
        let degraded_shards = u64::from(!report.converged);
        return ShardedFilteredOutcome {
            report,
            shards_used: 1,
            degraded_shards,
            reconcile_moves: 0,
        };
    }

    let initial_cost = initial.total_cost(game);
    let locals = plan.split_choices(initial.choices());
    let structure = game.structure();
    let weights = game.weights();
    let runs: Vec<ShardRun> = WorkerPool::with_default().map_indexed(plan.num_shards(), |s| {
        let spec = plan.shard(s);
        let (local_structure, local_weights) = spec.build_local(structure, weights);
        let local_game = SplitGame { structure: &local_structure, weights: &local_weights };
        let local_filter = filter.project(spec, &local_structure);
        let init = Profile::from_choices(&local_game, locals[s].clone());
        let report = cgba_from_filtered(&local_game, init, config, &local_filter, should_stop);
        ShardRun {
            choices: report.profile.choices().to_vec(),
            iterations: report.iterations,
            probes: 0,
            converged: report.converged,
        }
    });

    let mut merged = initial.choices().to_vec();
    let choice_vecs: Vec<Vec<usize>> = runs.iter().map(|r| r.choices.clone()).collect();
    plan.merge_choices(&choice_vecs, &mut merged);
    let mut iterations: usize = runs.iter().map(|r| r.iterations).sum();
    let converged = runs.iter().all(|r| r.converged);
    let degraded_shards = runs.iter().filter(|r| !r.converged).count() as u64;

    let mut profile = Profile::from_choices(game, merged);
    let mut reconcile_moves = 0u64;
    if !plan.cut_players().is_empty() {
        'passes: for _ in 0..RECONCILE_PASSES {
            let mut moved = false;
            for &i in plan.cut_players() {
                if should_stop() {
                    break 'passes;
                }
                let cost = profile.player_cost(game, i);
                let Some((s, br)) = profile.best_response_filtered(game, i, filter) else {
                    continue;
                };
                if (1.0 - config.lambda) * cost > br {
                    profile.switch(game, i, s);
                    reconcile_moves += 1;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
    }
    iterations += reconcile_moves as usize;
    let total_cost = profile.total_cost(game);
    ShardedFilteredOutcome {
        report: CgbaReport { profile, total_cost, initial_cost, iterations, converged },
        shards_used: plan.num_shards(),
        degraded_shards,
        reconcile_moves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdma::{solve_p2, BdmaConfig, CgbaSolver};
    use crate::system::{MecSystem, SystemConfig};
    use eotora_states::{PaperStateConfig, StateProvider, SystemState};
    use eotora_topology::RandomTopologyConfig;

    fn island_system(
        devices: usize,
        islands: usize,
        straddlers: usize,
        seed: u64,
    ) -> (MecSystem, SystemState) {
        let mut topology = RandomTopologyConfig::scale_up(devices, islands);
        topology.island_straddlers = straddlers;
        let config = SystemConfig { topology, ..SystemConfig::paper_defaults(devices) };
        let system = MecSystem::random(&config, seed);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = p.observe(0, system.topology());
        (system, state)
    }

    #[test]
    fn sharded_solve_is_decision_identical_on_separable_topology() {
        let (system, state) = island_system(48, 4, 0, 7);
        let freqs = system.min_frequencies();
        let problem = P2aProblem::build(&system, &state, &freqs);
        let mut sequential = CgbaSolver::default();
        let mut sharded = ShardedCgbaSolver::default();
        let mut rng_a = Pcg32::seed(3);
        let mut rng_b = Pcg32::seed(3);
        let a = sequential.solve(&problem, &mut rng_a);
        let b = sharded.solve(&problem, &mut rng_b);
        assert_eq!(a, b, "sharded choices diverged from the sequential oracle");
        assert_eq!(rng_a, rng_b, "RNG streams diverged");
        let plan = sharded.plan().unwrap();
        assert!(plan.num_shards() > 1, "island topology produced {} shards", plan.num_shards());
        assert!(plan.cut_players().is_empty());

        // Warm (seeded) path from the converged profile must also agree.
        let a2 = sequential.solve_seeded(&problem, Some(&a), &mut rng_a, &NoopRecorder);
        let b2 = sharded.solve_seeded(&problem, Some(&b), &mut rng_b, &NoopRecorder);
        assert_eq!(a2, b2);
        assert_eq!(rng_a, rng_b);
    }

    #[test]
    fn sharded_bdma_solution_matches_sequential_on_separable_topology() {
        let (system, state) = island_system(36, 3, 0, 21);
        let config = BdmaConfig { rounds: 3, ..Default::default() };
        let mut sequential = CgbaSolver::default();
        let mut sharded = ShardedCgbaSolver::default();
        let sol_a =
            solve_p2(&system, &state, 100.0, 40.0, &config, &mut sequential, &mut Pcg32::seed(5));
        let sol_b =
            solve_p2(&system, &state, 100.0, 40.0, &config, &mut sharded, &mut Pcg32::seed(5));
        assert_eq!(sol_a, sol_b);
    }

    #[test]
    fn straddlers_are_reconciled_within_one_percent_social_cost() {
        let (system, state) = island_system(40, 4, 4, 11);
        let freqs = system.min_frequencies();
        let problem = P2aProblem::build(&system, &state, &freqs);
        let game = problem.game();
        let mut sequential = CgbaSolver::default();
        let mut sharded = ShardedCgbaSolver::default();
        let a = sequential.solve(&problem, &mut Pcg32::seed(9));
        let b = sharded.solve(&problem, &mut Pcg32::seed(9));
        let plan = sharded.plan().unwrap();
        assert!(!plan.cut_players().is_empty(), "straddlers should be cut players");
        let cost_a = Profile::from_choices(game, a).total_cost(game);
        let cost_b = Profile::from_choices(game, b.clone()).total_cost(game);
        assert!(
            cost_b <= cost_a * 1.01 + 1e-12,
            "sharded social cost {cost_b} more than 1% above sequential {cost_a}"
        );
        // Reconciliation ran to a fixpoint on this instance: every cut
        // player ends on a global best response (non-cut players may be
        // nudged slightly off theirs by those moves — that is exactly the
        // ≤1% social-cost gap asserted above).
        let profile = Profile::from_choices(game, b);
        for &i in plan.cut_players() {
            let cost = profile.player_cost(game, i);
            let (_, br) = profile.best_response(game, i);
            assert!(cost <= br + 1e-9, "cut player {i} not reconciled: {cost} vs {br}");
        }
    }

    #[test]
    fn dense_paper_topology_degrades_to_single_shard() {
        // paper_defaults coverage makes nearly every device a cut player —
        // the plan must refuse to cut and behave exactly sequentially.
        let system = MecSystem::random(&SystemConfig::paper_defaults(20), 33);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 33);
        let state = p.observe(0, system.topology());
        let freqs = system.min_frequencies();
        let problem = P2aProblem::build(&system, &state, &freqs);
        let mut sequential = CgbaSolver::default();
        let mut sharded = ShardedCgbaSolver::default();
        let a = sequential.solve(&problem, &mut Pcg32::seed(1));
        let b = sharded.solve(&problem, &mut Pcg32::seed(1));
        assert_eq!(a, b);
        assert!(sharded.plan().unwrap().is_trivial());
    }

    #[test]
    fn filtered_sharded_matches_sequential_with_open_filter() {
        let (system, state) = island_system(30, 3, 0, 13);
        let freqs = system.min_frequencies();
        let problem = P2aProblem::build(&system, &state, &freqs);
        let game = problem.game();
        let filter = StrategyFilter::allow_all(game.structure());
        let config = CgbaConfig::default();
        let initial = Profile::random(game, &mut Pcg32::seed(2));
        let reference = cgba_from_filtered(game, initial.clone(), &config, &filter, || false);
        let out = cgba_sharded_filtered(game, initial, &config, &filter, 0, &|| false);
        assert!(out.shards_used > 1);
        assert_eq!(out.degraded_shards, 0);
        assert_eq!(out.report.profile.choices(), reference.profile.choices());
        assert!(out.report.converged);
    }

    #[test]
    fn expired_deadline_degrades_every_shard_but_still_merges() {
        let (system, state) = island_system(30, 3, 0, 17);
        let freqs = system.min_frequencies();
        let problem = P2aProblem::build(&system, &state, &freqs);
        let game = problem.game();
        let filter = StrategyFilter::allow_all(game.structure());
        let initial = Profile::random(game, &mut Pcg32::seed(4));
        let out =
            cgba_sharded_filtered(game, initial, &CgbaConfig::default(), &filter, 0, &|| true);
        assert!(out.shards_used > 1);
        assert_eq!(out.degraded_shards, out.shards_used as u64);
        assert!(!out.report.converged);
        assert_eq!(out.report.profile.choices().len(), game.num_players());
    }

    #[test]
    fn shard_counters_are_emitted() {
        let (system, state) = island_system(40, 4, 2, 19);
        let freqs = system.min_frequencies();
        let problem = P2aProblem::build(&system, &state, &freqs);
        let mut sharded = ShardedCgbaSolver::default();
        let rec = eotora_obs::MetricsRecorder::new();
        sharded.solve_with(&problem, &mut Pcg32::seed(6), &rec);
        let shards = sharded.plan().unwrap().num_shards() as u64;
        assert_eq!(rec.counter(eotora_obs::COUNTER_SHARD_SOLVES), shards);
        assert_eq!(rec.counter(eotora_obs::COUNTER_SHARD_CUT_PLAYERS), 2);
        assert!(rec.counter(eotora_obs::COUNTER_CGBA_ITERATIONS) > 0);
    }

    #[test]
    fn max_shards_cap_is_respected() {
        let (system, state) = island_system(48, 6, 0, 23);
        let freqs = system.min_frequencies();
        let problem = P2aProblem::build(&system, &state, &freqs);
        let mut capped = ShardedCgbaSolver { max_shards: 2, ..Default::default() };
        let mut auto = ShardedCgbaSolver::default();
        let a = capped.solve(&problem, &mut Pcg32::seed(8));
        let b = auto.solve(&problem, &mut Pcg32::seed(8));
        assert_eq!(capped.plan().unwrap().num_shards(), 2);
        assert!(auto.plan().unwrap().num_shards() > 2);
        // Bin-packing changes which shards solve which component but not
        // the per-component dynamics: choices agree.
        assert_eq!(a, b);
    }
}
