//! The fault-tolerant anytime P2 solve: failure masking + solve deadlines.
//!
//! The paper-faithful path ([`crate::bdma::solve_p2_in`]) assumes every
//! server, station, and fronthaul edge is up and that it may run to
//! completion. This module keeps the controller producing *feasible*
//! decisions when neither holds:
//!
//! * **Failure masking** — an [`AvailabilityMask`] is lowered to a
//!   [`eotora_game::StrategyFilter`] over the unchanged game shape, so the
//!   CGBA solve simply never considers strategies touching a failed
//!   component (see [`crate::fault`]). Retained warm profiles are repaired
//!   against the masked game: displaced devices fall back to their cheapest
//!   reachable alternative. Energy accounting charges only servers that are
//!   actually up ([`crate::system::MecSystem::energy_cost_masked`]), so the
//!   virtual queue reflects energy actually spent.
//! * **Anytime deadlines** — the solve checkpoints an incumbent *before*
//!   the first BDMA round (the repaired previous profile, or each device's
//!   cheapest-alone allowed strategy on a cold start, at parked
//!   frequencies) and re-checkpoints after every improving round. A
//!   wall-clock deadline is polled between rounds and inside every CGBA
//!   iteration; expiry returns the incumbent — the degradation ladder
//!   "warm incumbent → repaired previous profile → cheapest-reachable
//!   cold seed" is realized by what the incumbent happens to be when the
//!   clock runs out.
//! * **Bounded retries** — a round whose candidate objective comes out
//!   non-finite (transient numeric failure) is retried from the
//!   deterministic solo seed at minimum frequencies, at most
//!   [`RobustConfig::max_retries`] times; exhaustion returns the incumbent.
//!
//! Unlike the paper path, the robust solve is deterministic given its
//! inputs (no RNG): the seed profile is the repaired retained profile or
//! the solo-cheapest profile, never a random one. Determinism is what makes
//! chaos runs reproducible and the deadline the *only* source of run-to-run
//! variation.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::time::{Duration, Instant};

use eotora_game::{cgba_from_filtered, CgbaConfig, Profile};
use eotora_obs::{Recorder, SpanGuard, TraceEvent};
use eotora_states::SystemState;

use crate::bdma::P2Solution;
use crate::decision::{Assignment, SlotDecision};
use crate::error::SolveError;
use crate::fault::AvailabilityMask;
use crate::p2b::solve_p2b;
use crate::system::MecSystem;
use crate::workspace::SlotWorkspace;

/// Configuration of the robust per-slot solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustConfig {
    /// Wall-clock budget for one slot's solve; `None` disables the
    /// anytime cutoff. Polled between BDMA rounds and inside every CGBA
    /// iteration, so expiry latency is one best-response scan, not one
    /// round. The speculative pre-solve reuses the same budget semantics
    /// for its staged solve ([`crate::speculate::SpeculativeConfig::deadline`]),
    /// enforced post hoc there because adoption needs the full bit-exact
    /// result.
    pub deadline: Option<Duration>,
    /// BDMA alternation rounds `z` (upper bound; the deadline may stop
    /// earlier).
    pub rounds: usize,
    /// Immediate retries allowed when a round's candidate objective is
    /// non-finite.
    pub max_retries: u32,
    /// CGBA approximation slack λ.
    pub lambda: f64,
    /// Shard cap for the P2-A step: `0` keeps the sequential
    /// [`cgba_from_filtered`] solve; any other value routes through
    /// [`crate::sharded::cgba_sharded_filtered`] with this cap
    /// (`usize::MAX` ≈ one shard per BS-cluster component). On dense
    /// topologies the plan collapses to one shard either way, so enabling
    /// this is always safe; a shard that misses the deadline degrades
    /// alone while the rest still converge.
    pub shards: usize,
    /// Whether the engine runs the state sanitizer ahead of the solve
    /// (consumed by the simulation runner, not by
    /// [`solve_p2_robust`] itself). Disabling it lets corrupt
    /// observations reach the solver — a diagnostic mode that forces
    /// the ladder to escalate, exercising the lifeboat and the
    /// flight-recorder postmortem path.
    pub sanitize: bool,
}

impl Default for RobustConfig {
    fn default() -> Self {
        Self { deadline: None, rounds: 5, max_retries: 2, lambda: 0.0, shards: 0, sanitize: true }
    }
}

/// What one robust slot solve did, besides the solution itself.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustReport {
    /// The incumbent solution (always finite and feasible).
    pub solution: P2Solution,
    /// Game resources masked out this slot.
    pub masked_resources: u64,
    /// Players displaced off their retained strategy by the mask and
    /// repaired onto their cheapest allowed alternative.
    pub repaired_players: u64,
    /// Players whose entire strategy set was masked and were re-allowed
    /// wholesale (best-effort).
    pub best_effort_players: u64,
    /// Whether the wall-clock deadline cut the solve short.
    pub deadline_expired: bool,
    /// Non-finite-candidate retries spent.
    pub retries: u32,
}

/// Solves one slot's P2 under an availability mask with an anytime
/// deadline. Emits the usual `p2a`/`p2b` spans, `bdma_iteration` events and
/// BDMA counters, plus the `fault.*` / `deadline.*` counters, into
/// `recorder`.
///
/// # Errors
///
/// [`SolveError::NoAllowedStrategy`] if some device has no strategy at all
/// (an invalid game — masking alone cannot cause this, the best-effort
/// re-allow guarantees a non-empty set); [`SolveError::NonFinite`] if even
/// the seed incumbent evaluates non-finite (corrupt state that the
/// sanitizer should have caught upstream).
#[allow(clippy::too_many_arguments)]
pub fn solve_p2_robust(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    mask: &AvailabilityMask,
    config: &RobustConfig,
    workspace: &mut SlotWorkspace,
    slot: u64,
    recorder: &dyn Recorder,
) -> Result<RobustReport, SolveError> {
    let start = Instant::now();
    let expired = || config.deadline.is_some_and(|d| start.elapsed() >= d);
    // Pre-flight: corrupt observations (NaN cycles, negative bits, infinite
    // spectral efficiency) must surface as a catchable SolveError before
    // they reach game construction, whose invariants assume clean inputs.
    // Reached only when the sanitizer is disabled or was itself defeated.
    check_state_well_formed(state)?;
    let min_freqs = system.min_frequencies();
    let down = mask.down_server_flags(system.topology().num_servers());

    // Starting frequencies: the retained previous-slot frequencies when
    // their shape still matches, else Ω^L — with every down server parked
    // at its minimum either way.
    let retained_choices: Option<Vec<usize>> = workspace.retained_choices().map(<[usize]>::to_vec);
    let mut freqs = match workspace.retained_freqs() {
        Some(f) if f.len() == min_freqs.len() => f.to_vec(),
        _ => min_freqs.clone(),
    };
    for (n, &d) in down.iter().enumerate() {
        if d {
            freqs[n] = min_freqs[n];
        }
    }

    // Lower the mask onto the prepared problem and build the seed profile:
    // the repaired retained profile when one exists, else each device's
    // cheapest-alone allowed strategy (also the retry fallback basin).
    let (effect, seed_choices, solo_choices, seed_assignments, repaired_players) = {
        let problem = workspace.prepare(system, state, &freqs);
        let effect = mask.strategy_filter(problem);
        let game = problem.game();
        let mut solo = Vec::with_capacity(game.num_players());
        for i in 0..game.num_players() {
            match Profile::solo_cheapest_filtered(game, i, &effect.filter) {
                Some(s) => solo.push(s),
                None => return Err(SolveError::NoAllowedStrategy { device: i }),
            }
        }
        let (seed, repaired) = match retained_choices
            .as_deref()
            .and_then(|c| Profile::from_retained_choices_filtered(game, c, &effect.filter))
        {
            Some((profile, displaced)) => (profile.choices().to_vec(), displaced as u64),
            None => (solo.clone(), 0),
        };
        let assignments = problem.assignments_from_choices(&seed);
        (effect, seed, solo, assignments, repaired)
    };

    // The robust objective: latency under the Lemma 1 allocation plus
    // queue-weighted excess of the energy *actually spent* (down servers
    // draw nothing).
    let evaluate = |assignments: &[Assignment], f: &[f64]| {
        let latency = crate::latency::optimal_latency(system, state, assignments, f).total();
        let energy = system.energy_cost_masked(state.price_per_kwh, f, &effect.down_servers);
        (latency, energy, v * latency + queue * (energy - system.budget_per_slot()))
    };

    // Checkpoint the seed incumbent before any round runs: from here on the
    // solve can be cut at any instant and still return something feasible.
    let (lat, energy, objective) = evaluate(&seed_assignments, &freqs);
    if !objective.is_finite() {
        return Err(SolveError::NonFinite { context: "seed objective", index: 0 });
    }
    let mut incumbent = P2Solution {
        assignments: seed_assignments,
        freqs_hz: freqs.clone(),
        objective,
        latency: lat,
        energy_cost: energy,
        rounds_used: 0,
    };
    let mut incumbent_choices = seed_choices.clone();

    let cgba_config = CgbaConfig { lambda: config.lambda, ..Default::default() };
    let mut current = seed_choices;
    let mut retries = 0u32;
    let mut rounds_used = 0usize;
    let mut deadline_expired = false;
    let mut round = 0usize;
    while round < config.rounds {
        if expired() {
            deadline_expired = true;
            break;
        }
        let p2a_span = SpanGuard::new(recorder, eotora_obs::SPAN_P2A);
        let (choices, assignments) = {
            let problem = workspace.refresh_frequencies(system);
            let game = problem.game();
            let initial = Profile::from_choices(game, current.clone());
            let report = if config.shards == 0 {
                cgba_from_filtered(game, initial, &cgba_config, &effect.filter, expired)
            } else {
                let out = crate::sharded::cgba_sharded_filtered(
                    game,
                    initial,
                    &cgba_config,
                    &effect.filter,
                    config.shards,
                    &expired,
                );
                if recorder.is_enabled() {
                    recorder.add(eotora_obs::COUNTER_SHARD_SOLVES, out.shards_used as u64);
                    if out.degraded_shards > 0 {
                        recorder
                            .add(eotora_obs::COUNTER_SHARD_DEADLINE_DEGRADED, out.degraded_shards);
                    }
                    if out.reconcile_moves > 0 {
                        recorder
                            .add(eotora_obs::COUNTER_SHARD_RECONCILE_MOVES, out.reconcile_moves);
                    }
                }
                out.report
            };
            let choices = report.profile.choices().to_vec();
            let assignments = problem.assignments_from_choices(&choices);
            (choices, assignments)
        };
        let p2a_nanos = p2a_span.finish().unwrap_or(0);
        let p2b_span = SpanGuard::new(recorder, eotora_obs::SPAN_P2B);
        let p2b = solve_p2b(system, state, &assignments, v, queue);
        let p2b_nanos = p2b_span.finish().unwrap_or(0);
        let mut cand_freqs = p2b.freqs_hz;
        for (n, &d) in effect.down_servers.iter().enumerate() {
            if d {
                cand_freqs[n] = min_freqs[n];
            }
        }
        let (lat, energy, objective) = evaluate(&assignments, &cand_freqs);
        round += 1;
        if !objective.is_finite() {
            if retries >= config.max_retries {
                // Retry budget exhausted: degrade to the incumbent rather
                // than keep burning the deadline on a hopeless basin.
                break;
            }
            retries += 1;
            current = solo_choices.clone();
            workspace.set_freqs(&min_freqs);
            continue;
        }
        workspace.set_freqs(&cand_freqs);
        rounds_used = round;
        let accepted = objective < incumbent.objective;
        if recorder.is_enabled() {
            recorder.record(&TraceEvent::BdmaIteration {
                slot,
                round: round as u64,
                objective,
                accepted,
                p2a_nanos,
                p2b_nanos,
            });
            recorder.add(eotora_obs::COUNTER_BDMA_ROUNDS, 1);
            if accepted {
                recorder.add(eotora_obs::COUNTER_BDMA_ACCEPTED, 1);
            }
        }
        if accepted {
            incumbent = P2Solution {
                assignments,
                freqs_hz: cand_freqs,
                objective,
                latency: lat,
                energy_cost: energy,
                rounds_used: 0,
            };
            incumbent_choices = choices.clone();
        }
        current = choices;
        if expired() {
            deadline_expired = true;
            break;
        }
    }
    incumbent.rounds_used = rounds_used;
    workspace.retain_solution(&incumbent_choices, &incumbent.freqs_hz);
    if recorder.is_enabled() {
        if effect.masked_resources > 0 {
            recorder.add(eotora_obs::COUNTER_FAULT_MASKED_RESOURCES, effect.masked_resources);
        }
        let repaired_total = repaired_players + effect.best_effort_players;
        if repaired_total > 0 {
            recorder.add(eotora_obs::COUNTER_FAULT_REPAIRED_PLAYERS, repaired_total);
        }
        if deadline_expired {
            recorder.add(eotora_obs::COUNTER_DEADLINE_EXPIRATIONS, 1);
        }
        if retries > 0 {
            recorder.add(eotora_obs::COUNTER_ROBUST_RETRIES, u64::from(retries));
        }
    }
    Ok(RobustReport {
        solution: incumbent,
        masked_resources: effect.masked_resources,
        repaired_players,
        best_effort_players: effect.best_effort_players,
        deadline_expired,
        retries,
    })
}

/// Rejects observations whose entries would violate the congestion game's
/// input invariants (finite, positive workload and channel terms; finite
/// price). The sanitizer screens these out on the normal path; this guard
/// is what turns a *bypassed* sanitizer into a recoverable
/// [`SolveError::NonFinite`] instead of a downstream panic.
fn check_state_well_formed(state: &SystemState) -> Result<(), SolveError> {
    let bad = |x: f64| !x.is_finite() || x <= 0.0;
    if let Some(i) = state.task_cycles.iter().position(|&x| bad(x)) {
        return Err(SolveError::NonFinite { context: "task_cycles", index: i });
    }
    if let Some(i) = state.data_bits.iter().position(|&x| bad(x)) {
        return Err(SolveError::NonFinite { context: "data_bits", index: i });
    }
    for (i, row) in state.spectral_efficiency.iter().enumerate() {
        if row.iter().any(|&x| bad(x)) {
            return Err(SolveError::NonFinite { context: "spectral_efficiency", index: i });
        }
    }
    if !state.price_per_kwh.is_finite() {
        return Err(SolveError::NonFinite { context: "price_per_kwh", index: 0 });
    }
    Ok(())
}

/// The absolute bottom of the degradation ladder: every device offloads
/// via base station 0 to its first reachable server, all servers parked at
/// minimum frequency, equal shares. Valid for any topology (every station
/// reaches at least one server by construction), independent of the
/// observed state — the slot the controller emits when even the seed
/// incumbent is unusable. The latency/objective it reports may be
/// non-finite if the state itself is corrupt; the *decision* is feasible
/// regardless.
pub fn lifeboat_report(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    down: &[bool],
) -> RobustReport {
    let topo = system.topology();
    let station = eotora_topology::BaseStationId(0);
    let server = topo.servers_reachable_from(station)[0];
    let assignments = vec![Assignment { base_station: station, server }; topo.num_devices()];
    let freqs = system.min_frequencies();
    let decision = equal_share_decision(system, &assignments, &freqs);
    let latency = crate::latency::latency_under(system, state, &decision).total();
    let energy = system.energy_cost_masked(state.price_per_kwh, &freqs, down);
    let objective = v * latency + queue * (energy - system.budget_per_slot());
    RobustReport {
        solution: P2Solution {
            assignments,
            freqs_hz: freqs,
            objective,
            latency,
            energy_cost: energy,
            rounds_used: 0,
        },
        masked_resources: 0,
        repaired_players: 0,
        best_effort_players: 0,
        deadline_expired: false,
        retries: 0,
    }
}

/// The last rung of the degradation ladder below Lemma 1: equal shares on
/// every resource. Strictly worse latency than
/// [`crate::allocation::optimal_allocation`], but always valid for any
/// assignment the topology allows — used when the closed-form allocation
/// itself reports corrupt input.
pub fn equal_share_decision(
    system: &MecSystem,
    assignments: &[Assignment],
    freqs_hz: &[f64],
) -> SlotDecision {
    let topo = system.topology();
    let mut per_station = vec![0usize; topo.num_base_stations()];
    let mut per_server = vec![0usize; topo.num_servers()];
    for a in assignments {
        per_station[a.base_station.index()] += 1;
        per_server[a.server.index()] += 1;
    }
    let mut access_share = Vec::with_capacity(assignments.len());
    let mut fronthaul_share = Vec::with_capacity(assignments.len());
    let mut compute_share = Vec::with_capacity(assignments.len());
    for a in assignments {
        let station_share = 1.0 / per_station[a.base_station.index()] as f64;
        access_share.push(station_share);
        fronthaul_share.push(station_share);
        compute_share.push(1.0 / per_server[a.server.index()] as f64);
    }
    SlotDecision {
        assignments: assignments.to_vec(),
        access_share,
        fronthaul_share,
        compute_share,
        frequencies_hz: freqs_hz.to_vec(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use eotora_obs::{MetricsRecorder, NoopRecorder};
    use eotora_states::{PaperStateConfig, StateProvider};

    fn setup(devices: usize, seed: u64) -> (MecSystem, SystemState) {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = p.observe(0, system.topology());
        (system, state)
    }

    #[test]
    fn unmasked_solve_is_finite_feasible_and_deterministic() {
        let (system, state) = setup(12, 51);
        let run = || {
            let mut ws = SlotWorkspace::new();
            solve_p2_robust(
                &system,
                &state,
                100.0,
                0.0,
                &AvailabilityMask::default(),
                &RobustConfig::default(),
                &mut ws,
                0,
                &NoopRecorder,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.solution.objective.is_finite());
        assert_eq!(a.masked_resources, 0);
        assert_eq!(a.repaired_players, 0);
        assert!(!a.deadline_expired);
        let d = crate::allocation::optimal_allocation(
            &system,
            &state,
            &a.solution.assignments,
            &a.solution.freqs_hz,
        );
        d.validate(&system).unwrap();
    }

    #[test]
    fn masked_solve_avoids_down_server_and_charges_it_nothing() {
        let (system, state) = setup(14, 52);
        let mask = AvailabilityMask {
            down_servers: vec![0],
            down_stations: vec![],
            severed_links: vec![],
        };
        let mut ws = SlotWorkspace::new();
        let r = solve_p2_robust(
            &system,
            &state,
            100.0,
            5.0,
            &mask,
            &RobustConfig::default(),
            &mut ws,
            0,
            &NoopRecorder,
        )
        .unwrap();
        assert!(r.masked_resources >= 1);
        for a in &r.solution.assignments {
            assert_ne!(a.server.index(), 0, "device routed to the crashed server");
        }
        // Energy accounting must exclude server 0 entirely.
        let down = mask.down_server_flags(system.topology().num_servers());
        let masked_cost =
            system.energy_cost_masked(state.price_per_kwh, &r.solution.freqs_hz, &down);
        assert_eq!(r.solution.energy_cost, masked_cost);
        assert!(masked_cost < system.energy_cost(state.price_per_kwh, &r.solution.freqs_hz));
    }

    #[test]
    fn warm_profile_is_repaired_when_its_server_crashes() {
        let (system, state) = setup(10, 53);
        let mut ws = SlotWorkspace::new();
        // Slot 0: fault-free, retains a warm profile.
        let first = solve_p2_robust(
            &system,
            &state,
            100.0,
            0.0,
            &AvailabilityMask::default(),
            &RobustConfig::default(),
            &mut ws,
            0,
            &NoopRecorder,
        )
        .unwrap();
        // Crash the server that serves the most devices.
        let mut load = vec![0usize; system.topology().num_servers()];
        for a in &first.solution.assignments {
            load[a.server.index()] += 1;
        }
        let crashed = load.iter().enumerate().max_by_key(|&(_, &l)| l).unwrap().0;
        let mask = AvailabilityMask {
            down_servers: vec![crashed],
            down_stations: vec![],
            severed_links: vec![],
        };
        let r = solve_p2_robust(
            &system,
            &state,
            100.0,
            0.0,
            &mask,
            &RobustConfig::default(),
            &mut ws,
            1,
            &NoopRecorder,
        )
        .unwrap();
        assert_eq!(r.repaired_players, load[crashed] as u64);
        for a in &r.solution.assignments {
            assert_ne!(a.server.index(), crashed);
        }
    }

    #[test]
    fn zero_deadline_returns_the_seed_incumbent_immediately() {
        let (system, state) = setup(20, 54);
        let mut ws = SlotWorkspace::new();
        let rec = MetricsRecorder::new();
        let config = RobustConfig { deadline: Some(Duration::ZERO), ..Default::default() };
        let r = solve_p2_robust(
            &system,
            &state,
            100.0,
            0.0,
            &AvailabilityMask::default(),
            &config,
            &mut ws,
            0,
            &rec,
        )
        .unwrap();
        assert!(r.deadline_expired);
        assert_eq!(r.solution.rounds_used, 0);
        assert!(r.solution.objective.is_finite());
        assert_eq!(rec.counter(eotora_obs::COUNTER_DEADLINE_EXPIRATIONS), 1);
        // The seed decision is still feasible.
        crate::allocation::try_optimal_allocation(
            &system,
            &state,
            &r.solution.assignments,
            &r.solution.freqs_hz,
        )
        .unwrap()
        .validate(&system)
        .unwrap();
    }

    #[test]
    fn no_deadline_runs_all_rounds_and_counts_nothing() {
        let (system, state) = setup(10, 55);
        let mut ws = SlotWorkspace::new();
        let rec = MetricsRecorder::new();
        let config = RobustConfig { rounds: 3, ..Default::default() };
        let r = solve_p2_robust(
            &system,
            &state,
            100.0,
            0.0,
            &AvailabilityMask::default(),
            &config,
            &mut ws,
            0,
            &rec,
        )
        .unwrap();
        assert!(!r.deadline_expired);
        assert_eq!(r.solution.rounds_used, 3);
        assert_eq!(rec.counter(eotora_obs::COUNTER_DEADLINE_EXPIRATIONS), 0);
        assert_eq!(rec.counter(eotora_obs::COUNTER_BDMA_ROUNDS), 3);
    }

    #[test]
    fn fault_counters_are_emitted() {
        let (system, state) = setup(8, 56);
        let mut ws = SlotWorkspace::new();
        let rec = MetricsRecorder::new();
        let mask = AvailabilityMask {
            down_servers: vec![1],
            down_stations: vec![],
            severed_links: vec![],
        };
        solve_p2_robust(
            &system,
            &state,
            100.0,
            0.0,
            &mask,
            &RobustConfig::default(),
            &mut ws,
            0,
            &rec,
        )
        .unwrap();
        assert!(rec.counter(eotora_obs::COUNTER_FAULT_MASKED_RESOURCES) >= 1);
    }

    #[test]
    fn sharded_robust_solve_matches_sequential_on_islands() {
        // The robust solve is RNG-free, so on a separable island topology
        // the sharded P2-A step must reproduce the sequential run exactly.
        let sys_config = SystemConfig {
            topology: eotora_topology::RandomTopologyConfig::scale_up(30, 3),
            ..SystemConfig::paper_defaults(30)
        };
        let system = MecSystem::random(&sys_config, 61);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 61);
        let state = p.observe(0, system.topology());
        let run = |shards: usize| {
            let mut ws = SlotWorkspace::new();
            solve_p2_robust(
                &system,
                &state,
                100.0,
                0.0,
                &AvailabilityMask::default(),
                &RobustConfig { shards, ..Default::default() },
                &mut ws,
                0,
                &NoopRecorder,
            )
            .unwrap()
        };
        assert_eq!(run(0), run(usize::MAX));
    }

    #[test]
    fn equal_share_fallback_validates() {
        let (system, state) = setup(9, 57);
        let mut ws = SlotWorkspace::new();
        let r = solve_p2_robust(
            &system,
            &state,
            100.0,
            0.0,
            &AvailabilityMask::default(),
            &RobustConfig::default(),
            &mut ws,
            0,
            &NoopRecorder,
        )
        .unwrap();
        let d = equal_share_decision(&system, &r.solution.assignments, &r.solution.freqs_hz);
        d.validate(&system).unwrap();
        let _ = state;
    }
}
