//! Online decisions `α_t` and their feasibility validation
//! (paper constraints (1)–(6) plus the frequency boxes).

use std::fmt;

use eotora_topology::{BaseStationId, ServerId};
use serde::{Deserialize, Serialize};

use crate::system::MecSystem;

/// One device's discrete choice: offload via `base_station` to `server`
/// (encoding both `x_{i,k,t}` and `y_{i,n,t}`; constraints (1)–(2) hold by
/// construction since exactly one of each is named).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    /// The selected base station `B_k`.
    pub base_station: BaseStationId,
    /// The selected edge server `S_n`.
    pub server: ServerId,
}

/// The full decision `α_t = (x_t, y_t, Ψ_t, Φ_t, Ω_t)` for one slot.
///
/// Bandwidth/compute shares are stored per *device* rather than per
/// (device, station) pair: constraint (1) means each device uses exactly one
/// base station and one server, so the sparse representation is lossless.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotDecision {
    /// `(x_t, y_t)`: per-device base-station + server choice.
    pub assignments: Vec<Assignment>,
    /// `ψ^A_{i,k,t}`: share of the chosen station's access bandwidth.
    pub access_share: Vec<f64>,
    /// `ψ^F_{i,k,t}`: share of the chosen station's fronthaul bandwidth.
    pub fronthaul_share: Vec<f64>,
    /// `φ_{i,n,t}`: share of the chosen server's compute capacity.
    pub compute_share: Vec<f64>,
    /// `Ω_t`: per-server clock frequency in Hz.
    pub frequencies_hz: Vec<f64>,
}

/// Feasibility violations detected by [`SlotDecision::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionError {
    /// A vector's length disagrees with the system dimensions.
    ShapeMismatch {
        /// Which field was mis-sized.
        field: &'static str,
    },
    /// Constraint (3): the chosen server is not reachable from the chosen
    /// base station's fronthaul.
    Unreachable {
        /// Offending device index.
        device: usize,
    },
    /// A share lies outside `[0, 1]` or is zero/NaN for an active device.
    BadShare {
        /// Offending device index.
        device: usize,
        /// Which share.
        field: &'static str,
    },
    /// Constraints (4)–(6): a resource's shares sum above 1.
    OverSubscribed {
        /// Which resource family.
        resource: &'static str,
        /// Resource index (station or server).
        index: usize,
        /// The offending total.
        total: f64,
    },
    /// A server frequency falls outside `[F^L, F^U]`.
    FrequencyOutOfBounds {
        /// Offending server index.
        server: usize,
    },
}

impl fmt::Display for DecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { field } => write!(f, "decision field {field} has wrong length"),
            Self::Unreachable { device } => {
                write!(f, "device {device}: chosen server unreachable from chosen base station")
            }
            Self::BadShare { device, field } => {
                write!(f, "device {device}: {field} share outside (0, 1]")
            }
            Self::OverSubscribed { resource, index, total } => {
                write!(f, "{resource} {index} oversubscribed (total share {total})")
            }
            Self::FrequencyOutOfBounds { server } => {
                write!(f, "server {server} frequency outside its [F^L, F^U] box")
            }
        }
    }
}

impl std::error::Error for DecisionError {}

impl SlotDecision {
    /// Checks constraints (1)–(6) plus the frequency boxes against `system`.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint. A small tolerance (`1e-9`)
    /// absorbs floating-point slack in the share sums.
    pub fn validate(&self, system: &MecSystem) -> Result<(), DecisionError> {
        let topo = system.topology();
        let i_count = topo.num_devices();
        if self.assignments.len() != i_count {
            return Err(DecisionError::ShapeMismatch { field: "assignments" });
        }
        if self.access_share.len() != i_count {
            return Err(DecisionError::ShapeMismatch { field: "access_share" });
        }
        if self.fronthaul_share.len() != i_count {
            return Err(DecisionError::ShapeMismatch { field: "fronthaul_share" });
        }
        if self.compute_share.len() != i_count {
            return Err(DecisionError::ShapeMismatch { field: "compute_share" });
        }
        if self.frequencies_hz.len() != topo.num_servers() {
            return Err(DecisionError::ShapeMismatch { field: "frequencies_hz" });
        }

        for (i, a) in self.assignments.iter().enumerate() {
            if !topo.servers_reachable_from(a.base_station).contains(&a.server) {
                return Err(DecisionError::Unreachable { device: i });
            }
            let check = |v: f64, field: &'static str| {
                if !(v > 0.0 && v <= 1.0) {
                    Err(DecisionError::BadShare { device: i, field })
                } else {
                    Ok(())
                }
            };
            check(self.access_share[i], "access")?;
            check(self.fronthaul_share[i], "fronthaul")?;
            check(self.compute_share[i], "compute")?;
        }

        const TOL: f64 = 1e-9;
        let mut access_tot = vec![0.0; topo.num_base_stations()];
        let mut fronthaul_tot = vec![0.0; topo.num_base_stations()];
        let mut compute_tot = vec![0.0; topo.num_servers()];
        for (i, a) in self.assignments.iter().enumerate() {
            access_tot[a.base_station.index()] += self.access_share[i];
            fronthaul_tot[a.base_station.index()] += self.fronthaul_share[i];
            compute_tot[a.server.index()] += self.compute_share[i];
        }
        for (k, &tot) in access_tot.iter().enumerate() {
            if tot > 1.0 + TOL {
                return Err(DecisionError::OverSubscribed {
                    resource: "access link",
                    index: k,
                    total: tot,
                });
            }
        }
        for (k, &tot) in fronthaul_tot.iter().enumerate() {
            if tot > 1.0 + TOL {
                return Err(DecisionError::OverSubscribed {
                    resource: "fronthaul link",
                    index: k,
                    total: tot,
                });
            }
        }
        for (n, &tot) in compute_tot.iter().enumerate() {
            if tot > 1.0 + TOL {
                return Err(DecisionError::OverSubscribed {
                    resource: "server",
                    index: n,
                    total: tot,
                });
            }
        }

        for (n, &f) in self.frequencies_hz.iter().enumerate() {
            let s = topo.server(ServerId(n));
            if !(s.freq_min_hz - TOL..=s.freq_max_hz + TOL).contains(&f) {
                return Err(DecisionError::FrequencyOutOfBounds { server: n });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use eotora_topology::DeviceId;

    fn system() -> MecSystem {
        MecSystem::random(&SystemConfig::paper_defaults(6), 1)
    }

    /// A hand-built feasible decision: every device on base station 0's
    /// first reachable server, equal shares.
    fn feasible(system: &MecSystem) -> SlotDecision {
        let topo = system.topology();
        let k = BaseStationId(0);
        let n = topo.servers_reachable_from(k)[0];
        let i_count = topo.num_devices();
        SlotDecision {
            assignments: vec![Assignment { base_station: k, server: n }; i_count],
            access_share: vec![1.0 / i_count as f64; i_count],
            fronthaul_share: vec![1.0 / i_count as f64; i_count],
            compute_share: vec![1.0 / i_count as f64; i_count],
            frequencies_hz: system.min_frequencies(),
        }
    }

    #[test]
    fn feasible_decision_validates() {
        let s = system();
        feasible(&s).validate(&s).unwrap();
    }

    #[test]
    fn shape_mismatch_detected() {
        let s = system();
        let mut d = feasible(&s);
        d.access_share.pop();
        assert!(matches!(
            d.validate(&s),
            Err(DecisionError::ShapeMismatch { field: "access_share" })
        ));
    }

    #[test]
    fn unreachable_server_detected() {
        let s = system();
        let topo = s.topology();
        // Find a (station, server) pair with no fronthaul link, if any; with
        // one-room-per-station wiring there is always an unreachable server.
        let k = BaseStationId(0);
        let reachable = topo.servers_reachable_from(k);
        let bad = topo.server_ids().find(|n| !reachable.contains(n));
        if let Some(server) = bad {
            let mut d = feasible(&s);
            d.assignments[2] = Assignment { base_station: k, server };
            assert!(matches!(d.validate(&s), Err(DecisionError::Unreachable { device: 2 })));
        }
    }

    #[test]
    fn oversubscription_detected() {
        let s = system();
        let mut d = feasible(&s);
        for v in d.compute_share.iter_mut() {
            *v = 0.5;
        }
        assert!(matches!(
            d.validate(&s),
            Err(DecisionError::OverSubscribed { resource: "server", .. })
        ));
    }

    #[test]
    fn zero_share_detected() {
        let s = system();
        let mut d = feasible(&s);
        d.access_share[0] = 0.0;
        assert!(matches!(d.validate(&s), Err(DecisionError::BadShare { device: 0, .. })));
    }

    #[test]
    fn frequency_bounds_detected() {
        let s = system();
        let mut d = feasible(&s);
        d.frequencies_hz[3] = 99e9;
        assert!(matches!(d.validate(&s), Err(DecisionError::FrequencyOutOfBounds { server: 3 })));
    }

    #[test]
    fn suitability_lookup_is_symmetric_api() {
        // Sanity: suitability accessor used throughout is per (device, server).
        let s = system();
        let v = s.suitability(DeviceId(0), ServerId(0));
        assert!((0.5..=1.0).contains(&v));
    }

    #[test]
    fn error_display() {
        let e = DecisionError::OverSubscribed { resource: "server", index: 3, total: 1.5 };
        assert!(e.to_string().contains("server 3"));
    }
}
