//! Typed recoverable errors for the per-slot solve pipeline.
//!
//! The paper-faithful hot path treats malformed inputs as programmer error
//! and panics; the fault-tolerant path ([`crate::robust`]) must instead
//! *degrade* — a corrupt observation or a transient numeric failure becomes
//! a [`SolveError`] the caller recovers from (substitute last-known-good
//! state, retry, or fall back down the degradation ladder). Invariant
//! violations that can only come from bugs stay as assertions.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fmt;

/// A recoverable failure detected while solving one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// A value that must be finite (and positive where noted) was not —
    /// NaN, ±Inf, zero, or negative where the model forbids it.
    NonFinite {
        /// Which quantity was malformed (e.g. `"task_cycles"`,
        /// `"compute_share"`).
        context: &'static str,
        /// Index of the offending entry (device, server, or station).
        index: usize,
    },
    /// A vector's length disagrees with the system's shape.
    ShapeMismatch {
        /// Which vector was mis-sized.
        context: &'static str,
        /// Length the system requires.
        expected: usize,
        /// Length actually observed.
        actual: usize,
    },
    /// Masking left a device with no allowed strategy even after the
    /// best-effort widening — the instance cannot serve this device.
    NoAllowedStrategy {
        /// The device that cannot be placed.
        device: usize,
    },
    /// The solver could not produce any finite candidate within its retry
    /// budget; the caller should fall back to the last feasible decision.
    RetriesExhausted {
        /// Retries attempted before giving up.
        attempts: u32,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFinite { context, index } => {
                write!(f, "non-finite or out-of-model {context} at index {index}")
            }
            Self::ShapeMismatch { context, expected, actual } => {
                write!(f, "{context}: expected length {expected}, got {actual}")
            }
            Self::NoAllowedStrategy { device } => {
                write!(f, "device {device} has no allowed strategy under the availability mask")
            }
            Self::RetriesExhausted { attempts } => {
                write!(f, "no finite solve candidate after {attempts} retries")
            }
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = SolveError::NonFinite { context: "task_cycles", index: 3 };
        assert!(e.to_string().contains("task_cycles"));
        assert!(e.to_string().contains('3'));
        let e = SolveError::ShapeMismatch { context: "freqs_hz", expected: 4, actual: 2 };
        assert!(e.to_string().contains("freqs_hz"));
        let e = SolveError::NoAllowedStrategy { device: 7 };
        assert!(e.to_string().contains('7'));
        let e = SolveError::RetriesExhausted { attempts: 2 };
        assert!(e.to_string().contains('2'));
    }
}
