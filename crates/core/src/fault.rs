//! Failure model: per-slot availability masks and scripted fault traces.
//!
//! A production fleet loses servers, base stations, and fronthaul links at
//! runtime. The controller's game formulation encodes those components as
//! resources (`0..N` servers, `N..N+K` access links, `N+K..N+2K` fronthaul
//! links — see [`crate::p2a`]), so a failure is *masked*, not rebuilt: an
//! [`AvailabilityMask`] is lowered to an
//! [`eotora_game::StrategyFilter`] that disallows every strategy touching a
//! failed resource, leaving the game's shape (and every cache keyed on it)
//! untouched. [`FaultSchedule`] scripts when components fail and recover,
//! plus corrupt-state bursts for the sanitization layer
//! ([`crate::sanitize`]).

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use eotora_game::StrategyFilter;
use serde::{Deserialize, Serialize};

use crate::p2a::P2aProblem;

/// Which components are unavailable during one slot.
///
/// Indices are raw server/base-station indices; entries out of range for
/// the actual topology are ignored (a trace written for a larger system
/// degrades gracefully on a smaller one).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AvailabilityMask {
    /// Crashed edge servers (their compute resource is unusable and they
    /// draw no billable power).
    pub down_servers: Vec<usize>,
    /// Down base stations (both their access and fronthaul links are
    /// unusable).
    pub down_stations: Vec<usize>,
    /// Severed `(station, server)` fronthaul edges: both endpoints are up,
    /// but tasks cannot route between this specific pair.
    pub severed_links: Vec<(usize, usize)>,
}

/// What lowering a mask onto a concrete P2-A instance produced.
#[derive(Debug, Clone)]
pub struct MaskEffect {
    /// The per-(player, strategy) filter for the CGBA solve.
    pub filter: StrategyFilter,
    /// `down[n]` marks server `n` crashed (excluded from energy accounting).
    pub down_servers: Vec<bool>,
    /// Number of masked game resources this slot.
    pub masked_resources: u64,
    /// Devices whose entire strategy set was masked and were re-allowed
    /// best-effort (the model has no local-execution strategy, so such a
    /// device must use nominally-failed resources rather than have no
    /// move).
    pub best_effort_players: u64,
}

impl AvailabilityMask {
    /// Whether the mask disables nothing.
    pub fn is_empty(&self) -> bool {
        self.down_servers.is_empty()
            && self.down_stations.is_empty()
            && self.severed_links.is_empty()
    }

    /// Per-resource unavailability flags under the P2-A resource indexing
    /// (`0..N` servers, `N..N+K` access links, `N+K..N+2K` fronthaul
    /// links).
    pub fn masked_resources(&self, num_servers: usize, num_stations: usize) -> Vec<bool> {
        let mut masked = vec![false; num_servers + 2 * num_stations];
        for &n in &self.down_servers {
            if n < num_servers {
                masked[n] = true;
            }
        }
        for &k in &self.down_stations {
            if k < num_stations {
                masked[num_servers + k] = true;
                masked[num_servers + num_stations + k] = true;
            }
        }
        masked
    }

    /// `down[n]` flags per server, for masked energy accounting
    /// ([`crate::system::MecSystem::energy_cost_masked`]).
    pub fn down_server_flags(&self, num_servers: usize) -> Vec<bool> {
        let mut down = vec![false; num_servers];
        for &n in &self.down_servers {
            if n < num_servers {
                down[n] = true;
            }
        }
        down
    }

    /// Lowers this mask onto `problem`: masked resources disallow every
    /// strategy touching them, severed links disallow the specific
    /// `(station, server)` strategies, and any player left with nothing is
    /// re-allowed wholesale (best-effort, counted).
    pub fn strategy_filter(&self, problem: &P2aProblem) -> MaskEffect {
        let num_servers = problem.num_servers();
        let num_stations = problem.num_stations();
        let masked = self.masked_resources(num_servers, num_stations);
        let masked_resources = masked.iter().filter(|&&m| m).count() as u64;
        let structure = problem.game().structure();
        let mut filter = StrategyFilter::from_masked_resources(structure, &masked);
        if !self.severed_links.is_empty() {
            for i in 0..structure.num_players() {
                for s in 0..problem.num_strategies(i) {
                    let a = problem.assignment(i, s);
                    if self
                        .severed_links
                        .iter()
                        .any(|&(k, n)| a.base_station.index() == k && a.server.index() == n)
                    {
                        filter.disallow(i, s);
                    }
                }
            }
        }
        let mut best_effort_players = 0;
        for i in 0..structure.num_players() {
            if filter.first_allowed(i).is_none() {
                filter.allow_all_for_player(i);
                best_effort_players += 1;
            }
        }
        MaskEffect {
            filter,
            down_servers: self.down_server_flags(num_servers),
            masked_resources,
            best_effort_players,
        }
    }

    fn retain(v: &mut Vec<usize>, x: usize) {
        v.retain(|&e| e != x);
    }

    fn apply(&mut self, action: &FaultAction) {
        match *action {
            FaultAction::ServerDown { server } => {
                if !self.down_servers.contains(&server) {
                    self.down_servers.push(server);
                }
            }
            FaultAction::ServerUp { server } => Self::retain(&mut self.down_servers, server),
            FaultAction::StationDown { station } => {
                if !self.down_stations.contains(&station) {
                    self.down_stations.push(station);
                }
            }
            FaultAction::StationUp { station } => Self::retain(&mut self.down_stations, station),
            FaultAction::LinkDown { station, server } => {
                if !self.severed_links.contains(&(station, server)) {
                    self.severed_links.push((station, server));
                }
            }
            FaultAction::LinkUp { station, server } => {
                self.severed_links.retain(|&e| e != (station, server));
            }
            FaultAction::CorruptState { .. } => {}
        }
    }
}

/// One scripted failure or recovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// Server crashes (stays down until the matching `ServerUp`).
    ServerDown {
        /// Server index.
        server: usize,
    },
    /// Server recovers.
    ServerUp {
        /// Server index.
        server: usize,
    },
    /// Base station goes dark (access + fronthaul links down).
    StationDown {
        /// Base-station index.
        station: usize,
    },
    /// Base station recovers.
    StationUp {
        /// Base-station index.
        station: usize,
    },
    /// One `(station, server)` fronthaul edge is severed.
    LinkDown {
        /// Base-station index.
        station: usize,
        /// Server index.
        server: usize,
    },
    /// The severed edge heals.
    LinkUp {
        /// Base-station index.
        station: usize,
        /// Server index.
        server: usize,
    },
    /// The observed state vector arrives corrupted (NaN/negative/garbage
    /// entries) for `slots` consecutive slots starting at the event slot.
    CorruptState {
        /// Burst length in slots.
        slots: u64,
    },
}

/// A fault action pinned to the slot it takes effect.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// First slot at which the action is in force.
    pub slot: u64,
    /// What happens.
    pub action: FaultAction,
}

/// A scripted fault trace: a time-ordered (not required, but conventional)
/// list of events replayed against each slot.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The scripted events.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Whether the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The availability mask in force at `slot`: every event with
    /// `event.slot <= slot` applied in list order.
    pub fn mask_at(&self, slot: u64) -> AvailabilityMask {
        let mut mask = AvailabilityMask::default();
        for event in self.events.iter().filter(|e| e.slot <= slot) {
            mask.apply(&event.action);
        }
        mask
    }

    /// Whether `slot` falls inside any corrupt-state burst.
    pub fn corrupt_at(&self, slot: u64) -> bool {
        self.events.iter().any(|e| {
            matches!(e.action, FaultAction::CorruptState { slots }
                if e.slot <= slot && slot < e.slot.saturating_add(slots))
        })
    }

    /// The default chaos trace used by the `chaos` experiment and the CI
    /// smoke gate, scaled to `horizon`: two server crashes (one overlapping
    /// window), one link flap, one station outage, and one corrupt-state
    /// burst. Deterministic; indices are taken modulo the component counts.
    pub fn chaos_default(horizon: u64, num_servers: usize, num_stations: usize) -> Self {
        let at = |frac_num: u64, frac_den: u64| horizon * frac_num / frac_den;
        let server_a = 0 % num_servers.max(1);
        let server_b = 3 % num_servers.max(1);
        let station_a = 1 % num_stations.max(1);
        let station_b = 0 % num_stations.max(1);
        let events = vec![
            FaultEvent { slot: at(1, 5), action: FaultAction::ServerDown { server: server_a } },
            FaultEvent { slot: at(8, 25), action: FaultAction::ServerUp { server: server_a } },
            FaultEvent {
                slot: at(2, 5),
                action: FaultAction::LinkDown { station: station_b, server: server_b },
            },
            FaultEvent {
                slot: at(2, 5) + (horizon / 50).max(1),
                action: FaultAction::LinkUp { station: station_b, server: server_b },
            },
            FaultEvent {
                slot: at(1, 2),
                action: FaultAction::CorruptState { slots: (horizon / 50).max(2) },
            },
            FaultEvent { slot: at(3, 5), action: FaultAction::ServerDown { server: server_b } },
            FaultEvent { slot: at(18, 25), action: FaultAction::ServerUp { server: server_b } },
            FaultEvent { slot: at(4, 5), action: FaultAction::StationDown { station: station_a } },
            FaultEvent { slot: at(21, 25), action: FaultAction::StationUp { station: station_a } },
        ];
        Self { events }
    }

    /// A random fault trace: `crashes` server crash/recover pairs, `flaps`
    /// link down/up pairs, and `bursts` corrupt-state bursts, at
    /// deterministic pseudo-random slots drawn from `seed`.
    pub fn random(
        seed: u64,
        horizon: u64,
        num_servers: usize,
        num_stations: usize,
        crashes: usize,
        flaps: usize,
        bursts: usize,
    ) -> Self {
        let mut rng = eotora_util::rng::Pcg32::seed_stream(seed, 0xFA17);
        let mut events = Vec::new();
        let span = horizon.max(2);
        let window = |rng: &mut eotora_util::rng::Pcg32| {
            let start = rng.below((span - 1) as usize) as u64;
            let len = 1 + rng.below((span / 5).max(1) as usize) as u64;
            (start, (start + len).min(span - 1))
        };
        for _ in 0..crashes {
            let (down, up) = window(&mut rng);
            let server = rng.below(num_servers.max(1));
            events.push(FaultEvent { slot: down, action: FaultAction::ServerDown { server } });
            events.push(FaultEvent { slot: up, action: FaultAction::ServerUp { server } });
        }
        for _ in 0..flaps {
            let (down, up) = window(&mut rng);
            let station = rng.below(num_stations.max(1));
            let server = rng.below(num_servers.max(1));
            events
                .push(FaultEvent { slot: down, action: FaultAction::LinkDown { station, server } });
            events.push(FaultEvent { slot: up, action: FaultAction::LinkUp { station, server } });
        }
        for _ in 0..bursts {
            let (start, end) = window(&mut rng);
            events.push(FaultEvent {
                slot: start,
                action: FaultAction::CorruptState { slots: end - start + 1 },
            });
        }
        events.sort_by_key(|e| e.slot);
        Self { events }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::system::{MecSystem, SystemConfig};
    use eotora_states::{PaperStateConfig, StateProvider};

    #[test]
    fn mask_replay_tracks_down_and_up() {
        let schedule = FaultSchedule {
            events: vec![
                FaultEvent { slot: 5, action: FaultAction::ServerDown { server: 2 } },
                FaultEvent { slot: 10, action: FaultAction::ServerUp { server: 2 } },
                FaultEvent { slot: 7, action: FaultAction::LinkDown { station: 1, server: 3 } },
            ],
        };
        assert!(schedule.mask_at(4).is_empty());
        assert_eq!(schedule.mask_at(5).down_servers, vec![2]);
        assert_eq!(schedule.mask_at(8).severed_links, vec![(1, 3)]);
        assert!(schedule.mask_at(10).down_servers.is_empty());
        assert_eq!(schedule.mask_at(10).severed_links, vec![(1, 3)]);
    }

    #[test]
    fn corrupt_bursts_cover_their_window() {
        let schedule = FaultSchedule {
            events: vec![FaultEvent { slot: 3, action: FaultAction::CorruptState { slots: 2 } }],
        };
        assert!(!schedule.corrupt_at(2));
        assert!(schedule.corrupt_at(3));
        assert!(schedule.corrupt_at(4));
        assert!(!schedule.corrupt_at(5));
    }

    #[test]
    fn masked_resources_use_p2a_indexing() {
        let mask = AvailabilityMask {
            down_servers: vec![1],
            down_stations: vec![0],
            severed_links: vec![],
        };
        let masked = mask.masked_resources(3, 2);
        // Servers 0..3, access 3..5, fronthaul 5..7.
        assert_eq!(masked, vec![false, true, false, true, false, true, false]);
    }

    #[test]
    fn out_of_range_indices_are_ignored() {
        let mask = AvailabilityMask {
            down_servers: vec![99],
            down_stations: vec![99],
            severed_links: vec![(99, 99)],
        };
        assert!(mask.masked_resources(3, 2).iter().all(|&m| !m));
        assert!(mask.down_server_flags(3).iter().all(|&d| !d));
    }

    #[test]
    fn strategy_filter_excludes_down_server_and_severed_link() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(6), 41);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), 41);
        let state = provider.observe(0, system.topology());
        let problem = crate::p2a::P2aProblem::build(&system, &state, &system.min_frequencies());
        let mask = AvailabilityMask {
            down_servers: vec![0],
            down_stations: vec![],
            severed_links: vec![(1, 2)],
        };
        let effect = mask.strategy_filter(&problem);
        assert!(effect.masked_resources >= 1);
        assert!(effect.down_servers[0]);
        for i in 0..6 {
            for s in 0..problem.num_strategies(i) {
                if effect.filter.is_allowed(i, s) {
                    continue;
                }
                let a = problem.assignment(i, s);
                assert!(
                    a.server.index() == 0 || (a.base_station.index() == 1 && a.server.index() == 2),
                    "strategy ({i}, {s}) disallowed without cause: {a:?}"
                );
            }
            // The paper topology leaves plenty of alternatives.
            assert!(effect.filter.first_allowed(i).is_some());
        }
        assert_eq!(effect.best_effort_players, 0);
    }

    #[test]
    fn fully_masked_player_is_re_allowed_best_effort() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(4), 42);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), 42);
        let state = provider.observe(0, system.topology());
        let problem = crate::p2a::P2aProblem::build(&system, &state, &system.min_frequencies());
        // Mask every station: nobody can reach anything.
        let mask = AvailabilityMask {
            down_servers: vec![],
            down_stations: (0..system.topology().num_base_stations()).collect(),
            severed_links: vec![],
        };
        let effect = mask.strategy_filter(&problem);
        assert_eq!(effect.best_effort_players, 4);
        for i in 0..4 {
            assert!(effect.filter.first_allowed(i).is_some());
        }
    }

    #[test]
    fn chaos_default_has_required_ingredients() {
        let s = FaultSchedule::chaos_default(500, 16, 6);
        let crashes =
            s.events.iter().filter(|e| matches!(e.action, FaultAction::ServerDown { .. })).count();
        let flaps =
            s.events.iter().filter(|e| matches!(e.action, FaultAction::LinkDown { .. })).count();
        let bursts = s
            .events
            .iter()
            .filter(|e| matches!(e.action, FaultAction::CorruptState { .. }))
            .count();
        assert!(crashes >= 2);
        assert!(flaps >= 1);
        assert!(bursts >= 1);
        // Every fault heals before the horizon ends.
        assert!(s.mask_at(499).is_empty());
    }

    #[test]
    fn schedule_roundtrips_through_serde() {
        let s = FaultSchedule::chaos_default(100, 4, 2);
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn random_schedule_is_deterministic_and_bounded() {
        let a = FaultSchedule::random(9, 200, 16, 6, 2, 1, 1);
        let b = FaultSchedule::random(9, 200, 16, 6, 2, 1, 1);
        assert_eq!(a, b);
        // 2 crashes and 1 flap each emit a down/up pair; 1 burst is a single event.
        assert_eq!(a.events.len(), 7);
        assert!(a.events.iter().all(|e| e.slot < 200));
    }
}
