//! BDMA — Benders'-Decomposition-Motivated Algorithm for P2 (Alg. 2).
//!
//! P2 couples discrete decisions `(x, y)` with continuous frequencies `Ω`.
//! BDMA(z) alternates, for `z` rounds, between
//!
//! 1. **P2-A** — fix `Ω`, pick `(x, y)` (a congestion-game solver; the
//!    paper's choice is CGBA, with ROPT/MCBA as baselines — see
//!    [`crate::baselines`]), and
//! 2. **P2-B** — fix `(x, y)`, optimize `Ω` exactly
//!    ([`crate::p2b::solve_p2b`]),
//!
//! keeping the best `(x̄, ȳ, Ω̄)` by the P2 objective
//! `f = V·T_t + Q(t)·Θ(Ω, p_t)`. Theorem 3 gives the per-slot guarantee
//! `R = 2.62·R_F/(1−8λ)` already for `z = 1` starting from `Ω = Ω^L`;
//! additional rounds only improve the incumbent (asserted in tests).

use std::fmt;

use eotora_game::CgbaConfig;
use eotora_obs::{NoopRecorder, Recorder, SpanGuard, TraceEvent};
use eotora_states::SystemState;
use eotora_util::rng::Pcg32;

use crate::decision::Assignment;
use crate::p2a::P2aProblem;
use crate::p2b::solve_p2b;
use crate::system::MecSystem;

/// A pluggable solver for the P2-A subproblem (the `(x, y)` step).
///
/// Returning *strategy choices* (indices into each player's strategy list)
/// rather than raw assignments keeps feasibility by construction.
pub trait P2aSolver: fmt::Debug {
    /// Short name used in experiment reports ("CGBA", "ROPT", "MCBA", ...).
    fn name(&self) -> &'static str;

    /// Produces one strategy choice per device.
    fn solve(&mut self, problem: &P2aProblem, rng: &mut Pcg32) -> Vec<usize>;

    /// Like [`P2aSolver::solve`], additionally reporting solver-specific
    /// counters (CGBA best-response iterations, MCBA proposal acceptances,
    /// branch-and-bound nodes, ...) into `recorder`. The default ignores
    /// the recorder.
    fn solve_with(
        &mut self,
        problem: &P2aProblem,
        rng: &mut Pcg32,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        let _ = recorder;
        self.solve(problem, rng)
    }
}

/// The paper's P2-A solver: CGBA(λ) best-response dynamics.
#[derive(Debug, Clone, Default)]
pub struct CgbaSolver {
    /// CGBA parameters (λ, iteration cap, scheduling rule).
    pub config: CgbaConfig,
}

impl CgbaSolver {
    /// CGBA with the given λ and default scheduling.
    pub fn with_lambda(lambda: f64) -> Self {
        Self { config: CgbaConfig { lambda, ..Default::default() } }
    }
}

impl P2aSolver for CgbaSolver {
    fn name(&self) -> &'static str {
        "CGBA"
    }

    fn solve(&mut self, problem: &P2aProblem, rng: &mut Pcg32) -> Vec<usize> {
        problem.solve_cgba(&self.config, rng).profile.choices().to_vec()
    }

    fn solve_with(
        &mut self,
        problem: &P2aProblem,
        rng: &mut Pcg32,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        let report = problem.solve_cgba(&self.config, rng);
        if recorder.is_enabled() {
            recorder.add("cgba_iterations", report.iterations as u64);
            if report.converged {
                recorder.add("cgba_converged", 1);
            }
        }
        report.profile.choices().to_vec()
    }
}

/// Configuration for [`solve_p2`].
#[derive(Debug, Clone)]
pub struct BdmaConfig {
    /// Number of alternation rounds `z` (paper default in §VI-C: 5).
    pub rounds: usize,
}

impl Default for BdmaConfig {
    fn default() -> Self {
        Self { rounds: 5 }
    }
}

/// A P2 solution `(x̄, ȳ, Ω̄)` with its objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Solution {
    /// Per-device `(base station, server)` assignment.
    pub assignments: Vec<Assignment>,
    /// Per-server frequencies in Hz.
    pub freqs_hz: Vec<f64>,
    /// `f(x̄, ȳ, Ω̄) = V·T_t + Q·Θ`.
    pub objective: f64,
    /// Latency `T_t` at the solution (under Lemma 1 allocation).
    pub latency: f64,
    /// Energy cost `C_t` at the solution, in dollars.
    pub energy_cost: f64,
}

/// Runs BDMA(z) for one slot with the given P2-A solver (Alg. 2).
///
/// Convenience wrapper over [`solve_p2_with`] that records nothing.
///
/// # Panics
///
/// Panics if `config.rounds == 0` or `v` is not positive.
pub fn solve_p2(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    config: &BdmaConfig,
    p2a_solver: &mut dyn P2aSolver,
    rng: &mut Pcg32,
) -> P2Solution {
    solve_p2_with(system, state, v, queue, config, p2a_solver, rng, 0, &NoopRecorder)
}

/// Runs BDMA(z) for one slot, reporting per-round instrumentation.
///
/// Each alternation round emits a `p2a` and a `p2b` span plus one
/// `bdma_iteration` event carrying the candidate objective, whether it
/// displaced the incumbent, and both phase durations; `bdma_rounds` /
/// `bdma_accepted` counters track totals. `slot` only labels the emitted
/// events — it does not affect the solve.
///
/// # Panics
///
/// Panics if `config.rounds == 0` or `v` is not positive.
#[allow(clippy::too_many_arguments)]
pub fn solve_p2_with(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    config: &BdmaConfig,
    p2a_solver: &mut dyn P2aSolver,
    rng: &mut Pcg32,
    slot: u64,
    recorder: &dyn Recorder,
) -> P2Solution {
    assert!(config.rounds > 0, "BDMA needs at least one round");
    assert!(v > 0.0, "penalty weight must be positive");

    // Line 1 of Alg. 2: Ω ← Ω^L.
    let mut freqs = system.min_frequencies();
    let mut best: Option<P2Solution> = None;

    for round in 0..config.rounds {
        // Line 3: solve P2-A at the current frequencies.
        let p2a_span = SpanGuard::new(recorder, eotora_obs::SPAN_P2A);
        let p2a = P2aProblem::build(system, state, &freqs);
        let choices = p2a_solver.solve_with(&p2a, rng, recorder);
        let assignments = p2a.assignments_from_choices(&choices);
        let p2a_nanos = p2a_span.finish().unwrap_or(0);
        // Line 4: solve P2-B at the chosen assignment.
        let p2b_span = SpanGuard::new(recorder, eotora_obs::SPAN_P2B);
        let p2b = solve_p2b(system, state, &assignments, v, queue);
        let p2b_nanos = p2b_span.finish().unwrap_or(0);
        freqs = p2b.freqs_hz.clone();
        // Lines 5–7: keep the incumbent with the best P2 objective.
        let latency =
            crate::latency::optimal_latency(system, state, &assignments, &p2b.freqs_hz).total();
        let energy_cost = system.energy_cost(state.price_per_kwh, &p2b.freqs_hz);
        let candidate = P2Solution {
            assignments,
            freqs_hz: p2b.freqs_hz,
            objective: p2b.objective,
            latency,
            energy_cost,
        };
        let accepted = best.as_ref().is_none_or(|b| candidate.objective < b.objective);
        if recorder.is_enabled() {
            recorder.record(&TraceEvent::BdmaIteration {
                slot,
                round: round as u64 + 1,
                objective: candidate.objective,
                accepted,
                p2a_nanos,
                p2b_nanos,
            });
            recorder.add(eotora_obs::COUNTER_BDMA_ROUNDS, 1);
            if accepted {
                recorder.add(eotora_obs::COUNTER_BDMA_ACCEPTED, 1);
            }
        }
        if accepted {
            best = Some(candidate);
        }
    }
    best.expect("at least one round ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};
    use eotora_util::assert_close;

    fn setup(devices: usize, seed: u64) -> (MecSystem, SystemState) {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = p.observe(0, system.topology());
        (system, state)
    }

    fn run(
        system: &MecSystem,
        state: &SystemState,
        v: f64,
        q: f64,
        rounds: usize,
        seed: u64,
    ) -> P2Solution {
        let mut solver = CgbaSolver::default();
        let mut rng = Pcg32::seed(seed);
        solve_p2(system, state, v, q, &BdmaConfig { rounds }, &mut solver, &mut rng)
    }

    #[test]
    fn solution_is_feasible() {
        let (system, state) = setup(25, 41);
        let sol = run(&system, &state, 100.0, 50.0, 5, 1);
        let decision =
            crate::allocation::optimal_allocation(&system, &state, &sol.assignments, &sol.freqs_hz);
        decision.validate(&system).unwrap();
    }

    #[test]
    fn more_rounds_never_hurt() {
        let (system, state) = setup(20, 42);
        // Identical RNG seeds: round r's trajectory is a prefix, so the
        // incumbent can only improve.
        let obj: Vec<f64> =
            [1, 2, 5].iter().map(|&z| run(&system, &state, 100.0, 80.0, z, 7).objective).collect();
        assert!(obj[1] <= obj[0] + 1e-9);
        assert!(obj[2] <= obj[1] + 1e-9);
    }

    #[test]
    fn objective_decomposition() {
        let (system, state) = setup(15, 43);
        let (v, q) = (120.0, 60.0);
        let sol = run(&system, &state, v, q, 3, 2);
        let excess = sol.energy_cost - system.budget_per_slot();
        assert_close!(sol.objective, v * sol.latency + q * excess, 1e-9);
    }

    #[test]
    fn zero_queue_runs_hot() {
        // Without queue pressure BDMA should use max frequencies on loaded
        // servers — energy cost near the fleet maximum.
        let (system, state) = setup(30, 44);
        let sol = run(&system, &state, 100.0, 0.0, 3, 3);
        let max_cost = system.energy_cost(state.price_per_kwh, &system.max_frequencies());
        // All 16 servers are typically loaded with 30 devices; allow slack
        // for unloaded servers parked at F^L.
        assert!(sol.energy_cost > 0.85 * max_cost, "{} vs {max_cost}", sol.energy_cost);
    }

    #[test]
    fn heavy_queue_runs_cold() {
        let (system, state) = setup(30, 45);
        let sol = run(&system, &state, 1.0, 1e9, 3, 4);
        let min_cost = system.energy_cost(state.price_per_kwh, &system.min_frequencies());
        assert_close!(sol.energy_cost, min_cost, 1e-3);
    }

    #[test]
    fn per_slot_guarantee_vs_reference_decisions() {
        // Theorem 3: f(BDMA) ≤ R·V·T(any) + Q·Θ(any). Check against a batch
        // of random feasible decisions with R = 2.62·R_F (λ = 0).
        let (system, state) = setup(12, 46);
        let (v, q) = (100.0, 40.0);
        let sol = run(&system, &state, v, q, 5, 5);
        let r = 2.62 * system.topology().max_frequency_ratio();
        let mut rng = Pcg32::seed(99);
        let topo = system.topology();
        for _ in 0..50 {
            let assignments: Vec<Assignment> = (0..12)
                .map(|_| {
                    let k = eotora_topology::BaseStationId(rng.below(topo.num_base_stations()));
                    let server = *rng.pick(&topo.servers_reachable_from(k)).unwrap();
                    Assignment { base_station: k, server }
                })
                .collect();
            let freqs: Vec<f64> = topo
                .server_ids()
                .map(|n| {
                    let s = topo.server(n);
                    rng.uniform_in(s.freq_min_hz, s.freq_max_hz)
                })
                .collect();
            let t_ref =
                crate::latency::optimal_latency(&system, &state, &assignments, &freqs).total();
            let theta_ref = system.constraint_excess(state.price_per_kwh, &freqs);
            assert!(
                sol.objective <= r * v * t_ref + q * theta_ref + 1e-6,
                "Theorem 3 bound violated: {} > {}",
                sol.objective,
                r * v * t_ref + q * theta_ref
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let (system, state) = setup(4, 47);
        run(&system, &state, 1.0, 0.0, 0, 1);
    }
}
