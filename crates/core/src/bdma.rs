//! BDMA — Benders'-Decomposition-Motivated Algorithm for P2 (Alg. 2).
//!
//! P2 couples discrete decisions `(x, y)` with continuous frequencies `Ω`.
//! BDMA(z) alternates, for `z` rounds, between
//!
//! 1. **P2-A** — fix `Ω`, pick `(x, y)` (a congestion-game solver; the
//!    paper's choice is CGBA, with ROPT/MCBA as baselines — see
//!    [`crate::baselines`]), and
//! 2. **P2-B** — fix `(x, y)`, optimize `Ω` exactly
//!    ([`crate::p2b::solve_p2b`]),
//!
//! keeping the best `(x̄, ȳ, Ω̄)` by the P2 objective
//! `f = V·T_t + Q(t)·Θ(Ω, p_t)`. Theorem 3 gives the per-slot guarantee
//! `R = 2.62·R_F/(1−8λ)` already for `z = 1` starting from `Ω = Ω^L`;
//! additional rounds only improve the incumbent (asserted in tests).

use std::fmt;

use eotora_game::{cgba_from_reference, cgba_from_with_scratch, CgbaConfig, CgbaScratch, Profile};
use eotora_obs::{NoopRecorder, Recorder, SpanGuard, TraceEvent};
use eotora_states::SystemState;
use eotora_util::rng::Pcg32;

use crate::decision::Assignment;
use crate::p2a::P2aProblem;
use crate::p2b::solve_p2b;
use crate::system::MecSystem;
use crate::workspace::SlotWorkspace;

/// A pluggable solver for the P2-A subproblem (the `(x, y)` step).
///
/// Returning *strategy choices* (indices into each player's strategy list)
/// rather than raw assignments keeps feasibility by construction.
pub trait P2aSolver: fmt::Debug {
    /// Short name used in experiment reports ("CGBA", "ROPT", "MCBA", ...).
    fn name(&self) -> &'static str;

    /// Produces one strategy choice per device.
    fn solve(&mut self, problem: &P2aProblem, rng: &mut Pcg32) -> Vec<usize>;

    /// Like [`P2aSolver::solve`], additionally reporting solver-specific
    /// counters (CGBA best-response iterations, MCBA proposal acceptances,
    /// branch-and-bound nodes, ...) into `recorder`. The default ignores
    /// the recorder.
    fn solve_with(
        &mut self,
        problem: &P2aProblem,
        rng: &mut Pcg32,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        let _ = recorder;
        self.solve(problem, rng)
    }
}

/// The paper's P2-A solver: CGBA(λ) best-response dynamics. Owns a
/// [`CgbaScratch`] so repeated solves (rounds × slots) are allocation-free.
#[derive(Debug, Clone, Default)]
pub struct CgbaSolver {
    /// CGBA parameters (λ, iteration cap, scheduling rule).
    pub config: CgbaConfig,
    scratch: CgbaScratch,
}

impl CgbaSolver {
    /// CGBA with the given λ and default scheduling.
    pub fn with_lambda(lambda: f64) -> Self {
        Self {
            config: CgbaConfig { lambda, ..Default::default() },
            scratch: CgbaScratch::default(),
        }
    }
}

impl P2aSolver for CgbaSolver {
    fn name(&self) -> &'static str {
        "CGBA"
    }

    fn solve(&mut self, problem: &P2aProblem, rng: &mut Pcg32) -> Vec<usize> {
        let initial = Profile::random(problem.game(), rng);
        cgba_from_with_scratch(problem.game(), initial, &self.config, &mut self.scratch)
            .profile
            .choices()
            .to_vec()
    }

    fn solve_with(
        &mut self,
        problem: &P2aProblem,
        rng: &mut Pcg32,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        let initial = Profile::random(problem.game(), rng);
        let report =
            cgba_from_with_scratch(problem.game(), initial, &self.config, &mut self.scratch);
        if recorder.is_enabled() {
            recorder.add("cgba_iterations", report.iterations as u64);
            if report.converged {
                recorder.add("cgba_converged", 1);
            }
        }
        report.profile.choices().to_vec()
    }
}

/// Configuration for [`solve_p2`].
#[derive(Debug, Clone)]
pub struct BdmaConfig {
    /// Number of alternation rounds `z` (paper default in §VI-C: 5).
    pub rounds: usize,
}

impl Default for BdmaConfig {
    fn default() -> Self {
        Self { rounds: 5 }
    }
}

/// A P2 solution `(x̄, ȳ, Ω̄)` with its objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Solution {
    /// Per-device `(base station, server)` assignment.
    pub assignments: Vec<Assignment>,
    /// Per-server frequencies in Hz.
    pub freqs_hz: Vec<f64>,
    /// `f(x̄, ȳ, Ω̄) = V·T_t + Q·Θ`.
    pub objective: f64,
    /// Latency `T_t` at the solution (under Lemma 1 allocation).
    pub latency: f64,
    /// Energy cost `C_t` at the solution, in dollars.
    pub energy_cost: f64,
}

/// Runs BDMA(z) for one slot with the given P2-A solver (Alg. 2).
///
/// Convenience wrapper over [`solve_p2_with`] that records nothing.
///
/// # Panics
///
/// Panics if `config.rounds == 0` or `v` is not positive.
pub fn solve_p2(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    config: &BdmaConfig,
    p2a_solver: &mut dyn P2aSolver,
    rng: &mut Pcg32,
) -> P2Solution {
    solve_p2_with(system, state, v, queue, config, p2a_solver, rng, 0, &NoopRecorder)
}

/// Runs BDMA(z) for one slot, reporting per-round instrumentation.
///
/// Each alternation round emits a `p2a` and a `p2b` span plus one
/// `bdma_iteration` event carrying the candidate objective, whether it
/// displaced the incumbent, and both phase durations; `bdma_rounds` /
/// `bdma_accepted` counters track totals. `slot` only labels the emitted
/// events — it does not affect the solve.
///
/// # Panics
///
/// Panics if `config.rounds == 0` or `v` is not positive.
#[allow(clippy::too_many_arguments)]
pub fn solve_p2_with(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    config: &BdmaConfig,
    p2a_solver: &mut dyn P2aSolver,
    rng: &mut Pcg32,
    slot: u64,
    recorder: &dyn Recorder,
) -> P2Solution {
    let mut workspace = SlotWorkspace::new();
    solve_p2_in(system, state, v, queue, config, p2a_solver, rng, slot, recorder, &mut workspace)
}

/// Runs BDMA(z) for one slot against a caller-owned [`SlotWorkspace`] — the
/// zero-rebuild entry point. The first call builds the P2-A game; every
/// later call (and every round within a call) refreshes its weights in
/// place. Results are bit-identical to [`solve_p2_with`] /
/// [`solve_p2_reference`] for the same inputs and RNG stream.
///
/// The workspace must always be passed the same `system` (a changed
/// topology shape falls back to a fresh build).
///
/// # Panics
///
/// Panics if `config.rounds == 0` or `v` is not positive.
#[allow(clippy::too_many_arguments)]
pub fn solve_p2_in(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    config: &BdmaConfig,
    p2a_solver: &mut dyn P2aSolver,
    rng: &mut Pcg32,
    slot: u64,
    recorder: &dyn Recorder,
    workspace: &mut SlotWorkspace,
) -> P2Solution {
    assert!(config.rounds > 0, "BDMA needs at least one round");
    assert!(v > 0.0, "penalty weight must be positive");

    let mut best: Option<P2Solution> = None;

    for round in 0..config.rounds {
        // Line 3: solve P2-A at the current frequencies.
        let p2a_span = SpanGuard::new(recorder, eotora_obs::SPAN_P2A);
        let p2a = if round == 0 {
            // Line 1 of Alg. 2: Ω ← Ω^L.
            workspace.prepare(system, state, &system.min_frequencies())
        } else {
            workspace.refresh_frequencies(system)
        };
        let choices = p2a_solver.solve_with(p2a, rng, recorder);
        let assignments = p2a.assignments_from_choices(&choices);
        let p2a_nanos = p2a_span.finish().unwrap_or(0);
        // Line 4: solve P2-B at the chosen assignment.
        let p2b_span = SpanGuard::new(recorder, eotora_obs::SPAN_P2B);
        let p2b = solve_p2b(system, state, &assignments, v, queue);
        let p2b_nanos = p2b_span.finish().unwrap_or(0);
        // Latch the new frequencies for the next round's refresh (this
        // replaces the old per-round `freqs_hz.clone()`).
        workspace.set_freqs(&p2b.freqs_hz);
        // Lines 5–7: keep the incumbent with the best P2 objective.
        let latency =
            crate::latency::optimal_latency(system, state, &assignments, &p2b.freqs_hz).total();
        let energy_cost = system.energy_cost(state.price_per_kwh, &p2b.freqs_hz);
        let candidate = P2Solution {
            assignments,
            freqs_hz: p2b.freqs_hz,
            objective: p2b.objective,
            latency,
            energy_cost,
        };
        let accepted = best.as_ref().is_none_or(|b| candidate.objective < b.objective);
        if recorder.is_enabled() {
            recorder.record(&TraceEvent::BdmaIteration {
                slot,
                round: round as u64 + 1,
                objective: candidate.objective,
                accepted,
                p2a_nanos,
                p2b_nanos,
            });
            recorder.add(eotora_obs::COUNTER_BDMA_ROUNDS, 1);
            if accepted {
                recorder.add(eotora_obs::COUNTER_BDMA_ACCEPTED, 1);
            }
        }
        if accepted {
            best = Some(candidate);
        }
    }
    best.expect("at least one round ran")
}

/// The pre-refactor BDMA(z) loop, verbatim: a fresh [`P2aProblem::build`]
/// and full game validation every round, the naive-rescan
/// [`cgba_from_reference`] as the P2-A step, and a frequency clone per
/// round. Kept as the equivalence oracle and benchmark baseline for the
/// zero-rebuild path — it must produce bit-identical [`P2Solution`]s to
/// [`solve_p2_in`] with a [`CgbaSolver`] for the same inputs and RNG
/// stream.
///
/// # Panics
///
/// Panics if `config.rounds == 0` or `v` is not positive.
pub fn solve_p2_reference(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    config: &BdmaConfig,
    cgba_config: &CgbaConfig,
    rng: &mut Pcg32,
) -> P2Solution {
    assert!(config.rounds > 0, "BDMA needs at least one round");
    assert!(v > 0.0, "penalty weight must be positive");

    // Line 1 of Alg. 2: Ω ← Ω^L.
    let mut freqs = system.min_frequencies();
    let mut best: Option<P2Solution> = None;

    for _ in 0..config.rounds {
        let p2a = P2aProblem::build(system, state, &freqs);
        let initial = Profile::random(p2a.game(), rng);
        let report = cgba_from_reference(p2a.game(), initial, cgba_config);
        let assignments = p2a.assignments_from_choices(report.profile.choices());
        let p2b = solve_p2b(system, state, &assignments, v, queue);
        freqs = p2b.freqs_hz.clone();
        let latency =
            crate::latency::optimal_latency(system, state, &assignments, &p2b.freqs_hz).total();
        let energy_cost = system.energy_cost(state.price_per_kwh, &p2b.freqs_hz);
        let candidate = P2Solution {
            assignments,
            freqs_hz: p2b.freqs_hz,
            objective: p2b.objective,
            latency,
            energy_cost,
        };
        if best.as_ref().is_none_or(|b| candidate.objective < b.objective) {
            best = Some(candidate);
        }
    }
    best.expect("at least one round ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};
    use eotora_util::assert_close;

    fn setup(devices: usize, seed: u64) -> (MecSystem, SystemState) {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = p.observe(0, system.topology());
        (system, state)
    }

    fn run(
        system: &MecSystem,
        state: &SystemState,
        v: f64,
        q: f64,
        rounds: usize,
        seed: u64,
    ) -> P2Solution {
        let mut solver = CgbaSolver::default();
        let mut rng = Pcg32::seed(seed);
        solve_p2(system, state, v, q, &BdmaConfig { rounds }, &mut solver, &mut rng)
    }

    #[test]
    fn solution_is_feasible() {
        let (system, state) = setup(25, 41);
        let sol = run(&system, &state, 100.0, 50.0, 5, 1);
        let decision =
            crate::allocation::optimal_allocation(&system, &state, &sol.assignments, &sol.freqs_hz);
        decision.validate(&system).unwrap();
    }

    #[test]
    fn more_rounds_never_hurt() {
        let (system, state) = setup(20, 42);
        // Identical RNG seeds: round r's trajectory is a prefix, so the
        // incumbent can only improve.
        let obj: Vec<f64> =
            [1, 2, 5].iter().map(|&z| run(&system, &state, 100.0, 80.0, z, 7).objective).collect();
        assert!(obj[1] <= obj[0] + 1e-9);
        assert!(obj[2] <= obj[1] + 1e-9);
    }

    #[test]
    fn objective_decomposition() {
        let (system, state) = setup(15, 43);
        let (v, q) = (120.0, 60.0);
        let sol = run(&system, &state, v, q, 3, 2);
        let excess = sol.energy_cost - system.budget_per_slot();
        assert_close!(sol.objective, v * sol.latency + q * excess, 1e-9);
    }

    #[test]
    fn zero_queue_runs_hot() {
        // Without queue pressure BDMA should use max frequencies on loaded
        // servers — energy cost near the fleet maximum.
        let (system, state) = setup(30, 44);
        let sol = run(&system, &state, 100.0, 0.0, 3, 3);
        let max_cost = system.energy_cost(state.price_per_kwh, &system.max_frequencies());
        // All 16 servers are typically loaded with 30 devices; allow slack
        // for unloaded servers parked at F^L.
        assert!(sol.energy_cost > 0.85 * max_cost, "{} vs {max_cost}", sol.energy_cost);
    }

    #[test]
    fn heavy_queue_runs_cold() {
        let (system, state) = setup(30, 45);
        let sol = run(&system, &state, 1.0, 1e9, 3, 4);
        let min_cost = system.energy_cost(state.price_per_kwh, &system.min_frequencies());
        assert_close!(sol.energy_cost, min_cost, 1e-3);
    }

    #[test]
    fn per_slot_guarantee_vs_reference_decisions() {
        // Theorem 3: f(BDMA) ≤ R·V·T(any) + Q·Θ(any). Check against a batch
        // of random feasible decisions with R = 2.62·R_F (λ = 0).
        let (system, state) = setup(12, 46);
        let (v, q) = (100.0, 40.0);
        let sol = run(&system, &state, v, q, 5, 5);
        let r = 2.62 * system.topology().max_frequency_ratio();
        let mut rng = Pcg32::seed(99);
        let topo = system.topology();
        for _ in 0..50 {
            let assignments: Vec<Assignment> = (0..12)
                .map(|_| {
                    let k = eotora_topology::BaseStationId(rng.below(topo.num_base_stations()));
                    let server = *rng.pick(&topo.servers_reachable_from(k)).unwrap();
                    Assignment { base_station: k, server }
                })
                .collect();
            let freqs: Vec<f64> = topo
                .server_ids()
                .map(|n| {
                    let s = topo.server(n);
                    rng.uniform_in(s.freq_min_hz, s.freq_max_hz)
                })
                .collect();
            let t_ref =
                crate::latency::optimal_latency(&system, &state, &assignments, &freqs).total();
            let theta_ref = system.constraint_excess(state.price_per_kwh, &freqs);
            assert!(
                sol.objective <= r * v * t_ref + q * theta_ref + 1e-6,
                "Theorem 3 bound violated: {} > {}",
                sol.objective,
                r * v * t_ref + q * theta_ref
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let (system, state) = setup(4, 47);
        run(&system, &state, 1.0, 0.0, 0, 1);
    }

    #[test]
    fn workspace_path_matches_reference_across_slots() {
        // The zero-rebuild path (reused workspace + incremental CGBA) must
        // be bit-identical to the pre-refactor loop across a stream of
        // slots with varying states and queue backlogs.
        use crate::workspace::SlotWorkspace;
        use eotora_states::{PaperStateConfig, StateProvider};

        let system = MecSystem::random(&crate::system::SystemConfig::paper_defaults(16), 48);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), 48);
        let config = BdmaConfig { rounds: 3 };
        let mut solver = CgbaSolver::default();
        let mut workspace = SlotWorkspace::new();
        let mut rng_new = Pcg32::seed(9);
        let mut rng_ref = Pcg32::seed(9);
        let mut queue = 0.0;
        for slot in 0..6u64 {
            let state = provider.observe(slot, system.topology());
            let v = 100.0;
            let sol = solve_p2_in(
                &system,
                &state,
                v,
                queue,
                &config,
                &mut solver,
                &mut rng_new,
                slot,
                &NoopRecorder,
                &mut workspace,
            );
            let reference = solve_p2_reference(
                &system,
                &state,
                v,
                queue,
                &config,
                &solver.config,
                &mut rng_ref,
            );
            assert_eq!(sol, reference, "slot {slot}");
            // Evolve the queue like DPP would, so later slots see different
            // backlogs.
            queue = (queue + sol.energy_cost - system.budget_per_slot()).max(0.0);
        }
    }

    #[test]
    fn solve_p2_with_matches_reference() {
        // The temp-workspace wrapper is the same computation.
        let (system, state) = setup(12, 49);
        let mut solver = CgbaSolver::default();
        let sol = solve_p2(
            &system,
            &state,
            80.0,
            30.0,
            &BdmaConfig { rounds: 2 },
            &mut solver,
            &mut Pcg32::seed(11),
        );
        let reference = solve_p2_reference(
            &system,
            &state,
            80.0,
            30.0,
            &BdmaConfig { rounds: 2 },
            &CgbaConfig::default(),
            &mut Pcg32::seed(11),
        );
        assert_eq!(sol, reference);
    }
}
