//! BDMA — Benders'-Decomposition-Motivated Algorithm for P2 (Alg. 2).
//!
//! P2 couples discrete decisions `(x, y)` with continuous frequencies `Ω`.
//! BDMA(z) alternates, for `z` rounds, between
//!
//! 1. **P2-A** — fix `Ω`, pick `(x, y)` (a congestion-game solver; the
//!    paper's choice is CGBA, with ROPT/MCBA as baselines — see
//!    [`crate::baselines`]), and
//! 2. **P2-B** — fix `(x, y)`, optimize `Ω` exactly
//!    ([`crate::p2b::solve_p2b`]),
//!
//! keeping the best `(x̄, ȳ, Ω̄)` by the P2 objective
//! `f = V·T_t + Q(t)·Θ(Ω, p_t)`. Theorem 3 gives the per-slot guarantee
//! `R = 2.62·R_F/(1−8λ)` already for `z = 1` starting from `Ω = Ω^L`;
//! additional rounds only improve the incumbent (asserted in tests).

use std::fmt;

use eotora_game::{
    cgba_from_reference, cgba_from_with_scratch, cgba_warm_from_with_scratch, CgbaConfig,
    CgbaScratch, Profile,
};
use eotora_obs::{NoopRecorder, Recorder, SpanGuard, TraceEvent};
use eotora_states::SystemState;
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::decision::Assignment;
use crate::p2a::P2aProblem;
use crate::p2b::solve_p2b;
use crate::system::MecSystem;
use crate::workspace::SlotWorkspace;

/// A pluggable solver for the P2-A subproblem (the `(x, y)` step).
///
/// Returning *strategy choices* (indices into each player's strategy list)
/// rather than raw assignments keeps feasibility by construction.
pub trait P2aSolver: fmt::Debug {
    /// Short name used in experiment reports ("CGBA", "ROPT", "MCBA", ...).
    fn name(&self) -> &'static str;

    /// Produces one strategy choice per device.
    fn solve(&mut self, problem: &P2aProblem, rng: &mut Pcg32) -> Vec<usize>;

    /// Like [`P2aSolver::solve`], additionally reporting solver-specific
    /// counters (CGBA best-response iterations, MCBA proposal acceptances,
    /// branch-and-bound nodes, ...) into `recorder`. The default ignores
    /// the recorder.
    fn solve_with(
        &mut self,
        problem: &P2aProblem,
        rng: &mut Pcg32,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        let _ = recorder;
        self.solve(problem, rng)
    }

    /// Like [`P2aSolver::solve_with`], additionally offered `seed` — the
    /// previous converged strategy choices (from the last slot, or the last
    /// BDMA round) as a warm start. Solvers that cannot exploit a seed
    /// (ROPT, MCBA, greedy, exact) ignore it and fall back to
    /// [`P2aSolver::solve_with`]; `seed = None` must behave exactly like
    /// [`P2aSolver::solve_with`], including RNG consumption.
    fn solve_seeded(
        &mut self,
        problem: &P2aProblem,
        seed: Option<&[usize]>,
        rng: &mut Pcg32,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        let _ = seed;
        self.solve_with(problem, rng, recorder)
    }
}

/// The paper's P2-A solver: CGBA(λ) best-response dynamics. Owns a
/// [`CgbaScratch`] so repeated solves (rounds × slots) are allocation-free,
/// plus a second scratch dedicated to seeded (warm) solves: cold restarts
/// between warm rounds would otherwise wipe the converged-profile snapshot
/// the warm fast path re-scans against, turning every warm start back into
/// a full scan.
#[derive(Debug, Clone, Default)]
pub struct CgbaSolver {
    /// CGBA parameters (λ, iteration cap, scheduling rule).
    pub config: CgbaConfig,
    scratch: CgbaScratch,
    warm_scratch: CgbaScratch,
}

impl CgbaSolver {
    /// CGBA with the given λ and default scheduling.
    pub fn with_lambda(lambda: f64) -> Self {
        Self { config: CgbaConfig { lambda, ..Default::default() }, ..Default::default() }
    }
}

impl P2aSolver for CgbaSolver {
    fn name(&self) -> &'static str {
        "CGBA"
    }

    fn solve(&mut self, problem: &P2aProblem, rng: &mut Pcg32) -> Vec<usize> {
        let initial = Profile::random(problem.game(), rng);
        cgba_from_with_scratch(problem.game(), initial, &self.config, &mut self.scratch)
            .profile
            .choices()
            .to_vec()
    }

    fn solve_with(
        &mut self,
        problem: &P2aProblem,
        rng: &mut Pcg32,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        let initial = Profile::random(problem.game(), rng);
        let probes_before = self.scratch.probes();
        let report =
            cgba_from_with_scratch(problem.game(), initial, &self.config, &mut self.scratch);
        if recorder.is_enabled() {
            recorder.add(eotora_obs::COUNTER_CGBA_ITERATIONS, report.iterations as u64);
            recorder.add(eotora_obs::COUNTER_CGBA_PROBES, self.scratch.probes() - probes_before);
            if report.converged {
                recorder.add(eotora_obs::COUNTER_CGBA_CONVERGED, 1);
            }
        }
        report.profile.choices().to_vec()
    }

    fn solve_seeded(
        &mut self,
        problem: &P2aProblem,
        seed: Option<&[usize]>,
        rng: &mut Pcg32,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        // A seed that no longer matches the game's player count cannot be
        // repaired — fall back to the cold path (which must stay identical
        // to `solve_with`, RNG draws included).
        let warm_seed = seed.and_then(|c| Profile::from_retained_choices(problem.game(), c));
        let Some(initial) = warm_seed else {
            return self.solve_with(problem, rng, recorder);
        };
        let probes_before = self.warm_scratch.probes();
        let report = cgba_warm_from_with_scratch(
            problem.game(),
            initial,
            &self.config,
            &mut self.warm_scratch,
        );
        if recorder.is_enabled() {
            recorder.add(eotora_obs::COUNTER_CGBA_ITERATIONS, report.iterations as u64);
            recorder
                .add(eotora_obs::COUNTER_CGBA_PROBES, self.warm_scratch.probes() - probes_before);
            recorder.add(eotora_obs::COUNTER_CGBA_WARM_MOVES, report.iterations as u64);
            if report.converged {
                recorder.add(eotora_obs::COUNTER_CGBA_CONVERGED, 1);
            }
        }
        report.profile.choices().to_vec()
    }
}

/// How each slot's BDMA solve is initialized.
///
/// The paper's Algorithm 2 starts every slot cold: `Ω ← Ω^L` and a
/// uniformly random CGBA profile. System states are temporally correlated,
/// so the previous slot's converged `(profile, Ω̄)` is usually near the new
/// slot's equilibrium — warm policies reuse it and converge in far fewer
/// best-response moves (and, with ε termination, fewer BDMA rounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StartPolicy {
    /// The paper-faithful initialization. Default, and required for the
    /// bit-identity guarantee against [`solve_p2_reference`].
    #[default]
    Cold,
    /// Seed round 0's P2-A with the retained previous-slot profile
    /// (repaired against the current game) and start P2-B's alternation
    /// from the retained frequencies instead of `Ω^L`; rounds after the
    /// first chain from the previous round's converged profile, so every
    /// CGBA run rides the incremental snapshot fast path. When the chain
    /// ε-stalls, some slots spend one cold exploration probe (every third
    /// slot, or every slot while probes keep winning materially — see
    /// DESIGN.md §5c); a probe that beats the incumbent hands its basin to
    /// the chain. Use [`StartPolicy::WarmWithRestart`] to force
    /// unconditional round-0 restart races on drifting traces.
    Warm,
    /// [`StartPolicy::Warm`], but every `period`-th slot additionally races
    /// one cold random restart and keeps the better P2-A profile — guards
    /// against the warm seed pinning the dynamics in a sticky local
    /// equilibrium on drifting traces.
    WarmWithRestart {
        /// Race a restart whenever `slot % period == 0` (`period = 1` races
        /// every slot; `period = 0` never races, i.e. plain `Warm`).
        period: u64,
    },
}

/// Configuration for [`solve_p2`].
#[derive(Debug, Clone)]
pub struct BdmaConfig {
    /// Number of alternation rounds `z` (paper default in §VI-C: 5).
    pub rounds: usize,
    /// Relative early-termination threshold: under a warm [`StartPolicy`],
    /// stop alternating once a round improves the incumbent objective by
    /// less than `epsilon · |f|`, reporting `rounds_used ≤ z`. Ignored
    /// under [`StartPolicy::Cold`], which always runs all `z` rounds (the
    /// bit-identity guarantee pins the RNG stream). Safe by the incumbent's
    /// round monotonicity: the kept solution is never worse than any
    /// earlier round's.
    pub epsilon: f64,
    /// Cross-slot initialization policy.
    pub start: StartPolicy,
}

impl Default for BdmaConfig {
    fn default() -> Self {
        Self { rounds: 5, epsilon: 1e-9, start: StartPolicy::Cold }
    }
}

/// Relative objective margin above which a winning exploration probe marks
/// the retained basin as stale (raising the next slot's probe rate, see
/// [`SlotWorkspace::set_probe_hot`]). Deliberately much coarser than
/// [`BdmaConfig::epsilon`]: large games have many near-equivalent
/// equilibria, so probes *routinely* win by dust — only a material win
/// says the chain is stuck somewhere genuinely worse.
const PROBE_HOT_MARGIN: f64 = 1e-3;

/// A P2 solution `(x̄, ȳ, Ω̄)` with its objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct P2Solution {
    /// Per-device `(base station, server)` assignment.
    pub assignments: Vec<Assignment>,
    /// Per-server frequencies in Hz.
    pub freqs_hz: Vec<f64>,
    /// `f(x̄, ȳ, Ω̄) = V·T_t + Q·Θ`.
    pub objective: f64,
    /// Latency `T_t` at the solution (under Lemma 1 allocation).
    pub latency: f64,
    /// Energy cost `C_t` at the solution, in dollars.
    pub energy_cost: f64,
    /// BDMA rounds actually executed (`= z` cold; `≤ z` under a warm
    /// [`StartPolicy`] with ε early termination).
    pub rounds_used: usize,
}

/// Runs BDMA(z) for one slot with the given P2-A solver (Alg. 2).
///
/// Convenience wrapper over [`solve_p2_with`] that records nothing.
///
/// # Panics
///
/// Panics if `config.rounds == 0` or `v` is not positive.
pub fn solve_p2(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    config: &BdmaConfig,
    p2a_solver: &mut dyn P2aSolver,
    rng: &mut Pcg32,
) -> P2Solution {
    solve_p2_with(system, state, v, queue, config, p2a_solver, rng, 0, &NoopRecorder)
}

/// Runs BDMA(z) for one slot, reporting per-round instrumentation.
///
/// Each alternation round emits a `p2a` and a `p2b` span plus one
/// `bdma_iteration` event carrying the candidate objective, whether it
/// displaced the incumbent, and both phase durations; `bdma_rounds` /
/// `bdma_accepted` counters track totals. `slot` only labels the emitted
/// events — it does not affect the solve.
///
/// # Panics
///
/// Panics if `config.rounds == 0` or `v` is not positive.
#[allow(clippy::too_many_arguments)]
pub fn solve_p2_with(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    config: &BdmaConfig,
    p2a_solver: &mut dyn P2aSolver,
    rng: &mut Pcg32,
    slot: u64,
    recorder: &dyn Recorder,
) -> P2Solution {
    let mut workspace = SlotWorkspace::new();
    solve_p2_in(system, state, v, queue, config, p2a_solver, rng, slot, recorder, &mut workspace)
}

/// Runs BDMA(z) for one slot against a caller-owned [`SlotWorkspace`] — the
/// zero-rebuild entry point. The first call builds the P2-A game; every
/// later call (and every round within a call) refreshes its weights in
/// place. Results are bit-identical to [`solve_p2_with`] /
/// [`solve_p2_reference`] for the same inputs and RNG stream.
///
/// The workspace must always be passed the same `system` (a changed
/// topology shape falls back to a fresh build).
///
/// # Panics
///
/// Panics if `config.rounds == 0` or `v` is not positive.
#[allow(clippy::too_many_arguments)]
pub fn solve_p2_in(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    config: &BdmaConfig,
    p2a_solver: &mut dyn P2aSolver,
    rng: &mut Pcg32,
    slot: u64,
    recorder: &dyn Recorder,
    workspace: &mut SlotWorkspace,
) -> P2Solution {
    assert!(config.rounds > 0, "BDMA needs at least one round");
    assert!(v > 0.0, "penalty weight must be positive");

    let warm = config.start != StartPolicy::Cold;
    // Copy the retained seeds out before `prepare` takes the mutable borrow
    // (steady-state cost: one small copy per slot, warm modes only).
    let retained_choices: Option<Vec<usize>> =
        if warm { workspace.retained_choices().map(<[usize]>::to_vec) } else { None };
    let retained_freqs: Option<Vec<f64>> = if warm {
        workspace
            .retained_freqs()
            .filter(|f| f.len() == system.min_frequencies().len())
            .map(<[f64]>::to_vec)
    } else {
        None
    };

    let mut best: Option<P2Solution> = None;
    // The last *warm-path* converged profile — what the next slot's round 0
    // is seeded with. Kept separate from the incumbent's choices because
    // the warm CGBA scratch snapshots its own last converged profile: only
    // a seed equal to that snapshot rides the incremental fast path.
    let mut chain_choices: Vec<usize> = Vec::new();
    let mut last_choices: Option<Vec<usize>> = None;
    // At most one cold probe per slot, spent only after the warm chain
    // stalls: it buys exploration (a chance to escape a stale basin)
    // without paying a full random restart every round. The baseline rate
    // is every third slot — a basin rarely goes stale within a couple of
    // slots, and skipping keeps the typical slot at pure chain cost (a
    // probe costs a full cold solve, an order of magnitude more than a
    // chained round) — but while probes keep *winning* (the retained basin
    // is drifting stale) every slot probes until they stop paying.
    let probe_allowed = slot.is_multiple_of(3) || workspace.probe_hot();
    let mut probe_next = false;
    let mut probe_won = false;
    let mut explored = false;
    let mut rounds_used = 0;

    for round in 0..config.rounds {
        // Line 3: solve P2-A at the current frequencies.
        let p2a_span = SpanGuard::new(recorder, eotora_obs::SPAN_P2A);
        let p2a = if round == 0 {
            // Line 1 of Alg. 2: Ω ← Ω^L — or, warm, the previous slot's Ω̄
            // (P2-B's alternation then continues where the last slot ended).
            match &retained_freqs {
                Some(freqs) => workspace.prepare(system, state, freqs),
                None => workspace.prepare(system, state, &system.min_frequencies()),
            }
        } else {
            workspace.refresh_frequencies(system)
        };
        // Warm rounds seed P2-A with the nearest converged profile: the
        // previous slot's chain end in round 0, the previous round's result
        // after (only server weights moved between rounds, so the CGBA
        // snapshot fast path re-scans almost nobody). A probe round runs
        // cold — `solve_seeded(None)` is `solve_with` on the solver's cold
        // scratch, leaving the warm snapshot intact.
        let probe = warm && probe_next;
        probe_next = false;
        let seed = if !warm || probe {
            None
        } else if round == 0 {
            retained_choices.as_deref()
        } else {
            last_choices.as_deref()
        };
        let race_restart = round == 0
            && seed.is_some()
            && matches!(config.start, StartPolicy::WarmWithRestart { period }
                if period > 0 && slot.is_multiple_of(period));
        let choices = if race_restart {
            // Cold and seeded runs use separate scratches, so the race
            // leaves the warm snapshot of the seeded run intact either way.
            let cold = p2a_solver.solve_with(p2a, rng, recorder);
            let seeded = p2a_solver.solve_seeded(p2a, seed, rng, recorder);
            let game = p2a.game();
            let social = |c: &[usize]| Profile::from_choices(game, c.to_vec()).total_cost(game);
            if social(&cold) < social(&seeded) {
                cold
            } else {
                seeded
            }
        } else {
            p2a_solver.solve_seeded(p2a, seed, rng, recorder)
        };
        let assignments = p2a.assignments_from_choices(&choices);
        let p2a_nanos = p2a_span.finish().unwrap_or(0);
        // Line 4: solve P2-B at the chosen assignment.
        let p2b_span = SpanGuard::new(recorder, eotora_obs::SPAN_P2B);
        let p2b = solve_p2b(system, state, &assignments, v, queue);
        let p2b_nanos = p2b_span.finish().unwrap_or(0);
        // Latch the new frequencies for the next round's refresh (this
        // replaces the old per-round `freqs_hz.clone()`).
        workspace.set_freqs(&p2b.freqs_hz);
        // Lines 5–7: keep the incumbent with the best P2 objective.
        let latency =
            crate::latency::optimal_latency(system, state, &assignments, &p2b.freqs_hz).total();
        let energy_cost = system.energy_cost(state.price_per_kwh, &p2b.freqs_hz);
        let candidate = P2Solution {
            assignments,
            freqs_hz: p2b.freqs_hz,
            objective: p2b.objective,
            latency,
            energy_cost,
            rounds_used: 0,
        };
        let prev_objective = best.as_ref().map(|b| b.objective);
        let accepted = best.as_ref().is_none_or(|b| candidate.objective < b.objective);
        if recorder.is_enabled() {
            recorder.record(&TraceEvent::BdmaIteration {
                slot,
                round: round as u64 + 1,
                objective: candidate.objective,
                accepted,
                p2a_nanos,
                p2b_nanos,
            });
            recorder.add(eotora_obs::COUNTER_BDMA_ROUNDS, 1);
            if accepted {
                recorder.add(eotora_obs::COUNTER_BDMA_ACCEPTED, 1);
            }
        }
        if accepted {
            best = Some(candidate);
        }
        if warm && !probe {
            chain_choices.clear();
            chain_choices.extend_from_slice(&choices);
        }
        rounds_used = round + 1;
        last_choices = Some(choices);
        // ε early termination (warm modes only — Cold must consume the same
        // RNG stream as the reference): the incumbent is monotone over
        // rounds, so stopping on a sub-ε round keeps every guarantee of the
        // rounds already run. On probing slots the first stall spends the
        // cold probe instead of exiting; a probe that beats the incumbent
        // by ε keeps the loop alive (the chain adopts its basin through
        // `last_choices`), a probe that doesn't ends the slot.
        if warm && round >= 1 {
            let prev = prev_objective.expect("rounds after the first have an incumbent");
            let improvement = prev - best.as_ref().expect("incumbent exists").objective;
            if improvement <= config.epsilon * prev.abs() {
                if explored || !probe_allowed {
                    break;
                }
                explored = true;
                probe_next = true;
            } else if probe && improvement > PROBE_HOT_MARGIN * prev.abs() {
                // The probe found a *materially* better basin, not ε-dust:
                // the retained basin is stale, so keep probing next slot.
                // Sub-margin wins are routine equilibrium-selection noise
                // (near-equivalent equilibria abound at scale) and must not
                // escalate the probe rate.
                probe_won = true;
            }
        }
    }
    if recorder.is_enabled() && rounds_used < config.rounds {
        recorder.add(eotora_obs::COUNTER_BDMA_ROUNDS_SAVED, (config.rounds - rounds_used) as u64);
    }
    let mut best = best.expect("at least one round ran");
    best.rounds_used = rounds_used;
    if warm {
        // Seed the next slot from the chain end (which matches the warm
        // scratch's snapshot), not the incumbent: the returned solution is
        // still the incumbent, only the seeding differs.
        workspace.retain_solution(&chain_choices, &best.freqs_hz);
        workspace.set_probe_hot(probe_won);
    }
    best
}

/// The pre-refactor BDMA(z) loop, verbatim: a fresh [`P2aProblem::build`]
/// and full game validation every round, the naive-rescan
/// [`cgba_from_reference`] as the P2-A step, and a frequency clone per
/// round. Kept as the equivalence oracle and benchmark baseline for the
/// zero-rebuild path — it must produce bit-identical [`P2Solution`]s to
/// [`solve_p2_in`] with a [`CgbaSolver`] for the same inputs and RNG
/// stream.
///
/// # Panics
///
/// Panics if `config.rounds == 0` or `v` is not positive.
pub fn solve_p2_reference(
    system: &MecSystem,
    state: &SystemState,
    v: f64,
    queue: f64,
    config: &BdmaConfig,
    cgba_config: &CgbaConfig,
    rng: &mut Pcg32,
) -> P2Solution {
    assert!(config.rounds > 0, "BDMA needs at least one round");
    assert!(v > 0.0, "penalty weight must be positive");

    // Line 1 of Alg. 2: Ω ← Ω^L.
    let mut freqs = system.min_frequencies();
    let mut best: Option<P2Solution> = None;

    for _ in 0..config.rounds {
        let p2a = P2aProblem::build(system, state, &freqs);
        let initial = Profile::random(p2a.game(), rng);
        let report = cgba_from_reference(p2a.game(), initial, cgba_config);
        let assignments = p2a.assignments_from_choices(report.profile.choices());
        let p2b = solve_p2b(system, state, &assignments, v, queue);
        freqs = p2b.freqs_hz.clone();
        let latency =
            crate::latency::optimal_latency(system, state, &assignments, &p2b.freqs_hz).total();
        let energy_cost = system.energy_cost(state.price_per_kwh, &p2b.freqs_hz);
        let candidate = P2Solution {
            assignments,
            freqs_hz: p2b.freqs_hz,
            objective: p2b.objective,
            latency,
            energy_cost,
            rounds_used: 0,
        };
        if best.as_ref().is_none_or(|b| candidate.objective < b.objective) {
            best = Some(candidate);
        }
    }
    let mut best = best.expect("at least one round ran");
    // The reference loop always runs all z rounds (it predates warm starts
    // and ε termination; `config.epsilon`/`config.start` are ignored).
    best.rounds_used = config.rounds;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};
    use eotora_util::assert_close;

    fn setup(devices: usize, seed: u64) -> (MecSystem, SystemState) {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = p.observe(0, system.topology());
        (system, state)
    }

    fn run(
        system: &MecSystem,
        state: &SystemState,
        v: f64,
        q: f64,
        rounds: usize,
        seed: u64,
    ) -> P2Solution {
        let mut solver = CgbaSolver::default();
        let mut rng = Pcg32::seed(seed);
        solve_p2(
            system,
            state,
            v,
            q,
            &BdmaConfig { rounds, ..Default::default() },
            &mut solver,
            &mut rng,
        )
    }

    #[test]
    fn solution_is_feasible() {
        let (system, state) = setup(25, 41);
        let sol = run(&system, &state, 100.0, 50.0, 5, 1);
        let decision =
            crate::allocation::optimal_allocation(&system, &state, &sol.assignments, &sol.freqs_hz);
        decision.validate(&system).unwrap();
    }

    #[test]
    fn more_rounds_never_hurt() {
        let (system, state) = setup(20, 42);
        // Identical RNG seeds: round r's trajectory is a prefix, so the
        // incumbent can only improve.
        let obj: Vec<f64> =
            [1, 2, 5].iter().map(|&z| run(&system, &state, 100.0, 80.0, z, 7).objective).collect();
        assert!(obj[1] <= obj[0] + 1e-9);
        assert!(obj[2] <= obj[1] + 1e-9);
    }

    #[test]
    fn objective_decomposition() {
        let (system, state) = setup(15, 43);
        let (v, q) = (120.0, 60.0);
        let sol = run(&system, &state, v, q, 3, 2);
        let excess = sol.energy_cost - system.budget_per_slot();
        assert_close!(sol.objective, v * sol.latency + q * excess, 1e-9);
    }

    #[test]
    fn zero_queue_runs_hot() {
        // Without queue pressure BDMA should use max frequencies on loaded
        // servers — energy cost near the fleet maximum.
        let (system, state) = setup(30, 44);
        let sol = run(&system, &state, 100.0, 0.0, 3, 3);
        let max_cost = system.energy_cost(state.price_per_kwh, &system.max_frequencies());
        // All 16 servers are typically loaded with 30 devices; allow slack
        // for unloaded servers parked at F^L.
        assert!(sol.energy_cost > 0.85 * max_cost, "{} vs {max_cost}", sol.energy_cost);
    }

    #[test]
    fn heavy_queue_runs_cold() {
        let (system, state) = setup(30, 45);
        let sol = run(&system, &state, 1.0, 1e9, 3, 4);
        let min_cost = system.energy_cost(state.price_per_kwh, &system.min_frequencies());
        assert_close!(sol.energy_cost, min_cost, 1e-3);
    }

    /// Asserts Theorem 3's per-slot bound `f(sol) ≤ R·V·T(any) + Q·Θ(any)`
    /// against a batch of random feasible decisions with R = 2.62·R_F
    /// (λ = 0).
    fn assert_theorem3_bound(
        system: &MecSystem,
        state: &SystemState,
        sol: &P2Solution,
        v: f64,
        q: f64,
        label: &str,
    ) {
        let r = 2.62 * system.topology().max_frequency_ratio();
        let mut rng = Pcg32::seed(99);
        let topo = system.topology();
        let devices = state.task_cycles.len();
        for _ in 0..50 {
            let assignments: Vec<Assignment> = (0..devices)
                .map(|_| {
                    let k = eotora_topology::BaseStationId(rng.below(topo.num_base_stations()));
                    let server = *rng.pick(&topo.servers_reachable_from(k)).unwrap();
                    Assignment { base_station: k, server }
                })
                .collect();
            let freqs: Vec<f64> = topo
                .server_ids()
                .map(|n| {
                    let s = topo.server(n);
                    rng.uniform_in(s.freq_min_hz, s.freq_max_hz)
                })
                .collect();
            let t_ref =
                crate::latency::optimal_latency(system, state, &assignments, &freqs).total();
            let theta_ref = system.constraint_excess(state.price_per_kwh, &freqs);
            assert!(
                sol.objective <= r * v * t_ref + q * theta_ref + 1e-6,
                "Theorem 3 bound violated ({label}): {} > {}",
                sol.objective,
                r * v * t_ref + q * theta_ref
            );
        }
    }

    /// Runs `slots` consecutive warm-started slot solves against one shared
    /// workspace (so every slot after the first is genuinely seeded from
    /// the previous incumbent), returning the per-slot solutions and the
    /// states that produced them.
    fn run_warm_slots(
        devices: usize,
        seed: u64,
        v: f64,
        config: &BdmaConfig,
        slots: u64,
    ) -> (MecSystem, Vec<SystemState>, Vec<P2Solution>) {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let mut solver = CgbaSolver::default();
        let mut workspace = SlotWorkspace::new();
        let mut rng = Pcg32::seed_stream(seed, 0xD99);
        let mut queue = 0.0;
        let mut states = Vec::new();
        let mut sols = Vec::new();
        for slot in 0..slots {
            let state = provider.observe(slot, system.topology());
            let sol = solve_p2_in(
                &system,
                &state,
                v,
                queue,
                config,
                &mut solver,
                &mut rng,
                slot,
                &NoopRecorder,
                &mut workspace,
            );
            queue = (queue + sol.energy_cost - system.budget_per_slot()).max(0.0);
            states.push(state);
            sols.push(sol);
        }
        (system, states, sols)
    }

    #[test]
    fn per_slot_guarantee_vs_reference_decisions() {
        // Theorem 3 for the paper-faithful cold path…
        let (system, state) = setup(12, 46);
        let (v, q) = (100.0, 40.0);
        let sol = run(&system, &state, v, q, 5, 5);
        assert_theorem3_bound(&system, &state, &sol, v, q, "cold");

        // …and for `Warm`: the warm seed only changes where the dynamics
        // start, CGBA still converges to a λ-equilibrium and BDMA's round-1
        // guarantee covers the incumbent, so the same bound must hold at
        // every slot of a warm-started run (queue = 0 keeps Θ's weight out
        // of the per-slot comparison).
        let config = BdmaConfig { rounds: 5, epsilon: 1e-9, start: StartPolicy::Warm };
        let (system, states, sols) = run_warm_slots(12, 46, v, &config, 4);
        for (slot, (state, sol)) in states.iter().zip(&sols).enumerate() {
            assert!(sol.rounds_used >= 1 && sol.rounds_used <= 5, "slot {slot}");
            assert_theorem3_bound(&system, state, sol, v, 0.0, &format!("warm slot {slot}"));
        }
    }

    #[test]
    fn warm_early_termination_cuts_rounds() {
        let config = BdmaConfig { rounds: 5, epsilon: 1e-9, start: StartPolicy::Warm };
        let (system, _, sols) = run_warm_slots(15, 52, 100.0, &config, 6);
        let total: usize = sols.iter().map(|s| s.rounds_used).sum();
        assert!(
            total < 5 * sols.len(),
            "ε termination never fired: {total} rounds over {} slots",
            sols.len()
        );
        let _ = system;
    }

    #[test]
    fn warm_with_restart_stays_feasible_and_bounded() {
        let config = BdmaConfig {
            rounds: 3,
            epsilon: 1e-9,
            start: StartPolicy::WarmWithRestart { period: 2 },
        };
        let (system, states, sols) = run_warm_slots(12, 53, 100.0, &config, 5);
        for (state, sol) in states.iter().zip(&sols) {
            let decision = crate::allocation::optimal_allocation(
                &system,
                state,
                &sol.assignments,
                &sol.freqs_hz,
            );
            decision.validate(&system).unwrap();
            assert_theorem3_bound(&system, state, sol, 100.0, 0.0, "warm+restart");
        }
    }

    #[test]
    fn solve_seeded_without_seed_matches_solve_with() {
        // The Cold path routes through `solve_seeded(seed: None)`, which
        // must consume the same RNG stream and produce the same choices as
        // the plain `solve_with` (the bit-identity guarantee rides on it).
        let (system, state) = setup(10, 54);
        let freqs = system.min_frequencies();
        let problem = P2aProblem::build(&system, &state, &freqs);
        let mut a = CgbaSolver::default();
        let mut b = CgbaSolver::default();
        let mut rng_a = Pcg32::seed(17);
        let mut rng_b = Pcg32::seed(17);
        let plain = a.solve_with(&problem, &mut rng_a, &NoopRecorder);
        let seeded = b.solve_seeded(&problem, None, &mut rng_b, &NoopRecorder);
        assert_eq!(plain, seeded);
        assert_eq!(rng_a, rng_b);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        let (system, state) = setup(4, 47);
        run(&system, &state, 1.0, 0.0, 0, 1);
    }

    #[test]
    fn workspace_path_matches_reference_across_slots() {
        // The zero-rebuild path (reused workspace + incremental CGBA) must
        // be bit-identical to the pre-refactor loop across a stream of
        // slots with varying states and queue backlogs.
        use crate::workspace::SlotWorkspace;
        use eotora_states::{PaperStateConfig, StateProvider};

        let system = MecSystem::random(&crate::system::SystemConfig::paper_defaults(16), 48);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), 48);
        let config = BdmaConfig { rounds: 3, ..Default::default() };
        let mut solver = CgbaSolver::default();
        let mut workspace = SlotWorkspace::new();
        let mut rng_new = Pcg32::seed(9);
        let mut rng_ref = Pcg32::seed(9);
        let mut queue = 0.0;
        for slot in 0..6u64 {
            let state = provider.observe(slot, system.topology());
            let v = 100.0;
            let sol = solve_p2_in(
                &system,
                &state,
                v,
                queue,
                &config,
                &mut solver,
                &mut rng_new,
                slot,
                &NoopRecorder,
                &mut workspace,
            );
            let reference = solve_p2_reference(
                &system,
                &state,
                v,
                queue,
                &config,
                &solver.config,
                &mut rng_ref,
            );
            assert_eq!(sol, reference, "slot {slot}");
            // Evolve the queue like DPP would, so later slots see different
            // backlogs.
            queue = (queue + sol.energy_cost - system.budget_per_slot()).max(0.0);
        }
    }

    #[test]
    fn solve_p2_with_matches_reference() {
        // The temp-workspace wrapper is the same computation.
        let (system, state) = setup(12, 49);
        let mut solver = CgbaSolver::default();
        let sol = solve_p2(
            &system,
            &state,
            80.0,
            30.0,
            &BdmaConfig { rounds: 2, ..Default::default() },
            &mut solver,
            &mut Pcg32::seed(11),
        );
        let reference = solve_p2_reference(
            &system,
            &state,
            80.0,
            30.0,
            &BdmaConfig { rounds: 2, ..Default::default() },
            &CgbaConfig::default(),
            &mut Pcg32::seed(11),
        );
        assert_eq!(sol, reference);
    }
}
