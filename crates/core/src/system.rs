//! The complete MEC system instance: topology, energy models, suitability.

use std::sync::Arc;

use eotora_energy::{fit_i7_3770k, EnergyModel, Scaled};
use eotora_topology::{DeviceId, RandomTopologyConfig, ServerId, Topology};
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// Configuration for [`MecSystem::random`], defaulting to the paper's §VI-A
/// setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Physical network generator configuration.
    pub topology: RandomTopologyConfig,
    /// Uniform range of the suitability parameters `σ_{i,n}` (paper: 0.5–1).
    pub suitability_range: (f64, f64),
    /// Time-average energy-cost budget `C̄` in dollars per slot.
    pub budget_per_slot: f64,
    /// Slot duration in hours (1.0 = the paper's hourly electricity slots).
    pub slot_hours: f64,
    /// Reference core count of the fitted CPU (i7-3770K has 4 cores); a
    /// server with `c` cores is modeled as `c / reference_cores` packages.
    pub reference_cores: f64,
}

impl SystemConfig {
    /// The paper's evaluation parameters with `num_devices` devices.
    ///
    /// The default budget ($1.00/slot) sits midway between the fleet's
    /// all-min-frequency (~$0.5) and all-max-frequency (~$1.5) cost at the
    /// mean electricity price, so the budget constraint genuinely binds.
    pub fn paper_defaults(num_devices: usize) -> Self {
        Self {
            topology: RandomTopologyConfig::paper_defaults(num_devices),
            suitability_range: (0.5, 1.0),
            budget_per_slot: 1.0,
            slot_hours: 1.0,
            reference_cores: 4.0,
        }
    }

    /// A tiny instance (2 BSs, 3 servers) for exact-baseline tests.
    pub fn tiny(num_devices: usize) -> Self {
        Self {
            topology: RandomTopologyConfig::tiny(num_devices),
            ..Self::paper_defaults(num_devices)
        }
    }
}

/// A fully specified system instance: everything static that the online
/// controller knows in advance (`W`, `σ`, `h^F`, `F^L/F^U`, `g_n`, `C̄`).
///
/// Cheap to clone: the energy models are shared via [`Arc`].
#[derive(Debug, Clone)]
pub struct MecSystem {
    topology: Topology,
    energy: Vec<Arc<dyn EnergyModel>>,
    /// `suitability[i][n] = σ_{i,n} ∈ (0, 1]`.
    suitability: Vec<Vec<f64>>,
    budget_per_slot: f64,
    slot_hours: f64,
}

impl MecSystem {
    /// Assembles a system from parts.
    ///
    /// # Panics
    ///
    /// Panics if the component shapes disagree with the topology, any
    /// suitability is outside `(0, 1]`, or the budget/slot length is not
    /// positive.
    pub fn new(
        topology: Topology,
        energy: Vec<Arc<dyn EnergyModel>>,
        suitability: Vec<Vec<f64>>,
        budget_per_slot: f64,
        slot_hours: f64,
    ) -> Self {
        assert_eq!(energy.len(), topology.num_servers(), "one energy model per server");
        assert_eq!(suitability.len(), topology.num_devices(), "one suitability row per device");
        for row in &suitability {
            assert_eq!(row.len(), topology.num_servers(), "one suitability per (device, server)");
            assert!(row.iter().all(|&s| s > 0.0 && s <= 1.0), "suitability must lie in (0, 1]");
        }
        assert!(budget_per_slot > 0.0, "budget must be positive");
        assert!(slot_hours > 0.0, "slot length must be positive");
        Self { topology, energy, suitability, budget_per_slot, slot_hours }
    }

    /// Generates the paper's random instance from `config`, deterministically
    /// from `seed`: random topology, perturbed-quadratic energy fleet scaled
    /// by core count, and uniform suitabilities.
    pub fn random(config: &SystemConfig, seed: u64) -> Self {
        let topology = Topology::random(&config.topology, seed);
        let mut rng = Pcg32::seed_stream(seed, 0x5757E);
        let base = fit_i7_3770k();
        let energy: Vec<Arc<dyn EnergyModel>> = topology
            .server_ids()
            .map(|n| {
                let e = rng.standard_normal();
                let scale = topology.server(n).cores as f64 / config.reference_cores;
                Arc::new(Scaled::new(Box::new(base.perturbed(e)), scale)) as Arc<dyn EnergyModel>
            })
            .collect();
        let suitability = (0..topology.num_devices())
            .map(|_| {
                (0..topology.num_servers())
                    .map(|_| rng.uniform_in(config.suitability_range.0, config.suitability_range.1))
                    .collect()
            })
            .collect();
        Self::new(topology, energy, suitability, config.budget_per_slot, config.slot_hours)
    }

    /// The physical network.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Energy model `g_n` of server `n`.
    pub fn energy_model(&self, n: ServerId) -> &dyn EnergyModel {
        self.energy[n.index()].as_ref()
    }

    /// Suitability `σ_{i,n}` of running device `i`'s tasks on server `n`.
    pub fn suitability(&self, i: DeviceId, n: ServerId) -> f64 {
        self.suitability[i.index()][n.index()]
    }

    /// The time-average energy-cost budget `C̄` in dollars per slot.
    pub fn budget_per_slot(&self) -> f64 {
        self.budget_per_slot
    }

    /// Returns a copy of this system with a different budget (used by the
    /// Fig. 9 budget sweep).
    pub fn with_budget(mut self, budget_per_slot: f64) -> Self {
        self.set_budget_per_slot(budget_per_slot);
        self
    }

    /// Replaces the budget `C̄` in place — the federation rebalance path,
    /// where a region's share of the fleet budget changes between slots
    /// while the rest of the system state must stay untouched.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not positive.
    pub fn set_budget_per_slot(&mut self, budget_per_slot: f64) {
        assert!(budget_per_slot > 0.0, "budget must be positive");
        self.budget_per_slot = budget_per_slot;
    }

    /// Slot duration in hours.
    pub fn slot_hours(&self) -> f64 {
        self.slot_hours
    }

    /// Effective compute rate of server `n` at clock `freq_hz`, in cycles/s
    /// (`cores × frequency`) — the `ω_{n,t}` entering eq. (7)/(18) once core
    /// counts are accounted for.
    pub fn compute_rate(&self, n: ServerId, freq_hz: f64) -> f64 {
        self.topology.server(n).cores as f64 * freq_hz
    }

    /// Total fleet power in watts at the given per-server frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `freqs_hz.len()` differs from the server count.
    pub fn fleet_power_watts(&self, freqs_hz: &[f64]) -> f64 {
        assert_eq!(freqs_hz.len(), self.topology.num_servers(), "one frequency per server");
        self.energy.iter().zip(freqs_hz).map(|(m, &f)| m.power_watts(f)).sum()
    }

    /// Energy cost in dollars for one slot at price `price_per_kwh` and the
    /// given frequencies — the paper's `C_t(Ω_t, p_t)` of eq. (13).
    pub fn energy_cost(&self, price_per_kwh: f64, freqs_hz: &[f64]) -> f64 {
        eotora_energy::energy_cost_dollars(
            price_per_kwh,
            self.fleet_power_watts(freqs_hz),
            self.slot_hours,
        )
    }

    /// Fleet power excluding crashed servers (`down[n]` marks server `n`
    /// dead: it draws no billable power while unavailable).
    ///
    /// # Panics
    ///
    /// Panics if either slice length differs from the server count.
    pub fn fleet_power_watts_masked(&self, freqs_hz: &[f64], down: &[bool]) -> f64 {
        assert_eq!(freqs_hz.len(), self.topology.num_servers(), "one frequency per server");
        assert_eq!(down.len(), self.topology.num_servers(), "one down flag per server");
        self.energy
            .iter()
            .zip(freqs_hz)
            .zip(down)
            .filter(|&(_, &d)| !d)
            .map(|((m, &f), _)| m.power_watts(f))
            .sum()
    }

    /// Energy cost for one slot charging only servers that are actually up —
    /// the fault-path variant of [`MecSystem::energy_cost`], so the virtual
    /// queue is charged only for energy actually spent. With no server down
    /// it equals `energy_cost` exactly.
    pub fn energy_cost_masked(&self, price_per_kwh: f64, freqs_hz: &[f64], down: &[bool]) -> f64 {
        eotora_energy::energy_cost_dollars(
            price_per_kwh,
            self.fleet_power_watts_masked(freqs_hz, down),
            self.slot_hours,
        )
    }

    /// The constraint excess `θ(t) = C_t − C̄` driving the virtual queue.
    pub fn constraint_excess(&self, price_per_kwh: f64, freqs_hz: &[f64]) -> f64 {
        self.energy_cost(price_per_kwh, freqs_hz) - self.budget_per_slot
    }

    /// All servers at their minimum frequency `Ω^L` (BDMA's starting point).
    pub fn min_frequencies(&self) -> Vec<f64> {
        self.topology.server_ids().map(|n| self.topology.server(n).freq_min_hz).collect()
    }

    /// All servers at their maximum frequency `Ω^U`.
    pub fn max_frequencies(&self) -> Vec<f64> {
        self.topology.server_ids().map(|n| self.topology.server(n).freq_max_hz).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_energy::QuadraticEnergy;

    #[test]
    fn random_system_shapes() {
        let s = MecSystem::random(&SystemConfig::paper_defaults(30), 3);
        assert_eq!(s.topology().num_devices(), 30);
        assert_eq!(s.topology().num_servers(), 16);
        for i in s.topology().device_ids() {
            for n in s.topology().server_ids() {
                let sigma = s.suitability(i, n);
                assert!((0.5..=1.0).contains(&sigma));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = MecSystem::random(&SystemConfig::paper_defaults(10), 5);
        let b = MecSystem::random(&SystemConfig::paper_defaults(10), 5);
        assert_eq!(a.topology(), b.topology());
        assert_eq!(
            a.suitability(DeviceId(3), ServerId(7)),
            b.suitability(DeviceId(3), ServerId(7))
        );
        let f = a.max_frequencies();
        assert_eq!(a.fleet_power_watts(&f), b.fleet_power_watts(&f));
    }

    #[test]
    fn power_scales_with_cores_and_frequency() {
        let s = MecSystem::random(&SystemConfig::paper_defaults(10), 2);
        let low = s.fleet_power_watts(&s.min_frequencies());
        let high = s.fleet_power_watts(&s.max_frequencies());
        assert!(high > low);
        // 8×16 + 8×32 = 384 i7 packages at 27–78.5 W each.
        assert!((8_000.0..14_000.0).contains(&low), "low {low}");
        assert!((25_000.0..35_000.0).contains(&high), "high {high}");
    }

    #[test]
    fn budget_brackets_fleet_cost_range() {
        // The default budget should sit strictly between the min- and
        // max-frequency cost at the mean price, so DPP has a real trade-off.
        let s = MecSystem::random(&SystemConfig::paper_defaults(10), 2);
        let mean_price = 0.048; // mean of the embedded NYISO-like profile
        let low = s.energy_cost(mean_price, &s.min_frequencies());
        let high = s.energy_cost(mean_price, &s.max_frequencies());
        assert!(
            low < s.budget_per_slot() && s.budget_per_slot() < high,
            "budget {} outside [{low}, {high}]",
            s.budget_per_slot()
        );
    }

    #[test]
    fn cost_and_excess_consistent() {
        let s = MecSystem::random(&SystemConfig::paper_defaults(10), 2);
        let f = s.min_frequencies();
        let c = s.energy_cost(0.05, &f);
        assert!((s.constraint_excess(0.05, &f) - (c - s.budget_per_slot())).abs() < 1e-12);
    }

    #[test]
    fn masked_energy_excludes_down_servers() {
        let s = MecSystem::random(&SystemConfig::paper_defaults(10), 2);
        let f = s.max_frequencies();
        let all_up = vec![false; f.len()];
        assert_eq!(s.energy_cost_masked(0.05, &f, &all_up), s.energy_cost(0.05, &f));
        let mut down = all_up;
        down[0] = true;
        let masked = s.energy_cost_masked(0.05, &f, &down);
        assert!(masked < s.energy_cost(0.05, &f));
        assert!(masked > 0.0);
    }

    #[test]
    fn with_budget_replaces_budget() {
        let s = MecSystem::random(&SystemConfig::paper_defaults(10), 2).with_budget(2.5);
        assert_eq!(s.budget_per_slot(), 2.5);
    }

    #[test]
    fn compute_rate_uses_cores() {
        let s = MecSystem::random(&SystemConfig::paper_defaults(10), 2);
        let n = ServerId(0);
        let cores = s.topology().server(n).cores as f64;
        assert_eq!(s.compute_rate(n, 2.0e9), cores * 2.0e9);
    }

    #[test]
    #[should_panic(expected = "one energy model per server")]
    fn mismatched_energy_panics() {
        let topo = Topology::random(&RandomTopologyConfig::tiny(2), 1);
        MecSystem::new(topo, vec![], vec![vec![1.0; 3]; 2], 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "suitability must lie")]
    fn out_of_range_suitability_panics() {
        let topo = Topology::random(&RandomTopologyConfig::tiny(1), 1);
        let energy: Vec<Arc<dyn EnergyModel>> = (0..3)
            .map(|_| Arc::new(QuadraticEnergy::new(1.0, 1.0, 1.0)) as Arc<dyn EnergyModel>)
            .collect();
        MecSystem::new(topo, energy, vec![vec![0.0, 0.5, 1.0]], 1.0, 1.0);
    }
}
