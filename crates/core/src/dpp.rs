//! The BDMA-based DPP online controller (paper Algorithm 1).
//!
//! Per slot: observe `β_t`, call BDMA to get `(x̄, ȳ, Ω̄)` for the
//! drift-plus-penalty objective `V·T_t + Q(t)·Θ`, recover the Lemma 1
//! allocation `(Φ*, Ψ*)`, execute, and update the virtual queue
//! `Q(t+1) = max{Q(t) + C_t − C̄, 0}`. The queue/averaging machinery comes
//! from `eotora-lyapunov`; this module supplies the EOTORA-specific slot
//! solver and wires in the pluggable P2-A algorithm (giving the paper's
//! *BDMA-based*, *ROPT-based*, and *MCBA-based* DPP variants).

use std::fmt;

use eotora_lyapunov::{ControllerCheckpoint, DppStep, SlotOutcome, SlotSolver, VirtualQueue};
use eotora_obs::{NoopRecorder, Recorder, SpanGuard, TraceEvent};
use eotora_states::SystemState;
use eotora_util::rng::Pcg32;
use eotora_util::stats::Welford;
use serde::{Deserialize, Serialize};

use crate::allocation::{optimal_allocation, try_optimal_allocation};
use crate::baselines::{ExactSolver, GreedySolver, McbaConfig, McbaSolver, RoptSolver};
use crate::bdma::{solve_p2_in, BdmaConfig, CgbaSolver, P2Solution, P2aSolver, StartPolicy};
use crate::decision::SlotDecision;
use crate::fault::AvailabilityMask;
use crate::robust::{equal_share_decision, solve_p2_robust, RobustConfig, RobustReport};
use crate::system::MecSystem;
use crate::workspace::SlotWorkspace;

/// Which P2-A algorithm drives the per-slot solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SolverKind {
    /// The paper's algorithm: CGBA(λ).
    Cgba {
        /// Approximation slack λ.
        lambda: f64,
    },
    /// CGBA(λ) run per BS-cluster shard on a worker pool and merged
    /// deterministically (see [`crate::sharded`]). Decision-identical to
    /// [`SolverKind::Cgba`] on separable topologies.
    ShardedCgba {
        /// Approximation slack λ.
        lambda: f64,
        /// Shard cap handed to the plan (`0` = one shard per component).
        shards: usize,
    },
    /// Random selection (ROPT-based DPP baseline).
    Ropt,
    /// Deterministic heaviest-first marginal-cost assignment.
    Greedy,
    /// MCMC sampling (MCBA-based DPP baseline).
    Mcba {
        /// Proposal steps per solve.
        iterations: usize,
    },
    /// Branch-and-bound exact optimum (only viable on small instances).
    Exact {
        /// Node budget per solve.
        node_budget: usize,
    },
}

impl SolverKind {
    fn instantiate(self) -> Box<dyn P2aSolver> {
        match self {
            Self::Cgba { lambda } => Box::new(CgbaSolver::with_lambda(lambda)),
            Self::ShardedCgba { lambda, shards } => {
                Box::new(crate::sharded::ShardedCgbaSolver::with_lambda(lambda, shards))
            }
            Self::Ropt => Box::new(RoptSolver),
            Self::Greedy => Box::new(GreedySolver),
            Self::Mcba { iterations } => {
                Box::new(McbaSolver { config: McbaConfig { iterations, ..Default::default() } })
            }
            Self::Exact { node_budget } => Box::new(ExactSolver { node_budget, warm_start: true }),
        }
    }

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Self::Cgba { .. } => "BDMA-based DPP",
            Self::ShardedCgba { .. } => "Sharded-BDMA-based DPP",
            Self::Ropt => "ROPT-based DPP",
            Self::Greedy => "Greedy-based DPP",
            Self::Mcba { .. } => "MCBA-based DPP",
            Self::Exact { .. } => "OPT-based DPP",
        }
    }
}

/// Configuration of the online controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DppConfig {
    /// Penalty weight `V` (latency emphasis; Theorem 4's `O(1/V)` knob).
    pub v: f64,
    /// Initial queue backlog `Q(1)`.
    pub initial_queue: f64,
    /// BDMA alternation rounds `z`.
    pub bdma_rounds: usize,
    /// Relative ε for BDMA early termination under a warm start policy
    /// (see [`BdmaConfig::epsilon`]; ignored under [`StartPolicy::Cold`]).
    pub bdma_epsilon: f64,
    /// Cross-slot warm-start policy for the per-slot BDMA solve. The
    /// default `Cold` keeps runs bit-identical to the paper-faithful
    /// reference path; figure runs stay on it for paper fidelity.
    pub start: StartPolicy,
    /// P2-A solver plugged into BDMA.
    pub solver: SolverKind,
    /// RNG seed for the solver's internal randomness.
    pub seed: u64,
}

impl Default for DppConfig {
    fn default() -> Self {
        Self {
            v: 100.0,
            initial_queue: 0.0,
            bdma_rounds: 5,
            bdma_epsilon: 1e-9,
            start: StartPolicy::Cold,
            solver: SolverKind::Cgba { lambda: 0.0 },
            seed: 0,
        }
    }
}

/// The EOTORA-specific slot solver handed to the generic DPP controller.
/// Owns a [`SlotWorkspace`] so steady-state slots refresh the P2-A game in
/// place instead of rebuilding it (see [`crate::workspace`]).
pub struct EotoraSlotSolver {
    system: MecSystem,
    bdma: BdmaConfig,
    p2a: Box<dyn P2aSolver>,
    rng: Pcg32,
    workspace: SlotWorkspace,
}

impl fmt::Debug for EotoraSlotSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EotoraSlotSolver")
            .field("p2a", &self.p2a)
            .field("bdma_rounds", &self.bdma.rounds)
            .finish()
    }
}

impl EotoraSlotSolver {
    /// Solves one slot, emitting `p2a`/`p2b` spans and `bdma_iteration`
    /// events into `recorder` (`slot` labels those events).
    fn solve_recorded(
        &mut self,
        state: &SystemState,
        v: f64,
        q: f64,
        slot: u64,
        recorder: &dyn Recorder,
    ) -> SlotOutcome<SlotDecision> {
        let sol = solve_p2_in(
            &self.system,
            state,
            v,
            q,
            &self.bdma,
            self.p2a.as_mut(),
            &mut self.rng,
            slot,
            recorder,
            &mut self.workspace,
        );
        let decision = optimal_allocation(&self.system, state, &sol.assignments, &sol.freqs_hz);
        debug_assert!(decision.validate(&self.system).is_ok());
        SlotOutcome {
            decision,
            objective: sol.latency,
            constraint_excess: sol.energy_cost - self.system.budget_per_slot(),
        }
    }
}

impl SlotSolver for EotoraSlotSolver {
    type State = SystemState;
    type Decision = SlotDecision;

    fn solve(&mut self, state: &SystemState, v: f64, q: f64) -> SlotOutcome<SlotDecision> {
        self.solve_recorded(state, v, q, 0, &NoopRecorder)
    }
}

/// The full online controller: Algorithm 1 ready to be stepped slot by slot.
///
/// # Examples
///
/// ```
/// use eotora_core::dpp::{DppConfig, EotoraDpp};
/// use eotora_core::system::{MecSystem, SystemConfig};
/// use eotora_states::{PaperStateConfig, StateProvider};
///
/// let system = MecSystem::random(&SystemConfig::paper_defaults(10), 1);
/// let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 1);
/// let mut dpp = EotoraDpp::new(system, DppConfig { v: 50.0, ..Default::default() });
/// let beta = states.observe(0, dpp.system().topology());
/// let step = dpp.step(&beta);
/// assert!(step.outcome.objective > 0.0);
/// assert!(dpp.queue_backlog() >= 0.0);
/// ```
#[derive(Debug)]
pub struct EotoraDpp {
    solver: EotoraSlotSolver,
    queue: VirtualQueue,
    slots: u64,
    objective_avg: Welford,
    excess_avg: Welford,
    config: DppConfig,
}

impl EotoraDpp {
    /// Builds the controller for `system` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.v` is not positive or `config.initial_queue` is
    /// negative.
    pub fn new(system: MecSystem, config: DppConfig) -> Self {
        assert!(config.v > 0.0, "penalty weight V must be positive");
        let solver = EotoraSlotSolver {
            system,
            bdma: BdmaConfig {
                rounds: config.bdma_rounds,
                epsilon: config.bdma_epsilon,
                start: config.start,
            },
            p2a: config.solver.instantiate(),
            rng: Pcg32::seed_stream(config.seed, 0xD99),
            // A fresh workspace is a pure cache: the first slot builds the
            // P2-A game, later slots refresh it in place with identical
            // numerics (so checkpoint/resume stays bit-exact).
            workspace: SlotWorkspace::new(),
        };
        Self {
            solver,
            queue: VirtualQueue::new(config.initial_queue),
            slots: 0,
            objective_avg: Welford::new(),
            excess_avg: Welford::new(),
            config,
        }
    }

    /// The system instance being controlled.
    pub fn system(&self) -> &MecSystem {
        &self.solver.system
    }

    /// Replaces the budget `C̄` the virtual queue is charged against —
    /// the federation rebalance path. Only future queue updates (and the
    /// robust ladder's excess readout) see the new value; the P2 solve
    /// itself never reads the budget, so decisions within a slot are
    /// unaffected.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not positive.
    pub fn set_budget_per_slot(&mut self, budget_per_slot: f64) {
        self.solver.system.set_budget_per_slot(budget_per_slot);
    }

    /// The configuration in force.
    pub fn config(&self) -> &DppConfig {
        &self.config
    }

    /// Executes one slot of Algorithm 1 for the observed state `β_t`.
    pub fn step(&mut self, state: &SystemState) -> DppStep<SlotDecision> {
        self.step_with(state, &NoopRecorder)
    }

    /// Executes one slot, emitting instrumentation into `recorder`: the
    /// BDMA `p2a`/`p2b` spans and `bdma_iteration` events from the P2
    /// solve, plus a `queue_update` span and event for the virtual-queue
    /// update `Q(t+1) = max{Q(t) + C_t − C̄, 0}` (eq. 21).
    pub fn step_with(
        &mut self,
        state: &SystemState,
        recorder: &dyn Recorder,
    ) -> DppStep<SlotDecision> {
        let slot = self.slots;
        let queue_before = self.queue.backlog();
        let outcome =
            self.solver.solve_recorded(state, self.config.v, queue_before, slot, recorder);
        self.finish_slot(slot, queue_before, outcome, recorder)
    }

    /// The common tail of every slot step: virtual-queue update (eq. 21),
    /// running averages, slot counter. Shared verbatim between the normal
    /// solve path and the speculative adopt path so the two stay
    /// bit-identical by construction.
    fn finish_slot(
        &mut self,
        slot: u64,
        queue_before: f64,
        outcome: SlotOutcome<SlotDecision>,
        recorder: &dyn Recorder,
    ) -> DppStep<SlotDecision> {
        let update_span = SpanGuard::new(recorder, eotora_obs::SPAN_QUEUE_UPDATE);
        let queue_after = self.queue.update(outcome.constraint_excess);
        update_span.finish();
        if recorder.is_enabled() {
            recorder.record(&TraceEvent::QueueUpdate {
                slot,
                before: queue_before,
                after: queue_after,
                excess: outcome.constraint_excess,
            });
        }
        self.objective_avg.push(outcome.objective);
        self.excess_avg.push(outcome.constraint_excess);
        self.slots += 1;
        DppStep { slot, queue_before, queue_after, outcome }
    }

    /// Runs the P2 solve for a *predicted* next-slot state on cloned solver
    /// state (RNG + workspace), leaving the controller untouched: no queue
    /// update, no averages, no slot advance. The clones absorb exactly the
    /// mutations a plain [`EotoraDpp::step_with`] on `predicted` would have
    /// made, so if the prediction turns out exact,
    /// [`EotoraDpp::adopt_staged`] can install them and the trajectory is
    /// bit-identical to never having speculated.
    ///
    /// Must be called *between* slots (after the previous step, before the
    /// next observation): the queue backlog and slot counter it reads are
    /// then the ones the next solve would see.
    pub(crate) fn stage_speculative(
        &mut self,
        predicted: &SystemState,
    ) -> (P2Solution, Pcg32, SlotWorkspace) {
        let mut rng = self.solver.rng.clone();
        let mut workspace = self.solver.workspace.clone();
        // NoopRecorder: the staged solve's spans/counters would otherwise
        // land in the *next* slot's metrics bucket under the caller's
        // recorder; the speculation layer times the whole stage instead.
        let sol = solve_p2_in(
            &self.solver.system,
            predicted,
            self.config.v,
            self.queue.backlog(),
            &self.solver.bdma,
            self.solver.p2a.as_mut(),
            &mut rng,
            self.slots,
            &NoopRecorder,
            &mut workspace,
        );
        (sol, rng, workspace)
    }

    /// Adopts a staged speculative solve whose predicted state matched the
    /// observed `state` exactly: installs the staged RNG/workspace clones,
    /// recovers the Lemma 1 allocation against the observed state, and
    /// runs the standard slot tail. Equivalent, bit for bit, to having
    /// called [`EotoraDpp::step_with`] on `state` — the solve just ran
    /// earlier, off the critical path.
    pub(crate) fn adopt_staged(
        &mut self,
        state: &SystemState,
        staged: &P2Solution,
        rng: Pcg32,
        workspace: SlotWorkspace,
        recorder: &dyn Recorder,
    ) -> DppStep<SlotDecision> {
        let slot = self.slots;
        let queue_before = self.queue.backlog();
        self.solver.rng = rng;
        self.solver.workspace.adopt_from(workspace);
        let decision =
            optimal_allocation(&self.solver.system, state, &staged.assignments, &staged.freqs_hz);
        debug_assert!(decision.validate(&self.solver.system).is_ok());
        let outcome = SlotOutcome {
            decision,
            objective: staged.latency,
            constraint_excess: staged.energy_cost - self.solver.system.budget_per_slot(),
        };
        self.finish_slot(slot, queue_before, outcome, recorder)
    }

    /// Runs a normal slot solve warm-seeded from a near-miss staged
    /// profile: the staged assignments are translated back to strategy
    /// choices against the cached game, retained as the warm incumbent,
    /// and the solve runs under [`StartPolicy::Warm`] (temporarily forced
    /// if the configured policy is `Cold`). Returns the step plus how many
    /// assignments the repair moved off the speculated profile, or `None`
    /// if the staged profile cannot seed this game (no cached problem yet,
    /// or an assignment is infeasible under it) — the caller falls back to
    /// the plain path.
    pub(crate) fn step_warm_seeded(
        &mut self,
        state: &SystemState,
        staged: &P2Solution,
        recorder: &dyn Recorder,
    ) -> Option<(DppStep<SlotDecision>, u64)> {
        let choices =
            self.solver.workspace.problem()?.choices_from_assignments(&staged.assignments)?;
        self.solver.workspace.retain_solution(&choices, &staged.freqs_hz);
        let saved = self.solver.bdma.start;
        if saved == StartPolicy::Cold {
            self.solver.bdma.start = StartPolicy::Warm;
        }
        let step = self.step_with(state, recorder);
        self.solver.bdma.start = saved;
        let moves = step
            .outcome
            .decision
            .assignments
            .iter()
            .zip(&staged.assignments)
            .filter(|(a, b)| a != b)
            .count() as u64;
        Some((step, moves))
    }

    /// Executes one slot through the fault-tolerant path (see
    /// [`crate::robust`]): `mask` excludes failed components from the
    /// solve, `robust.deadline` bounds the slot's wall-clock with a
    /// checkpointed incumbent, and the virtual queue is charged only for
    /// energy actually spent (down servers draw nothing). This path never
    /// panics on degraded inputs: a solve that cannot even seed an
    /// incumbent (corrupt state that bypassed sanitization) falls back to
    /// the topology-only lifeboat decision, and a failed Lemma 1
    /// allocation falls back to equal shares.
    ///
    /// Callers should sanitize observations first
    /// ([`crate::sanitize::StateSanitizer`]); the fallbacks here are the
    /// last line of defense, not the intended recovery path.
    pub fn step_robust(
        &mut self,
        state: &SystemState,
        mask: &AvailabilityMask,
        robust: &RobustConfig,
        recorder: &dyn Recorder,
    ) -> (DppStep<SlotDecision>, RobustReport) {
        let slot = self.slots;
        let queue_before = self.queue.backlog();
        let down = mask.down_server_flags(self.solver.system.topology().num_servers());
        let report = solve_p2_robust(
            &self.solver.system,
            state,
            self.config.v,
            queue_before,
            mask,
            robust,
            &mut self.solver.workspace,
            slot,
            recorder,
        )
        .unwrap_or_else(|_| {
            // Escalation past the first rung: record it so live telemetry
            // can trip a postmortem dump at the moment of failure.
            recorder.add(eotora_obs::COUNTER_ROBUST_SOLVE_ERRORS, 1);
            recorder.add(eotora_obs::COUNTER_ROBUST_LIFEBOAT_DECISIONS, 1);
            crate::robust::lifeboat_report(
                &self.solver.system,
                state,
                self.config.v,
                queue_before,
                &down,
            )
        });
        let system = &self.solver.system;
        let decision = try_optimal_allocation(
            system,
            state,
            &report.solution.assignments,
            &report.solution.freqs_hz,
        )
        .unwrap_or_else(|_| {
            recorder.add(eotora_obs::COUNTER_ROBUST_EQUAL_SHARE_FALLBACKS, 1);
            equal_share_decision(system, &report.solution.assignments, &report.solution.freqs_hz)
        });
        debug_assert!(decision.validate(system).is_ok());
        let excess = report.solution.energy_cost - system.budget_per_slot();
        let update_span = SpanGuard::new(recorder, eotora_obs::SPAN_QUEUE_UPDATE);
        let queue_after = self.queue.update(excess);
        update_span.finish();
        if recorder.is_enabled() {
            recorder.record(&TraceEvent::QueueUpdate {
                slot,
                before: queue_before,
                after: queue_after,
                excess,
            });
        }
        self.objective_avg.push(report.solution.latency);
        self.excess_avg.push(excess);
        self.slots += 1;
        let outcome =
            SlotOutcome { decision, objective: report.solution.latency, constraint_excess: excess };
        (DppStep { slot, queue_before, queue_after, outcome }, report)
    }

    /// Current virtual-queue backlog `Q(t)`.
    pub fn queue_backlog(&self) -> f64 {
        self.queue.backlog()
    }

    /// Running time-average latency `(1/T) Σ T_t`.
    pub fn average_latency(&self) -> f64 {
        self.objective_avg.mean()
    }

    /// Running time-average constraint excess `(1/T) Σ (C_t − C̄)`.
    pub fn average_excess(&self) -> f64 {
        self.excess_avg.mean()
    }

    /// Running time-average energy cost `(1/T) Σ C_t`.
    pub fn average_cost(&self) -> f64 {
        self.average_excess() + self.system().budget_per_slot()
    }

    /// Slots executed so far.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Snapshots everything needed to resume this controller after a
    /// restart: queue, averages, slot count, and the solver's RNG stream.
    pub fn checkpoint(&self) -> DppCheckpoint {
        DppCheckpoint {
            controller: ControllerCheckpoint {
                queue: self.queue.backlog(),
                slots: self.slots,
                objective_avg: self.objective_avg,
                excess_avg: self.excess_avg,
            },
            rng: self.solver.rng.clone(),
            config: self.config,
        }
    }

    /// Rebuilds a controller from a checkpoint. Feeding it the same state
    /// stream from the checkpointed slot onward reproduces the uninterrupted
    /// run exactly (asserted in tests).
    pub fn resume(system: MecSystem, checkpoint: &DppCheckpoint) -> Self {
        let mut dpp = Self::new(system, checkpoint.config);
        dpp.queue = VirtualQueue::new(checkpoint.controller.queue);
        dpp.slots = checkpoint.controller.slots;
        dpp.objective_avg = checkpoint.controller.objective_avg;
        dpp.excess_avg = checkpoint.controller.excess_avg;
        dpp.solver.rng = checkpoint.rng.clone();
        dpp
    }

    /// Snapshots the *full* resumable controller state: the
    /// [`DppCheckpoint`] plus the warm-start workspace. Unlike
    /// [`EotoraDpp::checkpoint`], resuming from this reproduces warm-start
    /// ([`StartPolicy::Warm`]) trajectories bit-identically too.
    pub fn checkpoint_full(&self) -> crate::checkpoint::ControllerState {
        crate::checkpoint::ControllerState {
            dpp: self.checkpoint(),
            workspace: self.solver.workspace.snapshot(),
        }
    }

    /// Rebuilds a controller from a full checkpoint (see
    /// [`EotoraDpp::checkpoint_full`]).
    pub fn resume_full(system: MecSystem, state: &crate::checkpoint::ControllerState) -> Self {
        let mut dpp = Self::resume(system, &state.dpp);
        dpp.solver.workspace.restore(&state.workspace);
        dpp
    }
}

/// Serializable resume point for [`EotoraDpp`] (see
/// [`EotoraDpp::checkpoint`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DppCheckpoint {
    /// Queue/averages/slot snapshot.
    pub controller: ControllerCheckpoint,
    /// Solver RNG stream position.
    pub rng: Pcg32,
    /// The configuration of the checkpointed controller.
    pub config: DppConfig,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};

    fn run(v: f64, solver: SolverKind, slots: u64, devices: usize) -> EotoraDpp {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), 7);
        let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 7);
        let mut dpp =
            EotoraDpp::new(system, DppConfig { v, solver, bdma_rounds: 2, ..Default::default() });
        for t in 0..slots {
            let beta = states.observe(t, dpp.system().topology());
            let step = dpp.step(&beta);
            assert!(step.queue_after >= 0.0);
            assert!(step.outcome.objective > 0.0);
        }
        dpp
    }

    #[test]
    fn queue_rises_then_stabilizes() {
        let dpp = run(100.0, SolverKind::Cgba { lambda: 0.0 }, 60, 15);
        assert_eq!(dpp.slots(), 60);
        // After 60 hourly slots the queue should be finite and bounded.
        assert!(dpp.queue_backlog() < 1e4);
    }

    #[test]
    fn budget_respected_on_time_average() {
        let dpp = run(50.0, SolverKind::Cgba { lambda: 0.0 }, 120, 15);
        // Time-average excess converges toward ≤ 0; allow the O(V/T)
        // transient at this horizon.
        assert!(dpp.average_excess() < 0.12, "excess {}", dpp.average_excess());
        assert!(dpp.average_cost() > 0.0);
    }

    #[test]
    fn larger_v_gives_lower_latency() {
        let lo = run(5.0, SolverKind::Cgba { lambda: 0.0 }, 80, 15);
        let hi = run(500.0, SolverKind::Cgba { lambda: 0.0 }, 80, 15);
        assert!(
            hi.average_latency() <= lo.average_latency() + 1e-9,
            "V=500 latency {} vs V=5 latency {}",
            hi.average_latency(),
            lo.average_latency()
        );
    }

    #[test]
    fn bdma_beats_ropt_based_dpp() {
        let bdma = run(100.0, SolverKind::Cgba { lambda: 0.0 }, 40, 20);
        let ropt = run(100.0, SolverKind::Ropt, 40, 20);
        assert!(bdma.average_latency() < ropt.average_latency());
    }

    #[test]
    fn decisions_are_always_feasible() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(12), 8);
        let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 8);
        let mut dpp = EotoraDpp::new(system, DppConfig::default());
        for t in 0..10 {
            let beta = states.observe(t, dpp.system().topology());
            let step = dpp.step(&beta);
            step.outcome.decision.validate(dpp.system()).unwrap();
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let system = MecSystem::random(&SystemConfig::paper_defaults(10), 9);
            let mut states =
                StateProvider::paper(system.topology(), &PaperStateConfig::default(), 9);
            let mut dpp = EotoraDpp::new(system, DppConfig { seed: 42, ..Default::default() });
            let mut latencies = Vec::new();
            for t in 0..10 {
                let beta = states.observe(t, dpp.system().topology());
                latencies.push(dpp.step(&beta).outcome.objective);
            }
            latencies
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn checkpoint_resume_reproduces_uninterrupted_run() {
        let mk_system = || MecSystem::random(&SystemConfig::paper_defaults(8), 10);
        let config = DppConfig { bdma_rounds: 2, seed: 5, ..Default::default() };

        // Continuous 16-slot run.
        let mut states =
            StateProvider::paper(mk_system().topology(), &PaperStateConfig::default(), 10);
        let mut continuous = EotoraDpp::new(mk_system(), config);
        let mut reference = Vec::new();
        for t in 0..16 {
            let beta = states.observe(t, continuous.system().topology());
            reference.push(continuous.step(&beta).outcome.objective);
        }

        // 8 slots, serialize checkpoint, resume, 8 more.
        let mut states =
            StateProvider::paper(mk_system().topology(), &PaperStateConfig::default(), 10);
        let mut first = EotoraDpp::new(mk_system(), config);
        let mut observed = Vec::new();
        for t in 0..8 {
            let beta = states.observe(t, first.system().topology());
            observed.push(first.step(&beta).outcome.objective);
        }
        let json = serde_json::to_string(&first.checkpoint()).unwrap();
        let cp: DppCheckpoint = serde_json::from_str(&json).unwrap();
        let mut resumed = EotoraDpp::resume(mk_system(), &cp);
        for t in 8..16 {
            let beta = states.observe(t, resumed.system().topology());
            observed.push(resumed.step(&beta).outcome.objective);
        }
        assert_eq!(observed, reference);
        assert_eq!(resumed.slots(), 16);
    }

    #[test]
    fn step_with_emits_spans_events_and_counters() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(8), 11);
        let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 11);
        let mut dpp = EotoraDpp::new(system, DppConfig { bdma_rounds: 2, ..Default::default() });
        let rec = eotora_obs::MetricsRecorder::new();
        for t in 0..4 {
            let beta = states.observe(t, dpp.system().topology());
            dpp.step_with(&beta, &rec);
        }
        // 4 slots × 2 BDMA rounds each.
        assert_eq!(rec.span_count(eotora_obs::SPAN_P2A), 8);
        assert_eq!(rec.span_count(eotora_obs::SPAN_P2B), 8);
        assert_eq!(rec.span_count(eotora_obs::SPAN_QUEUE_UPDATE), 4);
        assert_eq!(rec.counter(eotora_obs::COUNTER_BDMA_ROUNDS), 8);
        assert!(rec.counter(eotora_obs::COUNTER_BDMA_ACCEPTED) >= 4);
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        let mk = |recorded: bool| {
            let system = MecSystem::random(&SystemConfig::paper_defaults(8), 12);
            let mut states =
                StateProvider::paper(system.topology(), &PaperStateConfig::default(), 12);
            let mut dpp = EotoraDpp::new(system, DppConfig { seed: 3, ..Default::default() });
            let rec = eotora_obs::MetricsRecorder::new();
            let mut out = Vec::new();
            for t in 0..6 {
                let beta = states.observe(t, dpp.system().topology());
                let step = if recorded { dpp.step_with(&beta, &rec) } else { dpp.step(&beta) };
                out.push((step.outcome.objective, step.queue_after));
            }
            out
        };
        assert_eq!(mk(true), mk(false));
    }

    #[test]
    fn robust_steps_stay_feasible_through_a_crash_window() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(12), 21);
        let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 21);
        let mut dpp = EotoraDpp::new(system, DppConfig { bdma_rounds: 2, ..Default::default() });
        let robust = crate::robust::RobustConfig { rounds: 2, ..Default::default() };
        for t in 0..12 {
            let beta = states.observe(t, dpp.system().topology());
            let mask = if (4..8).contains(&t) {
                AvailabilityMask {
                    down_servers: vec![0, 3],
                    down_stations: vec![],
                    severed_links: vec![],
                }
            } else {
                AvailabilityMask::default()
            };
            let (step, report) = dpp.step_robust(&beta, &mask, &robust, &NoopRecorder);
            step.outcome.decision.validate(dpp.system()).unwrap();
            assert!(step.queue_after >= 0.0);
            if (4..8).contains(&t) {
                assert!(report.masked_resources >= 2);
                for a in &step.outcome.decision.assignments {
                    assert!(a.server.index() != 0 && a.server.index() != 3);
                }
            }
        }
        assert_eq!(dpp.slots(), 12);
    }

    #[test]
    fn robust_queue_charges_only_masked_energy() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(10), 22);
        let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 22);
        let mut dpp = EotoraDpp::new(system, DppConfig::default());
        let beta = states.observe(0, dpp.system().topology());
        let mask = AvailabilityMask {
            down_servers: vec![2],
            down_stations: vec![],
            severed_links: vec![],
        };
        let (step, report) =
            dpp.step_robust(&beta, &mask, &crate::robust::RobustConfig::default(), &NoopRecorder);
        let down = mask.down_server_flags(dpp.system().topology().num_servers());
        let masked_cost =
            dpp.system().energy_cost_masked(beta.price_per_kwh, &report.solution.freqs_hz, &down);
        let expected = (masked_cost - dpp.system().budget_per_slot()).max(0.0);
        assert!((step.queue_after - expected).abs() < 1e-12);
    }

    #[test]
    fn solver_names_match_paper_legends() {
        assert_eq!(SolverKind::Cgba { lambda: 0.0 }.name(), "BDMA-based DPP");
        assert_eq!(
            SolverKind::ShardedCgba { lambda: 0.0, shards: 0 }.name(),
            "Sharded-BDMA-based DPP"
        );
        assert_eq!(SolverKind::Ropt.name(), "ROPT-based DPP");
        assert_eq!(SolverKind::Greedy.name(), "Greedy-based DPP");
        assert_eq!(SolverKind::Mcba { iterations: 100 }.name(), "MCBA-based DPP");
        assert_eq!(SolverKind::Exact { node_budget: 10 }.name(), "OPT-based DPP");
    }
}
