//! Lemma 1: closed-form optimal resource allocation `(Φ*, Ψ*)`.
//!
//! Given the discrete assignment `(x_t, y_t)` and frequencies `Ω_t`, the
//! REAL subproblem — minimize latency over the bandwidth and compute shares —
//! is convex, and its KKT conditions give square-root-proportional shares:
//!
//! ```text
//! φ*_{i,n}  = √(f_i/σ_{i,n}) / Σ_{j→n} √(f_j/σ_{j,n})      (15)
//! ψ*A_{i,k} = √(d_i/h_{i,k}) / Σ_{j→k} √(d_j/h_{j,k})      (16)
//! ψ*F_{i,k} = √(d_i/h^F_k)   / Σ_{j→k} √(d_j/h^F_k)        (17)
//! ```
//!
//! (We use `h_{j,k}` inside the sums of (16) — the paper's `h_{i,k}` there is
//! a typo; only the corrected form reproduces eq. (19) on substitution, which
//! the latency tests verify.)

use eotora_states::SystemState;

use crate::decision::{Assignment, SlotDecision};
use crate::error::SolveError;
use crate::system::MecSystem;

/// Computes the Lemma 1 allocation and packages the full feasible
/// [`SlotDecision`] for the given assignment and frequencies.
///
/// Every returned share is in `(0, 1]`, and shares sum to exactly 1 on every
/// resource that serves at least one device, so the result always passes
/// [`SlotDecision::validate`].
///
/// # Panics
///
/// Panics if the argument dimensions disagree with the system or the state
/// contains non-finite entries (the fault-tolerant path uses
/// [`try_optimal_allocation`] instead and recovers).
pub fn optimal_allocation(
    system: &MecSystem,
    state: &SystemState,
    assignments: &[Assignment],
    freqs_hz: &[f64],
) -> SlotDecision {
    let topo = system.topology();
    assert_eq!(assignments.len(), topo.num_devices(), "one assignment per device");
    assert_eq!(freqs_hz.len(), topo.num_servers(), "one frequency per server");
    match try_optimal_allocation(system, state, assignments, freqs_hz) {
        Ok(decision) => decision,
        Err(e) => panic!("optimal_allocation on malformed input: {e}"),
    }
}

/// The fallible form of [`optimal_allocation`]: instead of panicking on
/// mis-shaped inputs or corrupt state, returns a typed [`SolveError`] so the
/// fault-tolerant path can fall back down the degradation ladder. On valid
/// input the result is bit-identical to [`optimal_allocation`] (it computes
/// the exact same expressions).
pub fn try_optimal_allocation(
    system: &MecSystem,
    state: &SystemState,
    assignments: &[Assignment],
    freqs_hz: &[f64],
) -> Result<SlotDecision, SolveError> {
    let topo = system.topology();
    let shape = |context: &'static str, expected: usize, actual: usize| {
        if expected == actual {
            Ok(())
        } else {
            Err(SolveError::ShapeMismatch { context, expected, actual })
        }
    };
    shape("assignments", topo.num_devices(), assignments.len())?;
    shape("freqs_hz", topo.num_servers(), freqs_hz.len())?;
    shape("task_cycles", topo.num_devices(), state.task_cycles.len())?;
    shape("data_bits", topo.num_devices(), state.data_bits.len())?;
    shape("spectral_efficiency", topo.num_devices(), state.spectral_efficiency.len())?;
    for row in &state.spectral_efficiency {
        shape("spectral_efficiency row", topo.num_base_stations(), row.len())?;
    }
    shape("fronthaul_efficiency", topo.num_base_stations(), state.fronthaul_efficiency.len())?;
    for (i, a) in assignments.iter().enumerate() {
        if a.server.index() >= topo.num_servers() {
            return Err(SolveError::ShapeMismatch {
                context: "assignment server index",
                expected: topo.num_servers(),
                actual: a.server.index(),
            });
        }
        if a.base_station.index() >= topo.num_base_stations() {
            return Err(SolveError::ShapeMismatch {
                context: "assignment base-station index",
                expected: topo.num_base_stations(),
                actual: a.base_station.index(),
            });
        }
        let _ = i;
    }

    // Denominators: Σ_j √(·) per resource.
    let mut compute_denom = vec![0.0; topo.num_servers()];
    let mut access_denom = vec![0.0; topo.num_base_stations()];
    let mut fronthaul_denom = vec![0.0; topo.num_base_stations()];

    let compute_root = |i: usize, a: &Assignment| {
        (state.task_cycles[i] / system.suitability(eotora_topology::DeviceId(i), a.server)).sqrt()
    };
    let access_root = |i: usize, a: &Assignment| {
        (state.data_bits[i] / state.spectral_efficiency[i][a.base_station.index()]).sqrt()
    };
    let fronthaul_root = |i: usize, a: &Assignment| {
        (state.data_bits[i] / state.fronthaul_efficiency[a.base_station.index()]).sqrt()
    };

    for (i, a) in assignments.iter().enumerate() {
        compute_denom[a.server.index()] += compute_root(i, a);
        access_denom[a.base_station.index()] += access_root(i, a);
        fronthaul_denom[a.base_station.index()] += fronthaul_root(i, a);
    }

    let mut access_share = Vec::with_capacity(assignments.len());
    let mut fronthaul_share = Vec::with_capacity(assignments.len());
    let mut compute_share = Vec::with_capacity(assignments.len());
    let checked = |share: f64, context: &'static str, i: usize| {
        // A corrupt state entry (NaN, zero, negative) surfaces here as a
        // non-finite or non-positive share — the division by the √-sum
        // denominator is the first place it becomes undeniable.
        if share.is_finite() && share > 0.0 {
            Ok(share)
        } else {
            Err(SolveError::NonFinite { context, index: i })
        }
    };
    for (i, a) in assignments.iter().enumerate() {
        compute_share.push(checked(
            compute_root(i, a) / compute_denom[a.server.index()],
            "compute_share",
            i,
        )?);
        access_share.push(checked(
            access_root(i, a) / access_denom[a.base_station.index()],
            "access_share",
            i,
        )?);
        fronthaul_share.push(checked(
            fronthaul_root(i, a) / fronthaul_denom[a.base_station.index()],
            "fronthaul_share",
            i,
        )?);
    }

    Ok(SlotDecision {
        assignments: assignments.to_vec(),
        access_share,
        fronthaul_share,
        compute_share,
        frequencies_hz: freqs_hz.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::latency_under;
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};
    use eotora_topology::BaseStationId;
    use eotora_util::assert_close;
    use eotora_util::rng::Pcg32;

    fn setup(devices: usize, seed: u64) -> (MecSystem, SystemState, Vec<Assignment>) {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = provider.observe(0, system.topology());
        let topo = system.topology();
        let mut rng = Pcg32::seed(seed + 100);
        let assignments = (0..devices)
            .map(|_| {
                let k = BaseStationId(rng.below(topo.num_base_stations()));
                let server = *rng.pick(&topo.servers_reachable_from(k)).unwrap();
                Assignment { base_station: k, server }
            })
            .collect();
        (system, state, assignments)
    }

    #[test]
    fn shares_sum_to_one_per_active_resource() {
        let (system, state, assignments) = setup(20, 1);
        let d = optimal_allocation(&system, &state, &assignments, &system.max_frequencies());
        let topo = system.topology();
        let mut acc = vec![0.0; topo.num_base_stations()];
        let mut fh = vec![0.0; topo.num_base_stations()];
        let mut cmp = vec![0.0; topo.num_servers()];
        for (i, a) in d.assignments.iter().enumerate() {
            acc[a.base_station.index()] += d.access_share[i];
            fh[a.base_station.index()] += d.fronthaul_share[i];
            cmp[a.server.index()] += d.compute_share[i];
        }
        for k in 0..topo.num_base_stations() {
            if acc[k] > 0.0 {
                assert_close!(acc[k], 1.0, 1e-9);
                assert_close!(fh[k], 1.0, 1e-9);
            }
        }
        for &total in cmp.iter().take(topo.num_servers()) {
            if total > 0.0 {
                assert_close!(total, 1.0, 1e-9);
            }
        }
    }

    #[test]
    fn allocation_validates() {
        let (system, state, assignments) = setup(15, 2);
        let d = optimal_allocation(&system, &state, &assignments, &system.min_frequencies());
        d.validate(&system).unwrap();
    }

    #[test]
    fn heavier_tasks_get_larger_compute_shares() {
        // Among devices on the same server with equal suitability structure,
        // φ ∝ √(f/σ); check the monotonic relation empirically.
        let (system, state, assignments) = setup(25, 3);
        let d = optimal_allocation(&system, &state, &assignments, &system.max_frequencies());
        for n in system.topology().server_ids() {
            let on_server: Vec<usize> =
                (0..assignments.len()).filter(|&i| assignments[i].server == n).collect();
            for &i in &on_server {
                for &j in &on_server {
                    let wi =
                        state.task_cycles[i] / system.suitability(eotora_topology::DeviceId(i), n);
                    let wj =
                        state.task_cycles[j] / system.suitability(eotora_topology::DeviceId(j), n);
                    if wi > wj {
                        assert!(d.compute_share[i] >= d.compute_share[j]);
                    }
                }
            }
        }
    }

    #[test]
    fn lemma1_is_locally_optimal_against_perturbations() {
        // Moving mass ε between any two devices on the same resource must not
        // reduce latency (first-order optimality of the closed form).
        let (system, state, assignments) = setup(12, 4);
        let freqs = system.max_frequencies();
        let base = optimal_allocation(&system, &state, &assignments, &freqs);
        let base_latency = latency_under(&system, &state, &base).total();
        let eps = 1e-3;
        // Find two devices sharing a server.
        for i in 0..assignments.len() {
            for j in (i + 1)..assignments.len() {
                if assignments[i].server == assignments[j].server {
                    for (da, db) in [(eps, -eps), (-eps, eps)] {
                        let mut d = base.clone();
                        d.compute_share[i] += da;
                        d.compute_share[j] += db;
                        if d.compute_share[i] > 0.0 && d.compute_share[j] > 0.0 {
                            let l = latency_under(&system, &state, &d).total();
                            assert!(
                                l >= base_latency - 1e-9,
                                "perturbation improved latency: {l} < {base_latency}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn try_allocation_matches_panicking_path_bit_for_bit() {
        let (system, state, assignments) = setup(18, 6);
        let freqs = system.max_frequencies();
        let a = optimal_allocation(&system, &state, &assignments, &freqs);
        let b = try_optimal_allocation(&system, &state, &assignments, &freqs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn try_allocation_reports_shape_mismatch() {
        let (system, state, assignments) = setup(10, 7);
        let err =
            try_optimal_allocation(&system, &state, &assignments[..5], &system.max_frequencies())
                .unwrap_err();
        assert!(matches!(
            err,
            crate::error::SolveError::ShapeMismatch { context: "assignments", .. }
        ));
        let err = try_optimal_allocation(&system, &state, &assignments, &[1.0e9]).unwrap_err();
        assert!(matches!(err, crate::error::SolveError::ShapeMismatch { context: "freqs_hz", .. }));
    }

    #[test]
    fn try_allocation_reports_corrupt_state_instead_of_nan_shares() {
        let (system, mut state, assignments) = setup(10, 8);
        state.task_cycles[3] = f64::NAN;
        let err = try_optimal_allocation(&system, &state, &assignments, &system.max_frequencies())
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::SolveError::NonFinite { context: "compute_share", .. }
        ));
    }

    #[test]
    fn single_device_gets_everything() {
        let (system, state, _) = setup(1, 5);
        let topo = system.topology();
        let k = BaseStationId(0);
        let n = topo.servers_reachable_from(k)[0];
        let assignments = vec![Assignment { base_station: k, server: n }];
        let d = optimal_allocation(&system, &state, &assignments, &system.max_frequencies());
        assert_close!(d.access_share[0], 1.0, 1e-12);
        assert_close!(d.fronthaul_share[0], 1.0, 1e-12);
        assert_close!(d.compute_share[0], 1.0, 1e-12);
    }
}
