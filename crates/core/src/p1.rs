//! P1 — the communication-only special case behind Theorem 1.
//!
//! The paper proves EOTO NP-hard by restriction: one slot, zero task sizes,
//! one cluster, infinite fronthaul — leaving only the access-link assignment
//!
//! ```text
//! min_x  Σ_k (1/W^A_k) (Σ_i x_{i,k} √(d_i/h_{i,k}))²
//! s.t.   each device picks exactly one base station.
//! ```
//!
//! This is a weighted quadratic load-balancing problem; with two identical
//! stations and `h_{i,k} ≡ 1` it *is* PARTITION (split weights `√d_i` into
//! two sets with equal sums), which is the essence of the hardness proof.
//! This module makes the special case a first-class object:
//!
//! * [`P1Instance`] — the data, with evaluation and a congestion-game view
//!   (so CGBA applies verbatim),
//! * [`P1Instance::partition_family`] — the PARTITION-shaped instances used
//!   as a hardness witness: exact search cost grows exponentially while CGBA
//!   stays polynomial (exercised in the tests and benches),
//! * exact solving via the same branch-and-bound as P2-A.

use eotora_game::{cgba, CgbaConfig, CongestionGame};
use eotora_optim::branch_bound::{BnbOutcome, BranchAndBound, SequentialProblem};
use eotora_util::rng::Pcg32;

/// A P1 instance: `I` devices, `K` stations, per-station bandwidth and
/// per-pair channel quality.
#[derive(Debug, Clone, PartialEq)]
pub struct P1Instance {
    /// Access bandwidths `W^A_k` in Hz.
    pub bandwidth_hz: Vec<f64>,
    /// Data lengths `d_i` in bits.
    pub data_bits: Vec<f64>,
    /// Spectral efficiencies `h[i][k]` in bit/s/Hz.
    pub efficiency: Vec<Vec<f64>>,
}

impl P1Instance {
    /// Creates an instance, validating dimensions and positivity.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is empty/mismatched or a value non-positive.
    pub fn new(bandwidth_hz: Vec<f64>, data_bits: Vec<f64>, efficiency: Vec<Vec<f64>>) -> Self {
        assert!(!bandwidth_hz.is_empty() && !data_bits.is_empty(), "empty instance");
        assert_eq!(efficiency.len(), data_bits.len(), "one efficiency row per device");
        for row in &efficiency {
            assert_eq!(row.len(), bandwidth_hz.len(), "one efficiency per station");
            assert!(row.iter().all(|&h| h > 0.0), "efficiencies must be positive");
        }
        assert!(bandwidth_hz.iter().all(|&w| w > 0.0), "bandwidths must be positive");
        assert!(data_bits.iter().all(|&d| d > 0.0), "data lengths must be positive");
        Self { bandwidth_hz, data_bits, efficiency }
    }

    /// Number of devices `I`.
    pub fn num_devices(&self) -> usize {
        self.data_bits.len()
    }

    /// Number of stations `K`.
    pub fn num_stations(&self) -> usize {
        self.bandwidth_hz.len()
    }

    /// The per-pair load weight `√(d_i / h_{i,k})`.
    pub fn weight(&self, i: usize, k: usize) -> f64 {
        (self.data_bits[i] / self.efficiency[i][k]).sqrt()
    }

    /// Objective value of an assignment (one station index per device).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` has the wrong length or an index out of range.
    pub fn objective(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.num_devices(), "one station per device");
        let mut loads = vec![0.0; self.num_stations()];
        for (i, &k) in assignment.iter().enumerate() {
            loads[k] += self.weight(i, k);
        }
        loads.iter().zip(&self.bandwidth_hz).map(|(&l, &w)| l * l / w).sum()
    }

    /// The congestion-game view (stations are the only resources), enabling
    /// CGBA and all of `eotora-game` to run on P1 directly.
    pub fn as_game(&self) -> CongestionGame {
        let mut game = CongestionGame::new(self.bandwidth_hz.iter().map(|&w| 1.0 / w).collect());
        for i in 0..self.num_devices() {
            let strategies =
                (0..self.num_stations()).map(|k| vec![(k, self.weight(i, k))]).collect();
            game.add_player(strategies);
        }
        game
    }

    /// Solves with CGBA(0) from a random start; returns `(assignment, cost)`.
    pub fn solve_cgba(&self, rng: &mut Pcg32) -> (Vec<usize>, f64) {
        let game = self.as_game();
        let report = cgba(&game, &CgbaConfig::default(), rng);
        let cost = report.total_cost;
        (report.profile.choices().to_vec(), cost)
    }

    /// Exact solve by branch-and-bound; `(assignment, cost, proven)`.
    pub fn solve_exact(&self, node_budget: usize) -> (Vec<usize>, f64, bool) {
        let seq = P1Sequential { instance: self };
        let result = BranchAndBound::new().with_node_budget(node_budget).solve(&seq);
        let choices = result.best_choices.expect("P1 always feasible");
        (choices, result.best_cost, result.outcome == BnbOutcome::Optimal)
    }

    /// PARTITION-shaped hardness witnesses: two identical stations, unit
    /// efficiencies, and `n` integer-ish weights drawn from a narrow band so
    /// that many near-ties exist. The optimal split is (near-)balanced, but
    /// proving it requires exploring exponentially many subsets.
    pub fn partition_family(n: usize, rng: &mut Pcg32) -> Self {
        assert!(n >= 2, "need at least two devices");
        // d_i chosen so √d_i lands in [100, 110]: tight weights maximize ties.
        let data: Vec<f64> = (0..n).map(|_| rng.uniform_in(100.0, 110.0).powi(2)).collect();
        let eff = vec![vec![1.0, 1.0]; n];
        Self::new(vec![1.0, 1.0], data, eff)
    }
}

struct P1Sequential<'a> {
    instance: &'a P1Instance,
}

impl SequentialProblem for P1Sequential<'_> {
    type State = (Vec<f64>, f64); // (loads, cost)

    fn num_stages(&self) -> usize {
        self.instance.num_devices()
    }

    fn num_choices(&self, _stage: usize) -> usize {
        self.instance.num_stations()
    }

    fn root_state(&self) -> Self::State {
        (vec![0.0; self.instance.num_stations()], 0.0)
    }

    fn apply(
        &self,
        state: &Self::State,
        stage: usize,
        choice: usize,
    ) -> Option<(Self::State, f64)> {
        let (loads, cost) = state;
        let w = self.instance.weight(stage, choice);
        let inv_bw = 1.0 / self.instance.bandwidth_hz[choice];
        let delta = inv_bw * (2.0 * loads[choice] * w + w * w);
        let mut nl = loads.clone();
        nl[choice] += w;
        let nc = cost + delta;
        Some(((nl, nc), nc))
    }

    fn completion_bound(&self, state: &Self::State, stage: usize) -> f64 {
        let (loads, _) = state;
        (stage..self.num_stages())
            .map(|i| {
                (0..self.instance.num_stations())
                    .map(|k| {
                        let w = self.instance.weight(i, k);
                        (2.0 * loads[k] * w + w * w) / self.instance.bandwidth_hz[k]
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_game::Profile;

    fn brute_force(p: &P1Instance) -> f64 {
        let (i, k) = (p.num_devices(), p.num_stations());
        let mut best = f64::INFINITY;
        for code in 0..k.pow(i as u32) {
            let mut c = code;
            let assignment: Vec<usize> = (0..i)
                .map(|_| {
                    let v = c % k;
                    c /= k;
                    v
                })
                .collect();
            best = best.min(p.objective(&assignment));
        }
        best
    }

    #[test]
    fn objective_matches_game_social_cost() {
        let mut rng = Pcg32::seed(1);
        let p = P1Instance::partition_family(6, &mut rng);
        let game = p.as_game();
        for _ in 0..20 {
            let assignment: Vec<usize> = (0..6).map(|_| rng.below(2)).collect();
            let via_game = Profile::from_choices(&game, assignment.clone()).total_cost(&game);
            assert!((via_game - p.objective(&assignment)).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_matches_brute_force_on_small_instances() {
        let mut rng = Pcg32::seed(2);
        for n in [4usize, 6, 8] {
            let p = P1Instance::partition_family(n, &mut rng);
            let (_, cost, proven) = p.solve_exact(1_000_000);
            assert!(proven);
            assert!((cost - brute_force(&p)).abs() < 1e-6 * cost);
        }
    }

    #[test]
    fn partition_optimum_is_nearly_balanced() {
        let mut rng = Pcg32::seed(3);
        let p = P1Instance::partition_family(10, &mut rng);
        let (assignment, _, proven) = p.solve_exact(5_000_000);
        assert!(proven);
        let mut loads = [0.0; 2];
        for (i, &k) in assignment.iter().enumerate() {
            loads[k] += p.weight(i, k);
        }
        let imbalance = (loads[0] - loads[1]).abs() / (loads[0] + loads[1]);
        assert!(imbalance < 0.05, "optimal split should be near-balanced: {loads:?}");
    }

    #[test]
    fn cgba_stays_within_theorem_bound_on_p1() {
        let mut rng = Pcg32::seed(4);
        for n in [6usize, 8, 10] {
            let p = P1Instance::partition_family(n, &mut rng);
            let (_, opt, proven) = p.solve_exact(5_000_000);
            assert!(proven);
            let (_, cgba_cost) = p.solve_cgba(&mut rng);
            assert!(cgba_cost <= 2.62 * opt + 1e-9, "n={n}: {cgba_cost} vs opt {opt}");
        }
    }

    #[test]
    fn hardness_witness_node_growth() {
        // The B&B effort on partition instances grows rapidly with n while
        // CGBA converges in a handful of moves — the practical face of
        // Theorem 1. (Kept small: the point is the *trend*.)
        let mut rng = Pcg32::seed(5);
        let nodes = |n: usize, rng: &mut Pcg32| {
            let p = P1Instance::partition_family(n, rng);
            let seq = P1Sequential { instance: &p };
            let r = BranchAndBound::new().solve(&seq);
            assert_eq!(r.outcome, BnbOutcome::Optimal);
            r.nodes_expanded
        };
        let small = nodes(6, &mut rng);
        let large = nodes(12, &mut rng);
        assert!(
            large > 4 * small,
            "exact effort should blow up: {small} nodes at n=6 vs {large} at n=12"
        );
    }

    #[test]
    fn heterogeneous_bandwidths_shift_load() {
        // A 4x-faster station should carry (weighted) more load at optimum.
        let p = P1Instance::new(vec![4.0, 1.0], vec![1.0; 8], vec![vec![1.0, 1.0]; 8]);
        let (assignment, _, proven) = p.solve_exact(1_000_000);
        assert!(proven);
        let fast = assignment.iter().filter(|&&k| k == 0).count();
        let slow = assignment.len() - fast;
        assert!(fast > slow, "fast station should carry more devices: {assignment:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_inputs() {
        P1Instance::new(vec![1.0], vec![0.0], vec![vec![1.0]]);
    }
}
