//! Serializable resume state for the full online controller.
//!
//! [`crate::dpp::DppCheckpoint`] (queue, averages, solver RNG) has existed
//! since the warm-start work, but it is not the whole story: under
//! [`crate::bdma::StartPolicy::Warm`] the controller's trajectory also
//! depends on the [`crate::workspace::SlotWorkspace`]'s retained incumbent
//! `(choices, Ω̄)` and probe-heat flag, and a fault-tolerant run further
//! depends on the [`crate::sanitize::StateSanitizer`]'s last-known-good
//! observation. This module collects the serializable snapshots of all of
//! them, so a killed process can resume *bit-identically* — the property
//! the durability layer (`eotora-durability` + `eotora-sim`) builds on and
//! the kill–resume chaos tests pin.
//!
//! The cached `P2aProblem` is deliberately *not* snapshotted: it is a pure
//! function of (system, state, frequencies) and is rebuilt on the first
//! resumed slot with identical numerics (the zero-rebuild engine's
//! refresh-equals-build invariant).

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use serde::{Deserialize, Serialize};

use crate::dpp::DppCheckpoint;
use crate::sanitize::{SanitizeDefaults, SanitizeLimits};
use eotora_states::SystemState;

/// Serializable image of a [`crate::workspace::SlotWorkspace`]'s cross-slot
/// state: the retained warm-start incumbent and the probe-heat flag. See
/// [`crate::workspace::SlotWorkspace::snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkspaceSnapshot {
    /// Retained previous-slot strategy choices (meaningful only when
    /// `has_retained_choices`).
    pub retained_choices: Vec<usize>,
    /// Whether a warm solve has retained choices yet (an empty retained
    /// vector is a legal retained value for a zero-device system, so the
    /// flag is stored explicitly).
    pub has_retained_choices: bool,
    /// Retained previous-slot frequencies `Ω̄` (empty = none).
    pub retained_freqs: Vec<f64>,
    /// Whether the previous slot's cold probe beat the warm chain.
    pub probe_hot: bool,
}

/// Serializable image of a [`crate::sanitize::StateSanitizer`]: limits,
/// cold-start defaults, the last-known-good observation, and the lifetime
/// substitution count. See [`crate::sanitize::StateSanitizer::snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SanitizerSnapshot {
    /// Plausibility limits in force.
    pub limits: SanitizeLimits,
    /// Cold-start fallback values in force.
    pub defaults: SanitizeDefaults,
    /// The last repaired observation (None before the first slot).
    pub last_good: Option<SystemState>,
    /// Substitutions made so far.
    pub total_substitutions: u64,
}

/// Everything the online controller needs to resume mid-run: the DPP
/// checkpoint (queue, slot count, averages, solver RNG, config) plus the
/// warm-start workspace. Produced by
/// [`crate::dpp::EotoraDpp::checkpoint_full`], consumed by
/// [`crate::dpp::EotoraDpp::resume_full`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerState {
    /// Queue / averages / slots / RNG / config.
    pub dpp: DppCheckpoint,
    /// Cross-slot warm-start state.
    pub workspace: WorkspaceSnapshot,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::sanitize::StateSanitizer;
    use crate::workspace::SlotWorkspace;

    #[test]
    fn workspace_snapshot_round_trips_through_serde() {
        let mut ws = SlotWorkspace::new();
        ws.retain_solution(&[2, 0, 1], &[1.5e9, 2.5e9]);
        ws.set_probe_hot(true);
        let snap = ws.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: WorkspaceSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let mut restored = SlotWorkspace::new();
        restored.restore(&back);
        assert_eq!(restored.retained_choices(), Some(&[2usize, 0, 1][..]));
        assert_eq!(restored.retained_freqs(), Some(&[1.5e9, 2.5e9][..]));
        assert!(restored.probe_hot());
    }

    #[test]
    fn empty_workspace_snapshot_restores_to_cold() {
        let snap = SlotWorkspace::new().snapshot();
        let mut restored = SlotWorkspace::new();
        restored.retain_solution(&[1], &[2e9]);
        restored.restore(&snap);
        assert!(restored.retained_choices().is_none());
        assert!(restored.retained_freqs().is_none());
        assert!(!restored.probe_hot());
    }

    #[test]
    fn sanitizer_snapshot_defaults_survive_serde() {
        let snap = StateSanitizer::new().snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: SanitizerSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.defaults, SanitizeDefaults::default());
        assert!(back.last_good.is_none());
    }
}
