//! Multi-budget DPP: one energy budget (and virtual queue) per server room.
//!
//! The paper's single constraint bounds the *fleet-wide* cost. Operators of
//! real edge sites often contract electricity per room, which needs one
//! time-average constraint per cluster `m`:
//!
//! ```text
//! lim (1/T) Σ_t E[C_{m,t}(Ω_t, p_t)] ≤ C̄_m      for every room m
//! ```
//!
//! The drift-plus-penalty machinery generalizes directly (this is the
//! extension hook listed in DESIGN.md): keep a queue `Q_m(t)` per room and
//! solve, each slot,
//!
//! ```text
//! min  V·T_t + Σ_m Q_m(t)·(C_{m,t} − C̄_m)
//! ```
//!
//! which stays **separable per server** in the frequency step — a server in
//! room `m` simply uses `Q_m` instead of the global `Q` — so BDMA carries
//! over unchanged apart from the bookkeeping, implemented here.

use eotora_lyapunov::MultiQueue;
use eotora_states::SystemState;
use eotora_util::rng::Pcg32;

use crate::allocation::optimal_allocation;
use crate::bdma::{CgbaSolver, P2aSolver};
use crate::decision::{Assignment, SlotDecision};
use crate::latency::optimal_latency;
use crate::p2a::P2aProblem;
use crate::system::MecSystem;
use eotora_optim::scalar::minimize_bisection;

/// Result of one multi-budget DPP step.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBudgetStep {
    /// The executed decision.
    pub decision: SlotDecision,
    /// Latency `T_t` this slot.
    pub latency: f64,
    /// Per-cluster energy cost `C_{m,t}` this slot, in dollars.
    pub cluster_costs: Vec<f64>,
    /// Queue backlogs `Q_m(t+1)` after the update.
    pub backlogs: Vec<f64>,
}

/// The per-room-budget online controller.
#[derive(Debug)]
pub struct MultiBudgetDpp {
    system: MecSystem,
    budgets: Vec<f64>,
    queues: MultiQueue,
    v: f64,
    bdma_rounds: usize,
    p2a: Box<dyn P2aSolver>,
    rng: Pcg32,
    latency_sum: f64,
    cost_sums: Vec<f64>,
    slots: u64,
}

impl MultiBudgetDpp {
    /// Creates a controller with one budget per cluster (in cluster-id
    /// order), CGBA(0) as the P2-A solver, and `z` BDMA rounds.
    ///
    /// # Panics
    ///
    /// Panics if `budgets.len()` differs from the cluster count, any budget
    /// is non-positive, or `v`/`bdma_rounds` are non-positive.
    pub fn new(
        system: MecSystem,
        budgets: Vec<f64>,
        v: f64,
        bdma_rounds: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(budgets.len(), system.topology().num_clusters(), "one budget per server room");
        assert!(budgets.iter().all(|&b| b > 0.0), "budgets must be positive");
        assert!(v > 0.0, "penalty weight must be positive");
        assert!(bdma_rounds > 0, "BDMA needs at least one round");
        let queues = MultiQueue::new(budgets.len());
        let cost_sums = vec![0.0; budgets.len()];
        Self {
            system,
            budgets,
            queues,
            v,
            bdma_rounds,
            p2a: Box::new(CgbaSolver::default()),
            rng: Pcg32::seed_stream(seed, 0x3B_D9),
            latency_sum: 0.0,
            cost_sums,
            slots: 0,
        }
    }

    /// The system under control.
    pub fn system(&self) -> &MecSystem {
        &self.system
    }

    /// Current backlogs `Q_m(t)`.
    pub fn backlogs(&self) -> Vec<f64> {
        self.queues.backlogs()
    }

    /// Running time-average latency.
    pub fn average_latency(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.latency_sum / self.slots as f64
        }
    }

    /// Running time-average cost per cluster.
    pub fn average_cluster_costs(&self) -> Vec<f64> {
        if self.slots == 0 {
            self.cost_sums.clone()
        } else {
            self.cost_sums.iter().map(|&c| c / self.slots as f64).collect()
        }
    }

    /// Per-cluster energy cost at the given frequencies and price.
    fn cluster_costs(&self, price: f64, freqs_hz: &[f64]) -> Vec<f64> {
        let topo = self.system.topology();
        let mut costs = vec![0.0; topo.num_clusters()];
        for n in topo.server_ids() {
            let watts = self.system.energy_model(n).power_watts(freqs_hz[n.index()]);
            costs[topo.server(n).cluster.index()] +=
                eotora_energy::energy_cost_dollars(price, watts, self.system.slot_hours());
        }
        costs
    }

    /// Frequency step: per-server bisection with the *owning room's* queue.
    fn solve_frequencies(&self, state: &SystemState, assignments: &[Assignment]) -> Vec<f64> {
        let topo = self.system.topology();
        let loads = crate::p2b::processing_loads(&self.system, state, assignments);
        let kwh = self.system.slot_hours() / 1000.0;
        let backlogs = self.queues.backlogs();
        topo.server_ids()
            .map(|n| {
                let srv = topo.server(n);
                let a_n = loads[n.index()];
                if a_n == 0.0 {
                    return srv.freq_min_hz;
                }
                let q_m = backlogs[srv.cluster.index()];
                let cost_w = q_m * state.price_per_kwh * kwh;
                let model = self.system.energy_model(n);
                let v = self.v;
                minimize_bisection(
                    |w| v * a_n / w + cost_w * model.power_watts(w),
                    |w| -v * a_n / (w * w) + cost_w * model.power_derivative(w),
                    srv.freq_min_hz,
                    srv.freq_max_hz,
                    1.0,
                    200,
                )
                .x
            })
            .collect()
    }

    /// Executes one slot of the multi-budget Algorithm 1.
    pub fn step(&mut self, state: &SystemState) -> MultiBudgetStep {
        // BDMA alternation with the per-cluster drift objective.
        let mut freqs = self.system.min_frequencies();
        let mut best: Option<(f64, Vec<Assignment>, Vec<f64>)> = None;
        for _ in 0..self.bdma_rounds {
            let p2a = P2aProblem::build(&self.system, state, &freqs);
            let choices = self.p2a.solve(&p2a, &mut self.rng);
            let assignments = p2a.assignments_from_choices(&choices);
            freqs = self.solve_frequencies(state, &assignments);
            let latency = optimal_latency(&self.system, state, &assignments, &freqs).total();
            let costs = self.cluster_costs(state.price_per_kwh, &freqs);
            let excesses: Vec<f64> =
                costs.iter().zip(&self.budgets).map(|(&c, &b)| c - b).collect();
            let objective = self.v * latency + self.queues.drift_weight(&excesses);
            if best.as_ref().is_none_or(|(obj, _, _)| objective < *obj) {
                best = Some((objective, assignments, freqs.clone()));
            }
        }
        let (_, assignments, freqs) = best.expect("at least one round ran");

        let latency = optimal_latency(&self.system, state, &assignments, &freqs).total();
        let cluster_costs = self.cluster_costs(state.price_per_kwh, &freqs);
        let excesses: Vec<f64> =
            cluster_costs.iter().zip(&self.budgets).map(|(&c, &b)| c - b).collect();
        self.queues.update(&excesses);
        self.latency_sum += latency;
        for (sum, &c) in self.cost_sums.iter_mut().zip(&cluster_costs) {
            *sum += c;
        }
        self.slots += 1;

        let decision = optimal_allocation(&self.system, state, &assignments, &freqs);
        MultiBudgetStep { decision, latency, cluster_costs, backlogs: self.queues.backlogs() }
    }
}

/// Splits a fleet-wide budget into per-cluster budgets proportional to each
/// room's maximum power draw — a sensible default for migrating from the
/// single-budget formulation.
pub fn proportional_budgets(system: &MecSystem, total: f64) -> Vec<f64> {
    let topo = system.topology();
    let max_freqs = system.max_frequencies();
    let mut room_power = vec![0.0; topo.num_clusters()];
    for n in topo.server_ids() {
        room_power[topo.server(n).cluster.index()] +=
            system.energy_model(n).power_watts(max_freqs[n.index()]);
    }
    let total_power: f64 = room_power.iter().sum();
    room_power.iter().map(|&p| total * p / total_power).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};

    fn setup(devices: usize, seed: u64) -> MecSystem {
        MecSystem::random(&SystemConfig::paper_defaults(devices), seed)
    }

    #[test]
    fn per_cluster_budgets_honored_on_average() {
        let sys = setup(12, 101);
        let budgets = proportional_budgets(&sys, 1.0);
        assert_eq!(budgets.len(), 2);
        let mut states = StateProvider::paper(sys.topology(), &PaperStateConfig::default(), 101);
        let mut ctl = MultiBudgetDpp::new(sys, budgets.clone(), 60.0, 1, 101);
        for t in 0..150 {
            let beta = states.observe(t, ctl.system().topology());
            let step = ctl.step(&beta);
            step.decision.validate(ctl.system()).unwrap();
        }
        for (avg, budget) in ctl.average_cluster_costs().iter().zip(&budgets) {
            assert!(
                avg <= &(budget * 1.12),
                "cluster average {avg} exceeds budget {budget} beyond the transient"
            );
        }
    }

    #[test]
    fn tight_room_throttles_only_that_room() {
        // Room 0 gets a starvation budget, room 1 a generous one: room 0's
        // queue must grow while room 1's stays near zero.
        let sys = setup(10, 102);
        let generous = proportional_budgets(&sys, 3.0);
        let budgets = vec![0.02, generous[1]];
        let mut states = StateProvider::paper(sys.topology(), &PaperStateConfig::default(), 102);
        let mut ctl = MultiBudgetDpp::new(sys, budgets, 60.0, 1, 102);
        for t in 0..48 {
            let beta = states.observe(t, ctl.system().topology());
            ctl.step(&beta);
        }
        let backlogs = ctl.backlogs();
        assert!(backlogs[0] > 1.0, "starved room queue should grow, got {backlogs:?}");
        assert!(backlogs[1] < backlogs[0] * 0.2, "generous room should stay low: {backlogs:?}");
    }

    #[test]
    fn proportional_budgets_sum_to_total() {
        let sys = setup(6, 103);
        let b = proportional_budgets(&sys, 2.5);
        assert!((b.iter().sum::<f64>() - 2.5).abs() < 1e-9);
        assert!(b.iter().all(|&x| x > 0.0));
    }

    #[test]
    #[should_panic(expected = "one budget per server room")]
    fn wrong_budget_count_panics() {
        let sys = setup(4, 104);
        MultiBudgetDpp::new(sys, vec![1.0], 10.0, 1, 0);
    }

    #[test]
    fn reduces_to_single_budget_behaviour_when_budgets_match() {
        // With both rooms given ample budgets the controller should run the
        // fleet fast (near the unconstrained latency), like single-queue DPP
        // with a slack budget.
        let sys = setup(10, 105);
        let budgets = proportional_budgets(&sys, 50.0);
        let mut states = StateProvider::paper(sys.topology(), &PaperStateConfig::default(), 105);
        let mut ctl = MultiBudgetDpp::new(sys, budgets, 100.0, 1, 105);
        let mut last = None;
        for t in 0..6 {
            let beta = states.observe(t, ctl.system().topology());
            last = Some(ctl.step(&beta));
        }
        let step = last.unwrap();
        // Queues never fill (budget slack), so clocks stay at max for
        // loaded servers: latency equals the max-frequency latency.
        assert!(step.backlogs.iter().all(|&q| q == 0.0));
    }
}
