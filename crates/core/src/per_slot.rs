//! A per-slot-budget controller — the natural alternative to DPP that
//! enforces `C_t ≤ C̄` at *every* slot instead of on time average.
//!
//! This is the ablation DESIGN.md calls "why time-averaging matters":
//! a per-slot constraint cannot shift energy spending into cheap-price
//! hours, so for the same budget it must run slower clocks during expensive
//! hours and ends up with strictly worse latency than DPP (verified in the
//! `ablation_per_slot` experiment and tests).
//!
//! Mechanically, each slot solves
//!
//! ```text
//! min_Ω  T_t(x̄, ȳ, Ω)   s.t.  C_t(Ω, p_t) ≤ C̄,  Ω ∈ [F^L, F^U]
//! ```
//!
//! by bisecting the Lagrange multiplier `μ ≥ 0` of the cost constraint: for
//! each candidate `μ`, the inner problem `min T_t + μ·C_t` is exactly a
//! P2-B instance (solved per server in closed form), and the attained cost
//! `C_t(μ)` is non-increasing in `μ`, so the smallest feasible `μ` is found
//! by bisection. The discrete `(x̄, ȳ)` comes from the same pluggable P2-A
//! solver the DPP controller uses.

use eotora_obs::{NoopRecorder, Recorder, SpanGuard};
use eotora_states::SystemState;
use eotora_util::rng::Pcg32;

use crate::allocation::optimal_allocation;
use crate::bdma::{CgbaSolver, P2aSolver, StartPolicy};
use crate::decision::SlotDecision;
use crate::p2b::solve_p2b;
use crate::system::MecSystem;
use crate::workspace::SlotWorkspace;

/// Result of one per-slot-budget step.
#[derive(Debug, Clone, PartialEq)]
pub struct PerSlotStep {
    /// The executed decision.
    pub decision: SlotDecision,
    /// Latency `T_t` this slot.
    pub latency: f64,
    /// Energy cost `C_t` this slot (always ≤ the budget, up to bisection
    /// tolerance, whenever the budget is attainable).
    pub energy_cost: f64,
    /// The Lagrange multiplier that enforced the budget (0 when slack).
    pub multiplier: f64,
}

/// The per-slot-budget controller.
#[derive(Debug)]
pub struct PerSlotController {
    system: MecSystem,
    p2a: Box<dyn P2aSolver>,
    rng: Pcg32,
    workspace: SlotWorkspace,
    start: StartPolicy,
    latency_sum: f64,
    cost_sum: f64,
    slots: u64,
}

impl PerSlotController {
    /// Creates a controller using CGBA(0) for the discrete subproblem.
    pub fn new(system: MecSystem, seed: u64) -> Self {
        Self::with_solver(system, Box::new(CgbaSolver::default()), seed)
    }

    /// Creates a controller with a custom P2-A solver.
    pub fn with_solver(system: MecSystem, p2a: Box<dyn P2aSolver>, seed: u64) -> Self {
        Self {
            system,
            p2a,
            rng: Pcg32::seed_stream(seed, 0x9E51),
            workspace: SlotWorkspace::new(),
            start: StartPolicy::Cold,
            latency_sum: 0.0,
            cost_sum: 0.0,
            slots: 0,
        }
    }

    /// Sets the cross-slot warm-start policy for the P2-A solve (the P2-A
    /// game here always sits at `Ω^L`, so only the profile seed applies;
    /// `Cold`, the default, reproduces the pre-warm-start behaviour
    /// exactly).
    #[must_use]
    pub fn with_start_policy(mut self, start: StartPolicy) -> Self {
        self.start = start;
        self
    }

    /// The system under control.
    pub fn system(&self) -> &MecSystem {
        &self.system
    }

    /// Running time-average latency.
    pub fn average_latency(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.latency_sum / self.slots as f64
        }
    }

    /// Running time-average energy cost.
    pub fn average_cost(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.cost_sum / self.slots as f64
        }
    }

    /// Executes one slot: pick `(x, y)` at minimum frequencies, then scale
    /// frequencies up as far as this slot's budget allows.
    pub fn step(&mut self, state: &SystemState) -> PerSlotStep {
        self.step_with(state, &NoopRecorder)
    }

    /// Executes one slot, emitting a `p2a` span for the discrete solve and
    /// a `p2b` span covering the whole multiplier search (each bisection
    /// probe is one P2-B instance; `per_slot_probes` counts them).
    pub fn step_with(&mut self, state: &SystemState, recorder: &dyn Recorder) -> PerSlotStep {
        let min_freqs = self.system.min_frequencies();
        let seed: Option<Vec<usize>> = if self.start == StartPolicy::Cold {
            None
        } else {
            self.workspace.retained_choices().map(<[usize]>::to_vec)
        };
        let p2a_span = SpanGuard::new(recorder, eotora_obs::SPAN_P2A);
        let p2a = self.workspace.prepare(&self.system, state, &min_freqs);
        let choices = self.p2a.solve_seeded(p2a, seed.as_deref(), &mut self.rng, recorder);
        let assignments = p2a.assignments_from_choices(&choices);
        p2a_span.finish();
        if self.start != StartPolicy::Cold {
            self.workspace.retain_solution(&choices, &min_freqs);
        }

        // Reuse the P2-B machinery: solve_p2b(v=1, queue=μ) minimizes
        // T_t + μ·(C_t − C̄), whose Ω-part is exactly our Lagrangian.
        let budget = self.system.budget_per_slot();
        let probes = std::cell::Cell::new(0u64);
        let solve_at = |mu: f64| {
            probes.set(probes.get() + 1);
            solve_p2b(&self.system, state, &assignments, 1.0, mu)
        };
        let cost_of = |freqs: &[f64]| self.system.energy_cost(state.price_per_kwh, freqs);

        let p2b_span = SpanGuard::new(recorder, eotora_obs::SPAN_P2B);
        let free = solve_at(0.0);
        let (freqs, multiplier) = if cost_of(&free.freqs_hz) <= budget {
            (free.freqs_hz, 0.0)
        } else {
            // Find μ_hi with feasible cost (doubling), then bisect to the
            // smallest feasible multiplier.
            let mut lo = 0.0;
            let mut hi = 1.0;
            let mut hi_sol = solve_at(hi);
            let mut guard = 0;
            while cost_of(&hi_sol.freqs_hz) > budget && guard < 60 {
                hi *= 4.0;
                hi_sol = solve_at(hi);
                guard += 1;
            }
            let mut feasible = hi_sol.freqs_hz.clone();
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                let sol = solve_at(mid);
                if cost_of(&sol.freqs_hz) <= budget {
                    hi = mid;
                    feasible = sol.freqs_hz;
                } else {
                    lo = mid;
                }
            }
            (feasible, hi)
        };
        p2b_span.finish();
        if recorder.is_enabled() {
            recorder.add(eotora_obs::COUNTER_PER_SLOT_PROBES, probes.get());
        }

        let latency =
            crate::latency::optimal_latency(&self.system, state, &assignments, &freqs).total();
        let energy_cost = cost_of(&freqs);
        let decision = optimal_allocation(&self.system, state, &assignments, &freqs);
        self.latency_sum += latency;
        self.cost_sum += energy_cost;
        self.slots += 1;
        PerSlotStep { decision, latency, energy_cost, multiplier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpp::{DppConfig, EotoraDpp};
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};

    fn system(devices: usize, seed: u64, budget: f64) -> MecSystem {
        MecSystem::random(&SystemConfig::paper_defaults(devices), seed).with_budget(budget)
    }

    #[test]
    fn per_slot_budget_is_enforced_every_slot() {
        let sys = system(12, 91, 0.9);
        let mut states = StateProvider::paper(sys.topology(), &PaperStateConfig::default(), 91);
        let mut ctl = PerSlotController::new(sys, 91);
        for t in 0..24 {
            let beta = states.observe(t, ctl.system().topology());
            let step = ctl.step(&beta);
            assert!(
                step.energy_cost <= ctl.system().budget_per_slot() * (1.0 + 1e-6),
                "slot {t}: cost {} over budget",
                step.energy_cost
            );
            step.decision.validate(ctl.system()).unwrap();
        }
    }

    #[test]
    fn slack_budget_means_zero_multiplier_and_max_speed() {
        let sys = system(10, 92, 100.0); // effectively unconstrained
        let mut states = StateProvider::paper(sys.topology(), &PaperStateConfig::default(), 92);
        let mut ctl = PerSlotController::new(sys, 92);
        let beta = states.observe(0, ctl.system().topology());
        let step = ctl.step(&beta);
        assert_eq!(step.multiplier, 0.0);
    }

    #[test]
    fn unattainable_budget_degrades_to_min_frequencies() {
        let sys = system(8, 93, 0.01); // below the min-frequency floor
        let mut states = StateProvider::paper(sys.topology(), &PaperStateConfig::default(), 93);
        let mut ctl = PerSlotController::new(sys, 93);
        let beta = states.observe(0, ctl.system().topology());
        let step = ctl.step(&beta);
        let floor = ctl.system().energy_cost(beta.price_per_kwh, &ctl.system().min_frequencies());
        assert!((step.energy_cost - floor).abs() < 1e-6);
    }

    #[test]
    fn step_with_emits_phase_spans() {
        let sys = system(10, 95, 0.9);
        let mut states = StateProvider::paper(sys.topology(), &PaperStateConfig::default(), 95);
        let mut ctl = PerSlotController::new(sys, 95);
        let rec = eotora_obs::MetricsRecorder::new();
        for t in 0..3 {
            let beta = states.observe(t, ctl.system().topology());
            ctl.step_with(&beta, &rec);
        }
        assert_eq!(rec.span_count(eotora_obs::SPAN_P2A), 3);
        assert_eq!(rec.span_count(eotora_obs::SPAN_P2B), 3);
        // At least the μ = 0 probe every slot.
        assert!(rec.counter(eotora_obs::COUNTER_PER_SLOT_PROBES) >= 3);
    }

    #[test]
    fn dpp_dominates_per_slot_budgeting() {
        // The core ablation: same long-run budget, DPP exploits cheap hours
        // and achieves lower average latency.
        let budget = 0.8;
        let sys = system(15, 94, budget);
        let mut states_a = StateProvider::paper(sys.topology(), &PaperStateConfig::default(), 94);
        let mut states_b = StateProvider::paper(sys.topology(), &PaperStateConfig::default(), 94);

        let mut per_slot = PerSlotController::new(sys.clone(), 94);
        let mut dpp = EotoraDpp::new(
            sys,
            DppConfig { v: 100.0, bdma_rounds: 2, seed: 94, ..Default::default() },
        );
        for t in 0..96 {
            let beta = states_a.observe(t, per_slot.system().topology());
            per_slot.step(&beta);
            let beta = states_b.observe(t, dpp.system().topology());
            dpp.step(&beta);
        }
        // Both meet the budget on average (per-slot trivially, DPP by Thm 4
        // up to the transient)…
        assert!(per_slot.average_cost() <= budget * (1.0 + 1e-6));
        assert!(dpp.average_cost() <= budget * 1.10);
        // …but DPP converts the same budget into strictly less latency.
        assert!(
            dpp.average_latency() < per_slot.average_latency(),
            "DPP {} should beat per-slot {}",
            dpp.average_latency(),
            per_slot.average_latency()
        );
    }
}
