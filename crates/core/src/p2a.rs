//! P2-A ↔ weighted-congestion-game mapping (paper §V-B).
//!
//! With frequencies `Ω_t` fixed, choosing `(x_t, y_t)` to minimize
//! `T_t` is the WCG problem: resources are each server's compute capacity
//! `C_n` and each base station's access/fronthaul bandwidth `B^A_k, B^F_k`;
//! a device's strategy picks a feasible `(k, n)` pair and uses the bundle
//! `{B^A_k, B^F_k, C_n}`. The weights are
//!
//! ```text
//! m_{C_n}  = 1/(cores_n·ω_n)      p_{i,C_n}  = √(f_i/σ_{i,n})
//! m_{B^A_k} = 1/W^A_k             p_{i,B^A_k} = √(d_i/h_{i,k})
//! m_{B^F_k} = 1/W^F_k             p_{i,B^F_k} = √(d_i/h^F_k)
//! ```
//!
//! so the game's social cost `Σ_r m_r·p_r(z)²` equals `T_t(x, y, Ω, β)`
//! exactly (eqs. 18–19; see DESIGN.md for the `p_{i,C_n}` typo fix). The
//! feasibility constraint (3) — the server must be reachable from the
//! station — is encoded by simply not generating infeasible strategies.

use eotora_game::{cgba, CgbaConfig, CgbaReport, CongestionGame, Profile};
use eotora_states::SystemState;

use eotora_util::rng::Pcg32;

use crate::decision::Assignment;
use crate::system::MecSystem;

/// The P2-A instance for one slot: the congestion game plus the maps between
/// strategy indices and `(base station, server)` assignments.
///
/// The game's *shape* (which strategies exist, which resources each uses)
/// is a pure function of the topology, so an instance built once can be
/// [`P2aProblem::rebuild`]-refreshed for a new state (per slot) or have
/// just its server weights updated for new frequencies
/// ([`P2aProblem::update_frequencies`], per BDMA round) without
/// reallocating anything — see [`crate::workspace::SlotWorkspace`].
#[derive(Debug, Clone)]
pub struct P2aProblem {
    game: CongestionGame,
    /// `strategy_map[i][s]` = the assignment realized by player `i`'s
    /// strategy `s`.
    strategy_map: Vec<Vec<Assignment>>,
    num_servers: usize,
    num_stations: usize,
}

impl P2aProblem {
    /// Builds the game for `state` with frequencies `freqs_hz`.
    ///
    /// Resource indexing: `0..N` are servers, `N..N+K` access links,
    /// `N+K..N+2K` fronthaul links.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches, or if some device has no feasible
    /// `(k, n)` strategy (impossible for validated topologies, where every
    /// base station links at least one cluster).
    pub fn build(system: &MecSystem, state: &SystemState, freqs_hz: &[f64]) -> Self {
        let topo = system.topology();
        let n_servers = topo.num_servers();
        let n_stations = topo.num_base_stations();
        assert_eq!(freqs_hz.len(), n_servers, "one frequency per server");
        assert_eq!(state.task_cycles.len(), topo.num_devices(), "state/topology mismatch");

        let mut weights = Vec::with_capacity(n_servers + 2 * n_stations);
        for n in topo.server_ids() {
            weights.push(1.0 / system.compute_rate(n, freqs_hz[n.index()]));
        }
        for k in topo.base_station_ids() {
            weights.push(1.0 / topo.base_station(k).access_bandwidth_hz);
        }
        for k in topo.base_station_ids() {
            weights.push(1.0 / topo.base_station(k).fronthaul_bandwidth_hz);
        }
        let mut game = CongestionGame::new(weights);
        let mut strategy_map = Vec::with_capacity(topo.num_devices());

        for i in topo.device_ids() {
            let mut strategies = Vec::new();
            let mut map = Vec::new();
            for k in topo.covering_base_stations(i) {
                let access_w = (state.data_bits[i.index()]
                    / state.spectral_efficiency[i.index()][k.index()])
                .sqrt();
                let fronthaul_w =
                    (state.data_bits[i.index()] / state.fronthaul_efficiency[k.index()]).sqrt();
                for n in topo.servers_reachable_from(k) {
                    let compute_w =
                        (state.task_cycles[i.index()] / system.suitability(i, n)).sqrt();
                    strategies.push(vec![
                        (n.index(), compute_w),
                        (n_servers + k.index(), access_w),
                        (n_servers + n_stations + k.index(), fronthaul_w),
                    ]);
                    map.push(Assignment { base_station: k, server: n });
                }
            }
            assert!(!strategies.is_empty(), "device {i} has no feasible strategy");
            game.add_player(strategies);
            strategy_map.push(map);
        }

        let problem = Self { game, strategy_map, num_servers: n_servers, num_stations: n_stations };
        // Validation happens once, at construction; the per-round refresh
        // paths (`rebuild`, `update_frequencies`) only debug-assert.
        problem.game.validate().expect("constructed game is valid");
        problem
    }

    /// Refreshes the server resource weights `m_{C_n} = 1/(cores_n·ω_n)` for
    /// new frequencies, in place — the only game change between BDMA rounds.
    ///
    /// # Panics
    ///
    /// Panics if `freqs_hz.len()` differs from the server count.
    pub fn update_frequencies(&mut self, system: &MecSystem, freqs_hz: &[f64]) {
        assert_eq!(freqs_hz.len(), self.num_servers, "one frequency per server");
        for n in system.topology().server_ids() {
            self.game
                .set_resource_weight(n.index(), 1.0 / system.compute_rate(n, freqs_hz[n.index()]));
        }
    }

    /// Refreshes every state-dependent weight in place for a new slot:
    /// server resource weights for `freqs_hz` plus all per-player weights
    /// for `state`. Equivalent to `P2aProblem::build(system, state,
    /// freqs_hz)` but allocation-free — the strategy shape is topology-only
    /// and must match (see [`P2aProblem::matches_system`]).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches between `self`, `system`, and `state`.
    pub fn rebuild(&mut self, system: &MecSystem, state: &SystemState, freqs_hz: &[f64]) {
        assert_eq!(state.task_cycles.len(), self.strategy_map.len(), "state/problem mismatch");
        self.update_frequencies(system, freqs_hz);
        let Self { game, strategy_map, .. } = self;
        for (i, map) in strategy_map.iter().enumerate() {
            let device = eotora_topology::DeviceId(i);
            // Strategies are generated grouped by base station, so the two
            // link weights can be computed once per station run.
            let mut last_station = None;
            let mut access_w = 0.0;
            let mut fronthaul_w = 0.0;
            for (s, a) in map.iter().enumerate() {
                if last_station != Some(a.base_station) {
                    access_w = (state.data_bits[i]
                        / state.spectral_efficiency[i][a.base_station.index()])
                    .sqrt();
                    fronthaul_w = (state.data_bits[i]
                        / state.fronthaul_efficiency[a.base_station.index()])
                    .sqrt();
                    last_station = Some(a.base_station);
                }
                let compute_w =
                    (state.task_cycles[i] / system.suitability(device, a.server)).sqrt();
                game.set_strategy_weights(i, s, &[compute_w, access_w, fronthaul_w]);
            }
        }
        debug_assert!(self.game.validate().is_ok(), "rebuilt game is valid");
    }

    /// Whether this instance's shape matches `system`'s topology (device,
    /// server, and station counts) — the precondition for
    /// [`P2aProblem::rebuild`].
    pub fn matches_system(&self, system: &MecSystem) -> bool {
        let topo = system.topology();
        self.num_servers == topo.num_servers()
            && self.num_stations == topo.num_base_stations()
            && self.strategy_map.len() == topo.num_devices()
    }

    /// The underlying congestion game.
    pub fn game(&self) -> &CongestionGame {
        &self.game
    }

    /// Number of servers in the instance (resources `0..num_servers`).
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Number of base stations in the instance (access links
    /// `N..N+K`, fronthaul links `N+K..N+2K`).
    pub fn num_stations(&self) -> usize {
        self.num_stations
    }

    /// Number of strategies available to player `i`.
    pub fn num_strategies(&self, i: usize) -> usize {
        self.strategy_map[i].len()
    }

    /// The assignment realized by player `i`'s strategy `s`.
    pub fn assignment(&self, i: usize, s: usize) -> Assignment {
        self.strategy_map[i][s]
    }

    /// Converts a game profile into per-device assignments.
    pub fn assignments_from_choices(&self, choices: &[usize]) -> Vec<Assignment> {
        assert_eq!(choices.len(), self.strategy_map.len(), "one choice per device");
        choices.iter().enumerate().map(|(i, &s)| self.strategy_map[i][s]).collect()
    }

    /// Converts per-device assignments into strategy indices.
    ///
    /// Returns `None` if some assignment is not a feasible strategy of the
    /// corresponding player.
    pub fn choices_from_assignments(&self, assignments: &[Assignment]) -> Option<Vec<usize>> {
        if assignments.len() != self.strategy_map.len() {
            return None;
        }
        assignments
            .iter()
            .enumerate()
            .map(|(i, a)| self.strategy_map[i].iter().position(|m| m == a))
            .collect()
    }

    /// Total latency `T_t` of the given strategy profile (the game's social
    /// cost).
    pub fn total_latency(&self, choices: &[usize]) -> f64 {
        Profile::from_choices(&self.game, choices.to_vec()).total_cost(&self.game)
    }

    /// Runs CGBA(λ) on this instance from a random start.
    pub fn solve_cgba(&self, config: &CgbaConfig, rng: &mut Pcg32) -> CgbaReport {
        cgba(&self.game, config, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::optimal_latency;
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};
    use eotora_topology::{BaseStationId, ServerId};
    use eotora_util::assert_close;

    fn setup(devices: usize, seed: u64) -> (MecSystem, SystemState) {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = p.observe(0, system.topology());
        (system, state)
    }

    #[test]
    fn social_cost_equals_closed_form_latency() {
        // The load-identity at the heart of §V-B: game social cost == T_t.
        let (system, state) = setup(18, 21);
        let freqs = system.max_frequencies();
        let p2a = P2aProblem::build(&system, &state, &freqs);
        let mut rng = Pcg32::seed(3);
        for _ in 0..10 {
            let choices: Vec<usize> = (0..18).map(|i| rng.below(p2a.num_strategies(i))).collect();
            let game_cost = p2a.total_latency(&choices);
            let assignments = p2a.assignments_from_choices(&choices);
            let t = optimal_latency(&system, &state, &assignments, &freqs).total();
            assert_close!(game_cost, t, 1e-9);
        }
    }

    #[test]
    fn strategies_respect_reachability() {
        let (system, state) = setup(5, 22);
        let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
        let topo = system.topology();
        for i in 0..5 {
            for s in 0..p2a.num_strategies(i) {
                let a = p2a.assignment(i, s);
                assert!(topo.servers_reachable_from(a.base_station).contains(&a.server));
            }
        }
    }

    #[test]
    fn strategy_count_matches_topology() {
        // Full coverage, one room per BS, 8 servers per room → 6×8 = 48.
        let (system, state) = setup(3, 23);
        let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
        for i in 0..3 {
            assert_eq!(p2a.num_strategies(i), 48);
        }
    }

    #[test]
    fn choices_assignments_roundtrip() {
        let (system, state) = setup(9, 24);
        let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
        let mut rng = Pcg32::seed(8);
        let choices: Vec<usize> = (0..9).map(|i| rng.below(p2a.num_strategies(i))).collect();
        let assignments = p2a.assignments_from_choices(&choices);
        assert_eq!(p2a.choices_from_assignments(&assignments), Some(choices));
        // Foreign assignment (unreachable pair) maps to None.
        let bad = vec![Assignment { base_station: BaseStationId(0), server: ServerId(0) }; 8];
        assert_eq!(p2a.choices_from_assignments(&bad), None); // wrong length
    }

    #[test]
    fn cgba_improves_over_random_start() {
        let (system, state) = setup(30, 25);
        let p2a = P2aProblem::build(&system, &state, &system.max_frequencies());
        let mut rng = Pcg32::seed(9);
        let report = p2a.solve_cgba(&CgbaConfig::default(), &mut rng);
        assert!(report.converged);
        assert!(report.total_cost <= report.initial_cost);
        assert!(report.profile.is_lambda_equilibrium(p2a.game(), 0.0, 1e-9));
    }

    #[test]
    fn rebuild_matches_fresh_build() {
        // The zero-rebuild refresh path must reproduce `build` exactly —
        // same game, bit for bit — across states and frequency changes.
        let (system, state0) = setup(12, 27);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), 91);
        let state1 = provider.observe(5, system.topology());

        let mut reused = P2aProblem::build(&system, &state0, &system.min_frequencies());
        reused.update_frequencies(&system, &system.max_frequencies());
        let fresh = P2aProblem::build(&system, &state0, &system.max_frequencies());
        assert_eq!(reused.game(), fresh.game());

        reused.rebuild(&system, &state1, &system.min_frequencies());
        let fresh = P2aProblem::build(&system, &state1, &system.min_frequencies());
        assert_eq!(reused.game(), fresh.game());
        assert!(reused.matches_system(&system));
    }

    #[test]
    fn higher_frequencies_lower_equilibrium_latency() {
        let (system, state) = setup(20, 26);
        let slow = P2aProblem::build(&system, &state, &system.min_frequencies());
        let fast = P2aProblem::build(&system, &state, &system.max_frequencies());
        let mut r1 = Pcg32::seed(4);
        let mut r2 = Pcg32::seed(4);
        let c_slow = slow.solve_cgba(&CgbaConfig::default(), &mut r1).total_cost;
        let c_fast = fast.solve_cgba(&CgbaConfig::default(), &mut r2).total_cost;
        assert!(c_fast < c_slow);
    }
}
