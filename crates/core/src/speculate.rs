//! Speculative next-slot pre-solve: overlap BDMA with inter-slot idle time.
//!
//! The controller solves each slot on the critical path and then idles
//! until the next observation arrives, even though the paper's per-slot
//! DPP structure makes slot `t+1`'s game fully determined by its states
//! `β_{t+1} = (f, d, h, p)` — and those states evolve under predictable
//! dynamics (periodic electricity prices, Markov channels). This module
//! exploits that: a pluggable [`StatePredictor`] forecasts `β_{t+1}` at
//! the end of slot `t`, the predicted P2 solve is *staged* on cloned
//! solver state during the idle gap, and at slot-start `t+1` a cheap
//! repair pass decides what the stage bought:
//!
//! * **hit** — the observed state equals the prediction exactly: the
//!   staged decision, RNG, and workspace are adopted verbatim
//!   (`EotoraDpp::adopt_staged`). The critical path shrinks to a Lemma 1
//!   allocation plus a queue update.
//! * **near-hit** — every per-state relative delta is within
//!   [`SpeculativeConfig::tolerance`]: the staged profile warm-seeds a
//!   normal solve through the existing [`crate::bdma::StartPolicy`]
//!   machinery (`EotoraDpp::step_warm_seeded`).
//! * **miss** — the prediction was wrong (or nothing was staged): the
//!   staged solve is discarded and the normal warm/cold path runs.
//!
//! The staged solve never touches the virtual queue, the running
//! averages, or the durability journal until adopted, so crash/resume
//! trajectories stay bit-identical to the plain engine — pinned by the
//! zero-hit equivalence tests below. Staging runs under an optional
//! wall-clock budget ([`SpeculativeConfig::deadline`], the same knob as
//! [`crate::robust::RobustConfig::deadline`]): a stage that overruns is
//! discarded rather than adopted, because a misprediction is just a cold
//! solve with a tight deadline.

use std::time::{Duration, Instant};

use eotora_lyapunov::DppStep;
use eotora_obs::{NoopRecorder, Recorder, SpanGuard};
use eotora_states::SystemState;
use eotora_util::pool::WorkerPool;
use eotora_util::rng::Pcg32;
use serde::{Deserialize, Serialize};

use crate::bdma::P2Solution;
use crate::decision::SlotDecision;
use crate::dpp::EotoraDpp;
use crate::workspace::SlotWorkspace;

/// Forecasts the next slot's system state from the observed history.
///
/// Implementations must be **pure functions of (history, seed)**: feeding
/// two instances the same observation sequence yields bit-identical
/// forecasts (pinned by a proptest). No wall clock, no global state.
pub trait StatePredictor: std::fmt::Debug {
    /// Records the observed `β_t` (called once per slot, in slot order).
    fn observe(&mut self, state: &SystemState);

    /// Forecasts `β` for `slot` (always the slot right after the last
    /// observation), or `None` while the history is too short to commit
    /// to a forecast.
    fn predict(&self, slot: u64) -> Option<SystemState>;
}

/// Predicts `β_{t+1} = β_t`: optimal for slowly varying states, the
/// baseline every other predictor must beat.
#[derive(Debug, Default)]
pub struct LastValuePredictor {
    last: Option<SystemState>,
}

impl StatePredictor for LastValuePredictor {
    fn observe(&mut self, state: &SystemState) {
        self.last = Some(state.clone());
    }

    fn predict(&self, slot: u64) -> Option<SystemState> {
        let mut s = self.last.clone()?;
        s.slot = slot;
        Some(s)
    }
}

/// Predicts the price from one period back (`p̂_{t+1} = p_{t+1−D}`, the
/// paper's periodic-trend assumption) and everything else by last value.
/// Exact on a noiseless periodic price trend once a full period has been
/// observed.
#[derive(Debug)]
pub struct PeriodicPricePredictor {
    period: u64,
    /// `ring[t % period]` holds the observation from slot `t`, so the
    /// phase-aligned price from one period back is a single lookup.
    ring: Vec<Option<SystemState>>,
    last: Option<SystemState>,
}

impl PeriodicPricePredictor {
    /// A predictor assuming price period `period` (slots; clamped ≥ 1).
    pub fn new(period: usize) -> Self {
        let period = period.max(1);
        Self { period: period as u64, ring: vec![None; period], last: None }
    }
}

impl StatePredictor for PeriodicPricePredictor {
    fn observe(&mut self, state: &SystemState) {
        self.ring[(state.slot % self.period) as usize] = Some(state.clone());
        self.last = Some(state.clone());
    }

    fn predict(&self, slot: u64) -> Option<SystemState> {
        let mut s = self.last.clone()?;
        let phase = self.ring[(slot % self.period) as usize].as_ref()?;
        // Only trust the ring entry if it is exactly one period old;
        // otherwise the phase history has a gap and we refuse to forecast.
        if phase.slot + self.period != slot {
            return None;
        }
        s.slot = slot;
        s.price_per_kwh = phase.price_per_kwh;
        Some(s)
    }
}

/// Predicts the access channel by an exponentially weighted moving
/// average (`ĥ_{t+1} = α·h_t + (1−α)·ĥ_t`, the one-step MMSE shape for a
/// Gauss–Markov channel) and everything else by last value.
#[derive(Debug)]
pub struct MarkovEwmaPredictor {
    alpha: f64,
    ewma: Option<Vec<Vec<f64>>>,
    last: Option<SystemState>,
}

impl MarkovEwmaPredictor {
    /// A predictor with smoothing factor `alpha ∈ (0, 1]` (clamped).
    pub fn new(alpha: f64) -> Self {
        Self { alpha: alpha.clamp(1e-6, 1.0), ewma: None, last: None }
    }
}

impl StatePredictor for MarkovEwmaPredictor {
    fn observe(&mut self, state: &SystemState) {
        match &mut self.ewma {
            Some(e)
                if e.len() == state.spectral_efficiency.len()
                    && e.iter()
                        .zip(&state.spectral_efficiency)
                        .all(|(a, b)| a.len() == b.len()) =>
            {
                for (row, obs) in e.iter_mut().zip(&state.spectral_efficiency) {
                    for (v, &h) in row.iter_mut().zip(obs) {
                        *v = self.alpha * h + (1.0 - self.alpha) * *v;
                    }
                }
            }
            e => *e = Some(state.spectral_efficiency.clone()),
        }
        self.last = Some(state.clone());
    }

    fn predict(&self, slot: u64) -> Option<SystemState> {
        let mut s = self.last.clone()?;
        s.slot = slot;
        s.spectral_efficiency = self.ewma.clone()?;
        Some(s)
    }
}

/// Deliberately wrong forecasts (every scalar scaled by a seeded factor
/// in `[1.5, 2.5)`), guaranteeing zero hits and zero near-hits at any
/// tolerance below ~0.33. Exists to pin the miss path: a speculative run
/// under this predictor must match the plain engine decision-for-decision.
#[derive(Debug)]
pub struct AdversarialPredictor {
    seed: u64,
    last: Option<SystemState>,
}

impl AdversarialPredictor {
    /// An adversary seeded like the state generators (deterministic).
    pub fn new(seed: u64) -> Self {
        Self { seed, last: None }
    }
}

impl StatePredictor for AdversarialPredictor {
    fn observe(&mut self, state: &SystemState) {
        self.last = Some(state.clone());
    }

    fn predict(&self, slot: u64) -> Option<SystemState> {
        let mut s = self.last.clone()?;
        s.slot = slot;
        // A fresh per-slot stream keeps predict a pure function of
        // (history, seed) — calling it twice must not advance anything.
        let mut rng = Pcg32::seed_stream(self.seed, 0x5BEC ^ slot);
        let mut skew = |v: &mut f64| *v *= rng.uniform_in(1.5, 2.5);
        s.task_cycles.iter_mut().for_each(&mut skew);
        s.data_bits.iter_mut().for_each(&mut skew);
        s.spectral_efficiency.iter_mut().flatten().for_each(&mut skew);
        s.fronthaul_efficiency.iter_mut().for_each(&mut skew);
        skew(&mut s.price_per_kwh);
        Some(s)
    }
}

/// Which [`StatePredictor`] the speculative controller runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// [`LastValuePredictor`].
    LastValue,
    /// [`PeriodicPricePredictor`] with the given period (slots).
    PeriodicPrice {
        /// Price-trend period `D` in slots.
        period: usize,
    },
    /// [`MarkovEwmaPredictor`] with the given smoothing factor.
    MarkovEwma {
        /// EWMA smoothing factor `α ∈ (0, 1]`.
        alpha: f64,
    },
    /// [`AdversarialPredictor`] (testing: guarantees the miss path).
    Adversarial,
}

impl PredictorKind {
    /// Instantiates the predictor; `seed` feeds the seeded variants.
    pub fn build(self, seed: u64) -> Box<dyn StatePredictor> {
        match self {
            Self::LastValue => Box::new(LastValuePredictor::default()),
            Self::PeriodicPrice { period } => Box::new(PeriodicPricePredictor::new(period)),
            Self::MarkovEwma { alpha } => Box::new(MarkovEwmaPredictor::new(alpha)),
            Self::Adversarial => Box::new(AdversarialPredictor::new(seed)),
        }
    }

    /// Parses a CLI predictor name (`last-value`, `periodic-price`,
    /// `markov-ewma`, `adversarial`); `period` parameterizes
    /// `periodic-price`.
    pub fn parse(name: &str, period: usize) -> Option<Self> {
        match name {
            "last-value" => Some(Self::LastValue),
            "periodic-price" => Some(Self::PeriodicPrice { period }),
            "markov-ewma" => Some(Self::MarkovEwma { alpha: 0.5 }),
            "adversarial" => Some(Self::Adversarial),
            _ => None,
        }
    }
}

/// Configuration of the speculative pre-solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculativeConfig {
    /// The forecast model.
    pub predictor: PredictorKind,
    /// Largest per-state relative delta still repaired by warm-seeding
    /// (see [`SystemState::max_relative_delta`]). `0.0` adopts exact
    /// matches only — anything else is a miss.
    pub tolerance: f64,
    /// Wall-clock budget for one staged solve, mirroring
    /// [`crate::robust::RobustConfig::deadline`]. The staged solve is not
    /// interruptible (adoption requires the full bit-exact result), so
    /// the budget is enforced after the fact: an overrunning stage is
    /// discarded and counted under `spec.staged_discards`. `None` stages
    /// unconditionally.
    pub deadline: Option<Duration>,
    /// Stage even when [`WorkerPool::idle_workers`] reports no spare
    /// capacity. The default (`false`) yields to in-flight pool batches —
    /// speculation is strictly opportunistic. Tests and benches set
    /// `true` so concurrent unrelated batches can't skew hit rates.
    pub stage_when_busy: bool,
}

impl Default for SpeculativeConfig {
    fn default() -> Self {
        Self {
            predictor: PredictorKind::LastValue,
            tolerance: 0.0,
            deadline: None,
            stage_when_busy: false,
        }
    }
}

/// What the repair pass decided for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecOutcome {
    /// Exact state match; the staged solve was adopted verbatim.
    Hit,
    /// Within tolerance; the staged profile warm-seeded a repair solve.
    NearHit,
    /// Prediction wrong or nothing staged; the normal path ran.
    Miss,
}

/// One staged pre-solve awaiting the next observation.
#[derive(Debug)]
struct StagedSlot {
    predicted: SystemState,
    solution: P2Solution,
    rng: Pcg32,
    workspace: SlotWorkspace,
}

/// The speculation engine: owns the predictor and at most one staged
/// solve, and drives an [`EotoraDpp`] it does **not** own (the simulation
/// runner threads its own controller through). Library users who want a
/// self-contained handle use [`SpeculativeController`].
#[derive(Debug)]
pub struct Speculator {
    config: SpeculativeConfig,
    predictor: Box<dyn StatePredictor>,
    pool: WorkerPool,
    staged: Option<StagedSlot>,
}

impl Speculator {
    /// Builds the engine; `seed` feeds the predictor's seeded variants
    /// (pass the controller's [`crate::dpp::DppConfig::seed`]).
    pub fn new(config: SpeculativeConfig, seed: u64) -> Self {
        Self {
            config,
            predictor: config.predictor.build(seed),
            pool: WorkerPool::with_default(),
            staged: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SpeculativeConfig {
        &self.config
    }

    /// Whether a staged solve is waiting for the next observation.
    pub fn has_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// Feeds one observed state into the predictor (slot order matters).
    pub fn observe(&mut self, state: &SystemState) {
        self.predictor.observe(state);
    }

    /// Executes slot `t` through the repair pass: adopt on a hit,
    /// warm-seed on a near-hit, fall back to the plain path on a miss.
    /// Consumes the staged solve either way. Call [`Speculator::observe`]
    /// with `state` before this (the runner observes on arrival).
    pub fn repair_and_step(
        &mut self,
        dpp: &mut EotoraDpp,
        state: &SystemState,
        recorder: &dyn Recorder,
    ) -> (DppStep<SlotDecision>, SpecOutcome) {
        match self.staged.take() {
            Some(staged) if staged.predicted == *state => {
                recorder.add(eotora_obs::COUNTER_SPEC_HITS, 1);
                let step = dpp.adopt_staged(
                    state,
                    &staged.solution,
                    staged.rng,
                    staged.workspace,
                    recorder,
                );
                (step, SpecOutcome::Hit)
            }
            Some(staged) => {
                if staged.predicted.max_relative_delta(state) <= self.config.tolerance {
                    if let Some((step, moves)) =
                        dpp.step_warm_seeded(state, &staged.solution, recorder)
                    {
                        recorder.add(eotora_obs::COUNTER_SPEC_NEAR_HITS, 1);
                        recorder.add(eotora_obs::COUNTER_SPEC_REPAIR_MOVES, moves);
                        return (step, SpecOutcome::NearHit);
                    }
                }
                recorder.add(eotora_obs::COUNTER_SPEC_MISSES, 1);
                (dpp.step_with(state, recorder), SpecOutcome::Miss)
            }
            None => {
                recorder.add(eotora_obs::COUNTER_SPEC_MISSES, 1);
                (dpp.step_with(state, recorder), SpecOutcome::Miss)
            }
        }
    }

    /// Stages the next slot's pre-solve during the inter-slot gap. Call
    /// *after* the slot's step (the cloned queue backlog, slot counter,
    /// and RNG position are then exactly what the next solve would see).
    /// Skips staging when the predictor has no forecast, or — unless
    /// [`SpeculativeConfig::stage_when_busy`] — when the worker pool has
    /// no idle capacity to soak up. A stage that overruns the deadline is
    /// discarded on the spot.
    pub fn stage_next(&mut self, dpp: &mut EotoraDpp, recorder: &dyn Recorder) {
        self.discard_staged(recorder);
        if !self.config.stage_when_busy && self.pool.idle_workers() == 0 {
            return;
        }
        let Some(predicted) = self.predictor.predict(dpp.slots()) else {
            return;
        };
        let span = SpanGuard::new(recorder, eotora_obs::SPAN_SPEC_STAGE);
        let started = Instant::now();
        let (solution, rng, workspace) = dpp.stage_speculative(&predicted);
        let elapsed = started.elapsed();
        span.finish();
        if self.config.deadline.is_some_and(|budget| elapsed > budget) {
            recorder.add(eotora_obs::COUNTER_SPEC_STAGED_DISCARDS, 1);
            return;
        }
        self.staged = Some(StagedSlot { predicted, solution, rng, workspace });
    }

    /// Drops any staged solve without comparing it (counted under
    /// `spec.staged_discards`). Used when the staged solve is invalidated
    /// out of band — e.g. a resume replacing the controller state.
    pub fn discard_staged(&mut self, recorder: &dyn Recorder) {
        if self.staged.take().is_some() {
            recorder.add(eotora_obs::COUNTER_SPEC_STAGED_DISCARDS, 1);
        }
    }
}

/// A self-contained speculative controller: an [`EotoraDpp`] plus a
/// [`Speculator`], stepped slot by slot like the plain controller.
///
/// # Examples
///
/// ```
/// use eotora_core::dpp::{DppConfig, EotoraDpp};
/// use eotora_core::speculate::{SpeculativeConfig, SpeculativeController};
/// use eotora_core::system::{MecSystem, SystemConfig};
/// use eotora_states::{PaperStateConfig, StateProvider};
///
/// let system = MecSystem::random(&SystemConfig::paper_defaults(8), 1);
/// let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 1);
/// let dpp = EotoraDpp::new(system, DppConfig::default());
/// let mut ctrl = SpeculativeController::new(dpp, SpeculativeConfig::default());
/// for t in 0..3 {
///     let beta = states.observe(t, ctrl.dpp().system().topology());
///     let (step, _outcome) = ctrl.step(&beta);
///     assert!(step.outcome.objective > 0.0);
/// }
/// ```
#[derive(Debug)]
pub struct SpeculativeController {
    dpp: EotoraDpp,
    speculator: Speculator,
}

impl SpeculativeController {
    /// Wraps `dpp`; the predictor seeds from the controller's solver seed.
    pub fn new(dpp: EotoraDpp, config: SpeculativeConfig) -> Self {
        let seed = dpp.config().seed;
        Self { dpp, speculator: Speculator::new(config, seed) }
    }

    /// The wrapped controller.
    pub fn dpp(&self) -> &EotoraDpp {
        &self.dpp
    }

    /// The speculation engine (for staging inspection).
    pub fn speculator(&self) -> &Speculator {
        &self.speculator
    }

    /// Unwraps the controller, dropping any staged solve.
    pub fn into_inner(self) -> EotoraDpp {
        self.dpp
    }

    /// Executes one slot: observe → repair/step → stage the next slot.
    pub fn step(&mut self, state: &SystemState) -> (DppStep<SlotDecision>, SpecOutcome) {
        self.step_with(state, &NoopRecorder)
    }

    /// Executes one slot, emitting the `spec.*` counters and the
    /// `spec.staged_solve` span into `recorder`.
    pub fn step_with(
        &mut self,
        state: &SystemState,
        recorder: &dyn Recorder,
    ) -> (DppStep<SlotDecision>, SpecOutcome) {
        self.speculator.observe(state);
        let result = self.speculator.repair_and_step(&mut self.dpp, state, recorder);
        self.speculator.stage_next(&mut self.dpp, recorder);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpp::DppConfig;
    use crate::system::{MecSystem, SystemConfig};
    use eotora_obs::MetricsRecorder;
    use eotora_states::{PaperStateConfig, StateProvider};

    fn spec_cfg(predictor: PredictorKind, tolerance: f64) -> SpeculativeConfig {
        SpeculativeConfig { predictor, tolerance, deadline: None, stage_when_busy: true }
    }

    fn plain_trace(
        states_cfg: &PaperStateConfig,
        dpp_cfg: DppConfig,
        devices: usize,
        seed: u64,
        slots: u64,
    ) -> Vec<(f64, f64, f64)> {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut states = StateProvider::paper(system.topology(), states_cfg, seed);
        let mut dpp = EotoraDpp::new(system, dpp_cfg);
        (0..slots)
            .map(|t| {
                let beta = states.observe(t, dpp.system().topology());
                let step = dpp.step(&beta);
                (step.outcome.objective, step.outcome.constraint_excess, step.queue_after)
            })
            .collect()
    }

    fn speculative_trace(
        states_cfg: &PaperStateConfig,
        dpp_cfg: DppConfig,
        devices: usize,
        seed: u64,
        slots: u64,
        spec: SpeculativeConfig,
        rec: &MetricsRecorder,
    ) -> Vec<(f64, f64, f64)> {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut states = StateProvider::paper(system.topology(), states_cfg, seed);
        let mut ctrl = SpeculativeController::new(EotoraDpp::new(system, dpp_cfg), spec);
        (0..slots)
            .map(|t| {
                let beta = states.observe(t, ctrl.dpp().system().topology());
                let (step, _) = ctrl.step_with(&beta, rec);
                (step.outcome.objective, step.outcome.constraint_excess, step.queue_after)
            })
            .collect()
    }

    #[test]
    fn periodic_hits_adopt_bit_identically() {
        let states_cfg = PaperStateConfig::periodic_price();
        let dpp_cfg = DppConfig { bdma_rounds: 2, seed: 17, ..Default::default() };
        let slots = 60;
        let rec = MetricsRecorder::new();
        let spec = spec_cfg(PredictorKind::PeriodicPrice { period: 24 }, 0.0);
        let speculative = speculative_trace(&states_cfg, dpp_cfg, 10, 17, slots, spec, &rec);
        let plain = plain_trace(&states_cfg, dpp_cfg, 10, 17, slots);
        assert_eq!(speculative, plain);
        // Slots 24..59 are all exact hits; earlier slots lack the
        // phase-aligned history.
        assert_eq!(rec.counter(eotora_obs::COUNTER_SPEC_HITS), slots - 24);
        assert_eq!(rec.counter(eotora_obs::COUNTER_SPEC_MISSES), 24);
        assert_eq!(rec.counter(eotora_obs::COUNTER_SPEC_NEAR_HITS), 0);
    }

    #[test]
    fn adversarial_never_hits_and_matches_plain() {
        let states_cfg = PaperStateConfig::default();
        let dpp_cfg = DppConfig { bdma_rounds: 2, seed: 23, ..Default::default() };
        let rec = MetricsRecorder::new();
        let spec = spec_cfg(PredictorKind::Adversarial, 0.0);
        let speculative = speculative_trace(&states_cfg, dpp_cfg, 12, 23, 30, spec, &rec);
        let plain = plain_trace(&states_cfg, dpp_cfg, 12, 23, 30);
        assert_eq!(speculative, plain);
        assert_eq!(rec.counter(eotora_obs::COUNTER_SPEC_HITS), 0);
        assert_eq!(rec.counter(eotora_obs::COUNTER_SPEC_MISSES), 30);
    }

    #[test]
    fn warm_start_policies_adopt_bit_identically_too() {
        // The staged clone carries the retained warm incumbent with it, so
        // adoption must stay exact under StartPolicy::Warm as well.
        let states_cfg = PaperStateConfig::periodic_price();
        let dpp_cfg = DppConfig {
            bdma_rounds: 2,
            start: crate::bdma::StartPolicy::Warm,
            seed: 31,
            ..Default::default()
        };
        let rec = MetricsRecorder::new();
        let spec = spec_cfg(PredictorKind::PeriodicPrice { period: 24 }, 0.0);
        let speculative = speculative_trace(&states_cfg, dpp_cfg, 10, 31, 50, spec, &rec);
        let plain = plain_trace(&states_cfg, dpp_cfg, 10, 31, 50);
        assert_eq!(speculative, plain);
        assert!(rec.counter(eotora_obs::COUNTER_SPEC_HITS) > 0);
    }

    #[test]
    fn near_miss_warm_seeds_within_tolerance() {
        // Noisy default states: last-value predictions are close but not
        // exact, so a generous tolerance routes slots through the repair
        // pass instead of the plain fallback.
        let states_cfg = PaperStateConfig::default();
        let dpp_cfg = DppConfig { bdma_rounds: 2, seed: 41, ..Default::default() };
        let rec = MetricsRecorder::new();
        let spec = spec_cfg(PredictorKind::LastValue, 2.0);
        let trace = speculative_trace(&states_cfg, dpp_cfg, 10, 41, 20, spec, &rec);
        assert!(trace.iter().all(|&(obj, _, q)| obj > 0.0 && q >= 0.0));
        assert_eq!(rec.counter(eotora_obs::COUNTER_SPEC_HITS), 0);
        assert!(rec.counter(eotora_obs::COUNTER_SPEC_NEAR_HITS) >= 18);
    }

    #[test]
    fn zero_deadline_discards_every_stage_and_stays_identical() {
        let states_cfg = PaperStateConfig::periodic_price();
        let dpp_cfg = DppConfig { bdma_rounds: 2, seed: 53, ..Default::default() };
        let rec = MetricsRecorder::new();
        let spec = SpeculativeConfig {
            predictor: PredictorKind::PeriodicPrice { period: 24 },
            tolerance: 0.0,
            deadline: Some(Duration::ZERO),
            stage_when_busy: true,
        };
        let speculative = speculative_trace(&states_cfg, dpp_cfg, 8, 53, 40, spec, &rec);
        let plain = plain_trace(&states_cfg, dpp_cfg, 8, 53, 40);
        assert_eq!(speculative, plain);
        assert_eq!(rec.counter(eotora_obs::COUNTER_SPEC_HITS), 0);
        assert_eq!(rec.counter(eotora_obs::COUNTER_SPEC_MISSES), 40);
        assert!(rec.counter(eotora_obs::COUNTER_SPEC_STAGED_DISCARDS) > 0);
    }

    fn sample_states(devices: usize, seed: u64, slots: u64) -> Vec<SystemState> {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        (0..slots).map(|t| provider.observe(t, system.topology())).collect()
    }

    #[test]
    fn last_value_predicts_the_previous_state() {
        let states = sample_states(6, 3, 4);
        let mut p = LastValuePredictor::default();
        assert!(p.predict(0).is_none());
        for s in &states {
            p.observe(s);
            let hat = p.predict(s.slot + 1).unwrap();
            assert_eq!(hat.slot, s.slot + 1);
            assert_eq!(hat.task_cycles, s.task_cycles);
            assert_eq!(hat.price_per_kwh, s.price_per_kwh);
        }
    }

    #[test]
    fn periodic_price_looks_one_period_back() {
        let states = sample_states(6, 4, 7);
        let mut p = PeriodicPricePredictor::new(3);
        for s in &states[..6] {
            p.observe(s);
        }
        // Predicting slot 6: price from slot 3, the rest from slot 5.
        let hat = p.predict(6).unwrap();
        assert_eq!(hat.price_per_kwh, states[3].price_per_kwh);
        assert_eq!(hat.task_cycles, states[5].task_cycles);
        // A phase gap (never observed slot 7's phase minus a period at the
        // right distance) refuses to forecast: slot 10 needs slot 7.
        assert!(p.predict(10).is_none());
    }

    #[test]
    fn markov_ewma_smooths_the_channel() {
        let states = sample_states(5, 5, 3);
        let mut p = MarkovEwmaPredictor::new(0.5);
        p.observe(&states[0]);
        p.observe(&states[1]);
        let hat = p.predict(2).unwrap();
        let want =
            0.5 * states[1].spectral_efficiency[0][0] + 0.5 * states[0].spectral_efficiency[0][0];
        assert!((hat.spectral_efficiency[0][0] - want).abs() < 1e-12);
        // Non-channel states come from the last observation.
        assert_eq!(hat.data_bits, states[1].data_bits);
    }

    #[test]
    fn adversarial_predictions_always_miss() {
        let states = sample_states(5, 6, 5);
        let mut p = AdversarialPredictor::new(9);
        for s in &states {
            p.observe(s);
            let hat = p.predict(s.slot + 1).unwrap();
            let mut next = s.clone();
            next.slot = s.slot + 1;
            // Every scalar is scaled ≥ 1.5×: the relative delta to any
            // real state in the paper ranges stays far above 0.3.
            assert!(hat.max_relative_delta(&next) > 0.3);
        }
    }

    #[test]
    fn predictor_kind_parses_cli_names() {
        assert_eq!(PredictorKind::parse("last-value", 24), Some(PredictorKind::LastValue));
        assert_eq!(
            PredictorKind::parse("periodic-price", 12),
            Some(PredictorKind::PeriodicPrice { period: 12 })
        );
        assert_eq!(
            PredictorKind::parse("markov-ewma", 24),
            Some(PredictorKind::MarkovEwma { alpha: 0.5 })
        );
        assert_eq!(PredictorKind::parse("adversarial", 24), Some(PredictorKind::Adversarial));
        assert_eq!(PredictorKind::parse("oracle", 24), None);
    }

    mod purity {
        use super::*;
        use proptest::prelude::*;

        fn kind_from(selector: usize, period: usize, alpha: f64) -> PredictorKind {
            match selector % 4 {
                0 => PredictorKind::LastValue,
                1 => PredictorKind::PeriodicPrice { period },
                2 => PredictorKind::MarkovEwma { alpha },
                _ => PredictorKind::Adversarial,
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

            /// Every predictor is a pure function of (history, seed): two
            /// instances fed the same recorded trace forecast bit-identically
            /// at every step — including repeated predict calls.
            #[test]
            fn predictors_are_pure_functions_of_history_and_seed(
                selector in 0usize..4,
                period in 1usize..40,
                alpha in 0.05f64..1.0,
                seed in 0u64..1_000,
                trace_seed in 0u64..1_000,
                slots in 1u64..30,
            ) {
                let kind = kind_from(selector, period, alpha);
                let states = sample_states(4, trace_seed, slots);
                let mut a = kind.build(seed);
                let mut b = kind.build(seed);
                for s in &states {
                    a.observe(s);
                    b.observe(s);
                    let next = s.slot + 1;
                    let ha = a.predict(next);
                    prop_assert_eq!(&ha, &b.predict(next));
                    // predict must not mutate: ask again.
                    prop_assert_eq!(&ha, &a.predict(next));
                }
            }
        }
    }
}
