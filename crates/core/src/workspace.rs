//! Reusable per-slot solver state (the zero-rebuild engine).
//!
//! `P2aProblem::build` allocates a strategy vector per device per BDMA
//! round — ~19k small allocations per slot at 200 devices — even though the
//! game's shape is a pure function of the (fixed) topology. A
//! [`SlotWorkspace`] owns one [`P2aProblem`] and a frequency buffer across
//! slots: the first call builds, every later call refreshes weights in
//! place ([`P2aProblem::rebuild`] per slot, and
//! [`P2aProblem::update_frequencies`] per BDMA round via
//! [`SlotWorkspace::refresh_frequencies`]). Refreshing recomputes the exact
//! expressions `build` uses, so results are bit-identical — pinned by the
//! `solve_p2_reference` equivalence tests.
//!
//! A workspace must be reused with the *same* [`MecSystem`]; a system with
//! a different topology shape triggers a fresh build
//! ([`P2aProblem::matches_system`]).

use eotora_states::SystemState;

use crate::checkpoint::WorkspaceSnapshot;
use crate::p2a::P2aProblem;
use crate::system::MecSystem;

/// Caches the P2-A problem and the working frequency vector across slots so
/// the steady-state solve path never rebuilds the game from scratch.
#[derive(Debug, Clone, Default)]
pub struct SlotWorkspace {
    problem: Option<P2aProblem>,
    freqs: Vec<f64>,
    /// Strategy choices of the previous slot's incumbent P2 solution —
    /// the warm seed for the next slot's P2-A solve (empty until a warm
    /// solve retains one).
    retained_choices: Vec<usize>,
    has_retained_choices: bool,
    /// Frequencies `Ω̄` of the previous slot's incumbent — the warm
    /// replacement for the `Ω ← Ω^L` initialization of Alg. 2 line 1.
    retained_freqs: Vec<f64>,
    /// Whether the previous slot's cold probe beat the warm chain — a
    /// signal that the retained basin is going stale, so the next slot
    /// should probe even if its baseline probe rate would skip it.
    probe_hot: bool,
}

impl SlotWorkspace {
    /// An empty workspace; the first [`SlotWorkspace::prepare`] builds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Readies the P2-A problem for `state` at `freqs_hz`: refreshes the
    /// cached instance in place, or builds one if the workspace is empty or
    /// the system shape changed. Also latches `freqs_hz` as the working
    /// frequencies.
    pub fn prepare(
        &mut self,
        system: &MecSystem,
        state: &SystemState,
        freqs_hz: &[f64],
    ) -> &P2aProblem {
        self.set_freqs(freqs_hz);
        match &mut self.problem {
            Some(problem) if problem.matches_system(system) => {
                problem.rebuild(system, state, freqs_hz);
            }
            slot => *slot = Some(P2aProblem::build(system, state, freqs_hz)),
        }
        self.problem.as_ref().expect("problem just prepared")
    }

    /// Applies the latched working frequencies to the cached problem's
    /// server weights — the between-rounds step of BDMA, after
    /// [`SlotWorkspace::set_freqs`] recorded the P2-B result.
    ///
    /// # Panics
    ///
    /// Panics if the workspace has no prepared problem.
    pub fn refresh_frequencies(&mut self, system: &MecSystem) -> &P2aProblem {
        let problem = self.problem.as_mut().expect("prepare before refresh_frequencies");
        problem.update_frequencies(system, &self.freqs);
        problem
    }

    /// Copies `freqs_hz` into the retained working buffer (no allocation in
    /// steady state).
    pub fn set_freqs(&mut self, freqs_hz: &[f64]) {
        self.freqs.clear();
        self.freqs.extend_from_slice(freqs_hz);
    }

    /// The latched working frequencies.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// The cached problem, if any slot has been prepared yet.
    pub fn problem(&self) -> Option<&P2aProblem> {
        self.problem.as_ref()
    }

    /// Retains the incumbent `(choices, Ω̄)` of a completed slot solve as
    /// the warm seed for the next slot (see
    /// [`crate::bdma::StartPolicy::Warm`]). Reuses the internal buffers, so
    /// steady-state retention is allocation-free.
    pub fn retain_solution(&mut self, choices: &[usize], freqs_hz: &[f64]) {
        self.retained_choices.clear();
        self.retained_choices.extend_from_slice(choices);
        self.has_retained_choices = true;
        self.retained_freqs.clear();
        self.retained_freqs.extend_from_slice(freqs_hz);
    }

    /// The retained previous-slot strategy choices, if a warm solve has
    /// retained any. Repair against the current game is the consumer's job
    /// ([`eotora_game::Profile::from_retained_choices`]).
    pub fn retained_choices(&self) -> Option<&[usize]> {
        self.has_retained_choices.then_some(self.retained_choices.as_slice())
    }

    /// The retained previous-slot frequencies, if any.
    pub fn retained_freqs(&self) -> Option<&[f64]> {
        (!self.retained_freqs.is_empty()).then_some(self.retained_freqs.as_slice())
    }

    /// Whether the previous slot's exploration probe beat the warm chain
    /// (see [`crate::bdma::StartPolicy::Warm`]'s probe schedule).
    pub fn probe_hot(&self) -> bool {
        self.probe_hot
    }

    /// Records whether this slot's probe beat the warm chain, raising the
    /// next slot's probe rate while probes keep winning.
    pub fn set_probe_hot(&mut self, hot: bool) {
        self.probe_hot = hot;
    }

    /// Replaces this workspace wholesale with a staged clone that ran the
    /// speculative pre-solve (see [`crate::speculate`]). Only valid when
    /// the predicted state the clone solved equals the observed state —
    /// then the clone's problem cache, retained incumbent, and probe heat
    /// are exactly what a plain in-place solve would have left behind.
    pub fn adopt_from(&mut self, staged: SlotWorkspace) {
        *self = staged;
    }

    /// Drops any retained warm-start state (the next warm slot falls back
    /// to a cold start). Used when the controlled system changes shape.
    pub fn clear_retained(&mut self) {
        self.retained_choices.clear();
        self.has_retained_choices = false;
        self.retained_freqs.clear();
        self.probe_hot = false;
    }

    /// Serializable image of the cross-slot state (retained incumbent +
    /// probe heat). The cached `P2aProblem` is excluded: it is rebuilt from
    /// the system and the next observation with identical numerics.
    pub fn snapshot(&self) -> WorkspaceSnapshot {
        WorkspaceSnapshot {
            retained_choices: self.retained_choices.clone(),
            has_retained_choices: self.has_retained_choices,
            retained_freqs: self.retained_freqs.clone(),
            probe_hot: self.probe_hot,
        }
    }

    /// Restores the cross-slot state from a snapshot. The problem cache is
    /// dropped; the next [`SlotWorkspace::prepare`] rebuilds it.
    pub fn restore(&mut self, snapshot: &WorkspaceSnapshot) {
        self.problem = None;
        self.freqs.clear();
        self.retained_choices.clear();
        self.retained_choices.extend_from_slice(&snapshot.retained_choices);
        self.has_retained_choices = snapshot.has_retained_choices;
        self.retained_freqs.clear();
        self.retained_freqs.extend_from_slice(&snapshot.retained_freqs);
        self.probe_hot = snapshot.probe_hot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};

    #[test]
    fn prepare_reuses_and_matches_fresh_build() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(14), 71);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), 71);
        let mut ws = SlotWorkspace::new();
        assert!(ws.problem().is_none());
        for slot in 0..4 {
            let state = provider.observe(slot, system.topology());
            let freqs =
                if slot % 2 == 0 { system.min_frequencies() } else { system.max_frequencies() };
            let prepared = ws.prepare(&system, &state, &freqs);
            let fresh = P2aProblem::build(&system, &state, &freqs);
            assert_eq!(prepared.game(), fresh.game(), "slot {slot}");
        }
    }

    #[test]
    fn refresh_frequencies_matches_fresh_build() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(10), 72);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), 72);
        let state = provider.observe(0, system.topology());
        let mut ws = SlotWorkspace::new();
        ws.prepare(&system, &state, &system.min_frequencies());
        let freqs = system.max_frequencies();
        ws.set_freqs(&freqs);
        let refreshed = ws.refresh_frequencies(&system);
        let fresh = P2aProblem::build(&system, &state, &freqs);
        assert_eq!(refreshed.game(), fresh.game());
    }

    #[test]
    fn retained_solution_round_trips() {
        let mut ws = SlotWorkspace::new();
        assert!(ws.retained_choices().is_none());
        assert!(ws.retained_freqs().is_none());
        ws.retain_solution(&[1, 0, 2], &[2.0e9, 3.0e9]);
        assert_eq!(ws.retained_choices(), Some(&[1usize, 0, 2][..]));
        assert_eq!(ws.retained_freqs(), Some(&[2.0e9, 3.0e9][..]));
        ws.clear_retained();
        assert!(ws.retained_choices().is_none());
        assert!(ws.retained_freqs().is_none());
    }

    #[test]
    fn shape_change_triggers_fresh_build() {
        let small = MecSystem::random(&SystemConfig::paper_defaults(6), 73);
        let large = MecSystem::random(&SystemConfig::paper_defaults(9), 73);
        let mut sp = StateProvider::paper(small.topology(), &PaperStateConfig::default(), 73);
        let mut lp = StateProvider::paper(large.topology(), &PaperStateConfig::default(), 73);
        let small_state = sp.observe(0, small.topology());
        let large_state = lp.observe(0, large.topology());
        let mut ws = SlotWorkspace::new();
        ws.prepare(&small, &small_state, &small.min_frequencies());
        let prepared = ws.prepare(&large, &large_state, &large.min_frequencies());
        let fresh = P2aProblem::build(&large, &large_state, &large.min_frequencies());
        assert_eq!(prepared.game(), fresh.game());
    }
}
