//! `eotora-core` — the paper's primary contribution: **E**nergy-aware
//! **O**nline **T**ask **O**ffloading and **R**esource **A**llocation for
//! mobile edge computing (Liu et al., ICDCS 2023).
//!
//! # Problem
//!
//! Each slot `t`, every mobile device generates a task (`f_{i,t}` cycles,
//! `d_{i,t}` bits). The controller observes `β_t = (f_t, d_t, h_t, p_t)` and
//! picks `α_t = (x_t, y_t, Ψ_t, Φ_t, Ω_t)` — base station, server, bandwidth
//! shares, compute shares, and per-server clock frequencies — to minimize
//! long-run average latency subject to the time-average energy-cost budget
//! `C̄` (problem *EOTORA*).
//!
//! # Pipeline (one module per paper artifact)
//!
//! | Module | Paper | Content |
//! |---|---|---|
//! | [`system`] | §III-A | [`system::MecSystem`]: topology + energy models + suitability `σ_{i,n}` + budget |
//! | [`decision`] | §III-B | decision types and feasibility validation (constraints (1)–(6)) |
//! | [`allocation`] | Lemma 1 | closed-form optimal `Φ*, Ψ*` |
//! | [`latency`] | eqs. (7)–(11), (18)–(20) | latency under arbitrary and optimal allocations |
//! | [`p2a`] | §V-B | the P2-A ↔ weighted-congestion-game mapping |
//! | [`p2b`] | §V-A | separable convex frequency scaling (the CVX substitute) |
//! | [`bdma`] | Alg. 2 | BDMA(z): alternate P2-A and P2-B, keep the best |
//! | [`dpp`] | Alg. 1 | BDMA-based DPP online controller (plugs into `eotora-lyapunov`) |
//! | [`workspace`] | — | [`workspace::SlotWorkspace`]: reusable per-slot solver state (zero-rebuild engine) |
//! | [`baselines`] | §VI | ROPT, MCBA (MCMC), and the exact branch-and-bound optimum |
//! | [`fault`] | — | [`fault::AvailabilityMask`] + [`fault::FaultSchedule`]: failure model and scripted traces |
//! | [`robust`] | — | [`robust::solve_p2_robust`]: fault-masked anytime solve with checkpointed incumbents |
//! | [`sharded`] | — | [`sharded::ShardedCgbaSolver`]: per-cluster CGBA subgames solved in parallel and merged deterministically |
//! | [`speculate`] | — | [`speculate::SpeculativeController`]: predicted next-slot pre-solve staged off the critical path, adopted/repaired/discarded at slot start |
//! | [`sanitize`] | — | [`sanitize::StateSanitizer`]: `β_t` validation with last-known-good substitution |
//! | [`checkpoint`] | — | [`checkpoint::ControllerState`]: full serializable resume state (queue + workspace + sanitizer) |
//! | [`error`] | — | [`error::SolveError`]: typed recoverable failures for the degradation ladder |
//!
//! # Examples
//!
//! ```
//! use eotora_core::dpp::{DppConfig, EotoraDpp};
//! use eotora_core::system::{MecSystem, SystemConfig};
//! use eotora_states::{PaperStateConfig, StateProvider};
//!
//! let system = MecSystem::random(&SystemConfig::paper_defaults(20), 7);
//! let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 7);
//! let mut controller = EotoraDpp::new(system.clone(), DppConfig::default());
//!
//! for slot in 0..3 {
//!     let beta = states.observe(slot, controller.system().topology());
//!     let step = controller.step(&beta);
//!     assert!(step.outcome.objective > 0.0);
//! }
//! ```

pub mod allocation;
pub mod baselines;
pub mod bdma;
pub mod checkpoint;
pub mod decision;
pub mod dpp;
pub mod error;
pub mod fault;
pub mod latency;
pub mod multi_budget;
pub mod p1;
pub mod p2a;
pub mod p2b;
pub mod per_slot;
pub mod robust;
pub mod sanitize;
pub mod sharded;
pub mod speculate;
pub mod system;
pub mod workspace;

pub use checkpoint::{ControllerState, SanitizerSnapshot, WorkspaceSnapshot};
pub use decision::{Assignment, SlotDecision};
pub use dpp::{DppConfig, EotoraDpp};
pub use error::SolveError;
pub use fault::{AvailabilityMask, FaultAction, FaultEvent, FaultSchedule};
pub use multi_budget::MultiBudgetDpp;
pub use per_slot::PerSlotController;
pub use robust::{solve_p2_robust, RobustConfig, RobustReport};
pub use sanitize::{SanitizeDefaults, SanitizeLimits, StateSanitizer};
pub use sharded::{cgba_sharded_filtered, ShardedCgbaSolver, ShardedFilteredOutcome};
pub use speculate::{
    PredictorKind, SpecOutcome, SpeculativeConfig, SpeculativeController, Speculator,
    StatePredictor,
};
pub use system::{MecSystem, SystemConfig};
pub use workspace::SlotWorkspace;
