//! P2-B: frequency scaling with `(x, y)` fixed (paper §V-A).
//!
//! P2-B minimizes `V·T_t + Q(t)·Θ(Ω_t, p_t)` over the frequency box. Both
//! terms separate across servers:
//!
//! ```text
//! min_{ω_n ∈ [F^L_n, F^U_n]}   V·A_n/ω_n  +  Q·κ·p_t·g_n(ω_n)
//! ```
//!
//! where `A_n = (Σ_{i→n} √(f_i/σ_{i,n}))² / cores_n` is the server's
//! processing-load constant and `κ` converts watts to $/slot. Each term is
//! convex (`A/ω` is convex, `g_n` convex by assumption), so the paper's CVX
//! call is replaced with one derivative bisection per server —
//! machine-precision KKT solutions in microseconds.

use eotora_optim::cubic::root_in_interval;
use eotora_optim::scalar::minimize_bisection;
use eotora_states::SystemState;
use eotora_topology::ServerId;

use crate::decision::Assignment;
use crate::system::MecSystem;

/// Result of a P2-B solve.
#[derive(Debug, Clone, PartialEq)]
pub struct P2bSolution {
    /// Optimal per-server frequencies `Ω*` in Hz.
    pub freqs_hz: Vec<f64>,
    /// `V·T_t + Q·Θ` at the optimum (the P2 objective, constant terms
    /// included).
    pub objective: f64,
}

/// Per-server processing-load constants
/// `A_n = (Σ_{i→n} √(f_i/σ_{i,n}))² / cores_n`, such that
/// `T^P_t = Σ_n A_n / ω_n`.
pub fn processing_loads(
    system: &MecSystem,
    state: &SystemState,
    assignments: &[Assignment],
) -> Vec<f64> {
    let topo = system.topology();
    assert_eq!(assignments.len(), topo.num_devices(), "one assignment per device");
    let mut roots = vec![0.0; topo.num_servers()];
    for (i, a) in assignments.iter().enumerate() {
        roots[a.server.index()] += (state.task_cycles[i]
            / system.suitability(eotora_topology::DeviceId(i), a.server))
        .sqrt();
    }
    roots.iter().enumerate().map(|(n, &r)| r * r / topo.server(ServerId(n)).cores as f64).collect()
}

/// Solves P2-B exactly (to bisection tolerance) for the given assignment.
///
/// `v` is the DPP penalty weight, `queue` the backlog `Q(t)`. Returns the
/// optimal frequencies and the resulting full P2 objective
/// `V·T_t + Q·(C_t − C̄)` — including the communication latency, which is
/// constant in `Ω` but part of the objective BDMA compares across rounds.
///
/// # Panics
///
/// Panics if dimensions mismatch or `v` is not positive.
pub fn solve_p2b(
    system: &MecSystem,
    state: &SystemState,
    assignments: &[Assignment],
    v: f64,
    queue: f64,
) -> P2bSolution {
    assert!(v > 0.0, "penalty weight must be positive");
    assert!(queue >= 0.0, "queue backlog cannot be negative");
    let topo = system.topology();
    let loads = processing_loads(system, state, assignments);
    let kwh_factor = system.slot_hours() / 1000.0; // watts → $/slot at unit price
    let price = state.price_per_kwh;

    let freqs_hz: Vec<f64> = topo
        .server_ids()
        .map(|n| {
            let srv = topo.server(n);
            let a_n = loads[n.index()];
            let model = system.energy_model(n);
            let cost_w = queue * price * kwh_factor;
            let f = |w: f64| v * a_n / w + cost_w * model.power_watts(w);
            let df = |w: f64| -v * a_n / (w * w) + cost_w * model.power_derivative(w);
            if a_n == 0.0 {
                // Unloaded server: latency term vanishes; with any queue
                // pressure the cheapest feasible frequency is optimal.
                srv.freq_min_hz
            } else if cost_w > 0.0 {
                // Quadratic models admit a closed form: stationarity
                // V·A/ω² = c_w·(2a·ω/1e18 + b/1e9) is a cubic in ω.
                if let Some(q) = model.as_quadratic() {
                    let c3 = 2.0 * q.a * cost_w / 1e18;
                    let c2 = q.b * cost_w / 1e9;
                    match root_in_interval(
                        c3,
                        c2,
                        0.0,
                        -(v * a_n),
                        srv.freq_min_hz,
                        srv.freq_max_hz,
                    ) {
                        Some(w) => w,
                        // No interior stationary point: optimum at whichever
                        // bound the derivative sign selects.
                        None => {
                            if df(srv.freq_min_hz) >= 0.0 {
                                srv.freq_min_hz
                            } else {
                                srv.freq_max_hz
                            }
                        }
                    }
                } else {
                    minimize_bisection(f, df, srv.freq_min_hz, srv.freq_max_hz, 1.0, 200).x
                }
            } else {
                minimize_bisection(f, df, srv.freq_min_hz, srv.freq_max_hz, 1.0, 200).x
            }
        })
        .collect();

    let latency = crate::latency::optimal_latency(system, state, assignments, &freqs_hz).total();
    let excess = system.constraint_excess(price, &freqs_hz);
    P2bSolution { objective: v * latency + queue * excess, freqs_hz }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};
    use eotora_topology::BaseStationId;
    use eotora_util::assert_close;
    use eotora_util::rng::Pcg32;

    fn setup(devices: usize, seed: u64) -> (MecSystem, SystemState, Vec<Assignment>) {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = p.observe(0, system.topology());
        let topo = system.topology();
        let mut rng = Pcg32::seed(seed);
        let assignments = (0..devices)
            .map(|_| {
                let k = BaseStationId(rng.below(topo.num_base_stations()));
                let server = *rng.pick(&topo.servers_reachable_from(k)).unwrap();
                Assignment { base_station: k, server }
            })
            .collect();
        (system, state, assignments)
    }

    #[test]
    fn zero_queue_maxes_out_frequencies() {
        // With no queue pressure the objective is pure latency: every loaded
        // server should run at F^U.
        let (system, state, assignments) = setup(20, 31);
        let sol = solve_p2b(&system, &state, &assignments, 100.0, 0.0);
        let loads = processing_loads(&system, &state, &assignments);
        for (n, &f) in sol.freqs_hz.iter().enumerate() {
            if loads[n] > 0.0 {
                assert_close!(f, system.topology().server(ServerId(n)).freq_max_hz, 1e-6);
            } else {
                assert_close!(f, system.topology().server(ServerId(n)).freq_min_hz, 1e-6);
            }
        }
    }

    #[test]
    fn huge_queue_pins_frequencies_low() {
        let (system, state, assignments) = setup(20, 32);
        let sol = solve_p2b(&system, &state, &assignments, 1.0, 1e12);
        for (n, &f) in sol.freqs_hz.iter().enumerate() {
            assert_close!(f, system.topology().server(ServerId(n)).freq_min_hz, 1e-3);
        }
    }

    #[test]
    fn frequencies_decrease_as_queue_grows() {
        let (system, state, assignments) = setup(30, 33);
        let qs = [0.0, 50.0, 500.0, 5_000.0];
        let mut mean_freqs = Vec::new();
        for &q in &qs {
            let sol = solve_p2b(&system, &state, &assignments, 100.0, q);
            mean_freqs.push(sol.freqs_hz.iter().sum::<f64>() / sol.freqs_hz.len() as f64);
        }
        for w in mean_freqs.windows(2) {
            assert!(w[1] <= w[0] + 1.0, "frequencies should fall with queue: {mean_freqs:?}");
        }
    }

    #[test]
    fn solution_satisfies_kkt_stationarity() {
        // Interior solutions must zero the per-server derivative.
        let (system, state, assignments) = setup(40, 34);
        let (v, q) = (100.0, 800.0);
        let sol = solve_p2b(&system, &state, &assignments, v, q);
        let loads = processing_loads(&system, &state, &assignments);
        let kwh = system.slot_hours() / 1000.0;
        for n in system.topology().server_ids() {
            let srv = system.topology().server(n);
            let w = sol.freqs_hz[n.index()];
            if w > srv.freq_min_hz + 10.0 && w < srv.freq_max_hz - 10.0 {
                let g = -v * loads[n.index()] / (w * w)
                    + q * state.price_per_kwh * kwh * system.energy_model(n).power_derivative(w);
                // Derivative in natural units is tiny; compare against scale.
                let scale = v * loads[n.index()] / (w * w);
                assert!(g.abs() <= 1e-6 * scale.max(1e-300), "KKT violated at {n}: {g}");
            }
        }
    }

    #[test]
    fn beats_grid_search() {
        // The bisection optimum should match a fine grid search per server.
        let (system, state, assignments) = setup(10, 35);
        let (v, q) = (50.0, 300.0);
        let sol = solve_p2b(&system, &state, &assignments, v, q);
        let loads = processing_loads(&system, &state, &assignments);
        let kwh = system.slot_hours() / 1000.0;
        for n in system.topology().server_ids() {
            let srv = system.topology().server(n);
            let a_n = loads[n.index()];
            let obj = |w: f64| {
                v * a_n / w + q * state.price_per_kwh * kwh * system.energy_model(n).power_watts(w)
            };
            let ours = obj(sol.freqs_hz[n.index()]);
            for step in 0..=1000 {
                let w =
                    srv.freq_min_hz + (srv.freq_max_hz - srv.freq_min_hz) * step as f64 / 1000.0;
                assert!(obj(w) >= ours - 1e-9 * ours.abs().max(1.0), "grid beats bisection at {n}");
            }
        }
    }

    #[test]
    fn closed_form_matches_bisection() {
        // The Cardano fast path (quadratic models) must agree with the
        // generic bisection solver to solver tolerance across regimes.
        let (system, state, assignments) = setup(25, 38);
        for (v, q) in [(1.0, 10.0), (100.0, 5.0), (100.0, 800.0), (500.0, 50.0)] {
            let fast = solve_p2b(&system, &state, &assignments, v, q);
            let loads = processing_loads(&system, &state, &assignments);
            let kwh = system.slot_hours() / 1000.0;
            for n in system.topology().server_ids() {
                let srv = system.topology().server(n);
                let a_n = loads[n.index()];
                if a_n == 0.0 {
                    continue;
                }
                let model = system.energy_model(n);
                let cost_w = q * state.price_per_kwh * kwh;
                let slow = eotora_optim::scalar::minimize_bisection(
                    |w| v * a_n / w + cost_w * model.power_watts(w),
                    |w| -v * a_n / (w * w) + cost_w * model.power_derivative(w),
                    srv.freq_min_hz,
                    srv.freq_max_hz,
                    1e-3,
                    300,
                );
                let w_fast = fast.freqs_hz[n.index()];
                assert!(
                    (w_fast - slow.x).abs() <= 1.0,
                    "server {n} at (v={v}, q={q}): closed {w_fast} vs bisection {}",
                    slow.x
                );
            }
        }
    }

    #[test]
    fn objective_composition() {
        let (system, state, assignments) = setup(8, 36);
        let (v, q) = (75.0, 120.0);
        let sol = solve_p2b(&system, &state, &assignments, v, q);
        let lat =
            crate::latency::optimal_latency(&system, &state, &assignments, &sol.freqs_hz).total();
        let excess = system.constraint_excess(state.price_per_kwh, &sol.freqs_hz);
        assert_close!(sol.objective, v * lat + q * excess, 1e-9);
    }

    #[test]
    fn processing_loads_shape_and_units() {
        let (system, state, assignments) = setup(6, 37);
        let loads = processing_loads(&system, &state, &assignments);
        assert_eq!(loads.len(), system.topology().num_servers());
        // T^P at frequency ω equals Σ A_n/ω_n.
        let freqs = system.max_frequencies();
        let direct: f64 = loads.iter().zip(&freqs).map(|(&a, &w)| a / w).sum();
        let closed =
            crate::latency::optimal_latency(&system, &state, &assignments, &freqs).processing;
        assert_close!(direct, closed, 1e-9);
    }
}
