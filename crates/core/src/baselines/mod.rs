//! Baseline solvers for P2-A (paper §VI-B).
//!
//! * [`RoptSolver`] — each device picks a uniformly random feasible
//!   (station, server) pair; resource allocation stays optimal via Lemma 1.
//! * [`McbaSolver`] — Markov-chain Monte Carlo over strategy profiles
//!   (Ma et al., INFOCOM 2020): single-device proposals accepted with
//!   Metropolis probability under a cooling temperature; best-seen profile
//!   returned.
//! * [`GreedySolver`] — deterministic heaviest-first marginal-cost
//!   assignment (one pass; also a good warm start).
//! * [`BetaOnlyPolicy`] — the hindsight-tuned stationary Lagrangian policy
//!   of Lemma 2, the benchmark Theorem 4 compares DPP against.
//! * [`ExactSolver`] — the Gurobi replacement: best-first branch-and-bound
//!   over device assignments with an admissible marginal-cost bound,
//!   optionally warm-started by CGBA. Exact on small instances; on large
//!   ones returns the incumbent plus a certified lower bound.

mod beta_only;
mod exact;
mod greedy;
mod mcba;
mod ropt;

pub use beta_only::{BetaOnlyPolicy, BetaOnlyRun};
pub use exact::{ExactReport, ExactSolver};
pub use greedy::GreedySolver;
pub use mcba::{McbaConfig, McbaSolver};
pub use ropt::RoptSolver;
