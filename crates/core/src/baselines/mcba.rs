//! MCBA: Markov chain Monte Carlo-Based Algorithm (paper baseline [36]).
//!
//! A Metropolis sampler over strategy profiles: propose changing one random
//! device to one random alternative strategy and accept with probability
//! `min(1, exp(−ΔT / temp))`, where `ΔT` is the change in total latency.
//! The temperature cools geometrically, and the best profile ever visited is
//! returned. This matches the paper's description of [36]: "a probabilistic
//! algorithm that randomly moves between neighboring decisions with a
//! probability related to the objective values" — it converges to the
//! optimum in distribution but needs many more iterations than CGBA
//! (the paper's Fig. 4–5 comparison, reproduced in the benches).

use eotora_game::Profile;
use eotora_obs::Recorder;
use eotora_util::rng::Pcg32;

use crate::bdma::P2aSolver;
use crate::p2a::P2aProblem;

/// Parameters of the MCMC sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McbaConfig {
    /// Number of proposal steps.
    pub iterations: usize,
    /// Initial temperature as a fraction of the starting per-device latency
    /// (scale-free across instances).
    pub initial_temperature_rel: f64,
    /// Geometric cooling multiplier applied each step (in `(0, 1]`).
    pub cooling: f64,
}

impl Default for McbaConfig {
    fn default() -> Self {
        Self { iterations: 5_000, initial_temperature_rel: 0.05, cooling: 0.999 }
    }
}

/// The MCBA baseline solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct McbaSolver {
    /// Sampler parameters.
    pub config: McbaConfig,
}

impl McbaSolver {
    /// Creates a solver with a custom iteration budget.
    pub fn with_iterations(iterations: usize) -> Self {
        Self { config: McbaConfig { iterations, ..Default::default() } }
    }
}

impl P2aSolver for McbaSolver {
    fn name(&self) -> &'static str {
        "MCBA"
    }

    fn solve(&mut self, problem: &P2aProblem, rng: &mut Pcg32) -> Vec<usize> {
        self.solve_with(problem, rng, &eotora_obs::NoopRecorder)
    }

    fn solve_with(
        &mut self,
        problem: &P2aProblem,
        rng: &mut Pcg32,
        recorder: &dyn Recorder,
    ) -> Vec<usize> {
        let game = problem.game();
        let n = game.num_players();
        let mut profile = Profile::random(game, rng);
        let mut cost = profile.total_cost(game);
        let mut best_choices = profile.choices().to_vec();
        let mut best_cost = cost;
        let mut temp = (cost / n as f64) * self.config.initial_temperature_rel;
        let mut accepted = 0u64;

        for _ in 0..self.config.iterations {
            let i = rng.below(n);
            let n_strat = problem.num_strategies(i);
            if n_strat <= 1 {
                continue;
            }
            let old = profile.choices()[i];
            let mut proposal = rng.below(n_strat);
            if proposal == old {
                proposal = (proposal + 1) % n_strat;
            }
            profile.switch(game, i, proposal);
            let new_cost = profile.total_cost(game);
            let delta = new_cost - cost;
            let accept = delta <= 0.0 || { temp > 0.0 && rng.uniform() < (-delta / temp).exp() };
            if accept {
                accepted += 1;
                cost = new_cost;
                if cost < best_cost {
                    best_cost = cost;
                    best_choices = profile.choices().to_vec();
                }
            } else {
                profile.switch(game, i, old);
            }
            temp *= self.config.cooling;
        }
        if recorder.is_enabled() {
            recorder.add(eotora_obs::COUNTER_MCBA_PROPOSALS, self.config.iterations as u64);
            recorder.add(eotora_obs::COUNTER_MCBA_ACCEPTED, accepted);
        }
        best_choices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{MecSystem, SystemConfig};
    use eotora_states::{PaperStateConfig, StateProvider};

    fn setup(devices: usize, seed: u64) -> (MecSystem, P2aProblem) {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = p.observe(0, system.topology());
        let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
        (system, p2a)
    }

    #[test]
    fn improves_over_random_start() {
        let (_, p2a) = setup(20, 61);
        let mut rng = Pcg32::seed(1);
        let random_cost = p2a
            .total_latency(&(0..20).map(|i| rng.below(p2a.num_strategies(i))).collect::<Vec<_>>());
        let mut solver = McbaSolver::default();
        let choices = solver.solve(&p2a, &mut rng);
        let mcba_cost = p2a.total_latency(&choices);
        assert!(mcba_cost < random_cost, "{mcba_cost} !< {random_cost}");
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let (_, p2a) = setup(15, 62);
        let cost = |iters: usize, seed: u64| {
            let mut rng = Pcg32::seed(seed);
            let mut solver = McbaSolver::with_iterations(iters);
            p2a.total_latency(&solver.solve(&p2a, &mut rng))
        };
        // Average over seeds; MCMC is noisy per-run.
        let short: f64 = (0..5).map(|s| cost(200, s)).sum::<f64>() / 5.0;
        let long: f64 = (0..5).map(|s| cost(5_000, s)).sum::<f64>() / 5.0;
        assert!(long <= short * 1.02, "long {long} vs short {short}");
    }

    #[test]
    fn worse_than_or_close_to_cgba_on_average() {
        // The paper's Fig. 4 ordering: CGBA ≤ MCBA.
        use crate::bdma::{CgbaSolver, P2aSolver as _};
        let (_, p2a) = setup(25, 63);
        let mut mcba_sum = 0.0;
        let mut cgba_sum = 0.0;
        for seed in 0..5u64 {
            let mut rng = Pcg32::seed(seed);
            let mut m = McbaSolver::default();
            mcba_sum += p2a.total_latency(&m.solve(&p2a, &mut rng));
            let mut rng = Pcg32::seed(seed);
            let mut c = CgbaSolver::default();
            cgba_sum += p2a.total_latency(&c.solve(&p2a, &mut rng));
        }
        assert!(cgba_sum <= mcba_sum * 1.01, "cgba {cgba_sum} vs mcba {mcba_sum}");
    }

    #[test]
    fn handles_single_strategy_players() {
        // Tiny topology where every base station reaches the same cluster —
        // proposals that cannot move should be skipped gracefully.
        let system = MecSystem::random(&SystemConfig::tiny(3), 64);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 64);
        let state = p.observe(0, system.topology());
        let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
        let mut rng = Pcg32::seed(2);
        let mut solver = McbaSolver::with_iterations(100);
        let choices = solver.solve(&p2a, &mut rng);
        assert_eq!(choices.len(), 3);
    }
}
