//! Greedy marginal-cost assignment — a classic deterministic baseline for
//! min-Σ-load² problems, between ROPT and CGBA in quality.
//!
//! Devices are processed in descending order of compute demand (heaviest
//! first, the standard LPT-style ordering) and each takes the strategy with
//! the smallest *marginal* increase of the social cost against the loads
//! committed so far. One pass, no iteration — `O(I log I + I·S)` — so it is
//! also a useful warm start for CGBA and branch-and-bound.

use eotora_util::rng::Pcg32;

use crate::bdma::P2aSolver;
use crate::p2a::P2aProblem;

/// The greedy marginal-cost P2-A solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySolver;

impl GreedySolver {
    /// Runs the greedy pass and returns the strategy choices.
    pub fn assign(problem: &P2aProblem) -> Vec<usize> {
        let game = problem.game();
        let n_players = game.num_players();
        // Heaviest-first: order by each player's best-case standalone cost,
        // descending, so big tasks claim uncontended resources early.
        let mut order: Vec<usize> = (0..n_players).collect();
        let standalone: Vec<f64> = (0..n_players)
            .map(|i| {
                game.strategies(i)
                    .iter()
                    .map(|s| s.iter().map(|&(r, w)| game.resource_weight(r) * w * w).sum::<f64>())
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        order.sort_by(|&a, &b| standalone[b].partial_cmp(&standalone[a]).expect("finite costs"));

        let mut loads = vec![0.0; game.num_resources()];
        let mut choices = vec![0usize; n_players];
        for &i in &order {
            let mut best = (0usize, f64::INFINITY);
            for (s, strat) in game.strategies(i).iter().enumerate() {
                let marginal: f64 = strat
                    .iter()
                    .map(|&(r, w)| game.resource_weight(r) * (2.0 * loads[r] * w + w * w))
                    .sum();
                if marginal < best.1 {
                    best = (s, marginal);
                }
            }
            choices[i] = best.0;
            for &(r, w) in &game.strategies(i)[best.0] {
                loads[r] += w;
            }
        }
        choices
    }
}

impl P2aSolver for GreedySolver {
    fn name(&self) -> &'static str {
        "GREEDY"
    }

    fn solve(&mut self, problem: &P2aProblem, _rng: &mut Pcg32) -> Vec<usize> {
        Self::assign(problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RoptSolver;
    use crate::bdma::CgbaSolver;
    use crate::system::{MecSystem, SystemConfig};
    use eotora_states::{PaperStateConfig, StateProvider};

    fn p2a(devices: usize, seed: u64) -> P2aProblem {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = p.observe(0, system.topology());
        P2aProblem::build(&system, &state, &system.min_frequencies())
    }

    #[test]
    fn greedy_is_deterministic() {
        let p = p2a(15, 71);
        assert_eq!(GreedySolver::assign(&p), GreedySolver::assign(&p));
    }

    #[test]
    fn greedy_beats_random_on_average() {
        let mut greedy_sum = 0.0;
        let mut ropt_sum = 0.0;
        for seed in 0..5u64 {
            let p = p2a(20, 72 + seed);
            greedy_sum += p.total_latency(&GreedySolver::assign(&p));
            let mut rng = Pcg32::seed(seed);
            let mut ropt = RoptSolver;
            ropt_sum += p.total_latency(&ropt.solve(&p, &mut rng));
        }
        assert!(greedy_sum < ropt_sum, "greedy {greedy_sum} vs ropt {ropt_sum}");
    }

    #[test]
    fn cgba_from_greedy_start_not_worse() {
        // CGBA run from the greedy profile: best-response moves only reduce
        // cost, so the outcome must be ≤ the greedy cost.
        use eotora_game::{cgba_from, CgbaConfig, Profile};
        let p = p2a(25, 80);
        let greedy = GreedySolver::assign(&p);
        let greedy_cost = p.total_latency(&greedy);
        let profile = Profile::from_choices(p.game(), greedy.clone());
        let report = cgba_from(p.game(), profile, &CgbaConfig::default());
        assert!(report.converged);
        assert!(report.total_cost <= greedy_cost + 1e-9);
        // And is an equilibrium, like any CGBA output.
        assert!(report.profile.is_lambda_equilibrium(p.game(), 0.0, 1e-9));
        let _ = CgbaSolver::default();
    }
}
