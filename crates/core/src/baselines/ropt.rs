//! ROPT: random selection with optimal resource allocation.

use eotora_util::rng::Pcg32;

use crate::bdma::P2aSolver;
use crate::p2a::P2aProblem;

/// The ROPT baseline: every device draws a feasible strategy uniformly at
/// random. Bandwidth/compute allocation remains optimal (Lemma 1), matching
/// the paper's description "each MD randomly chooses a base station and an
/// edge server and uses the optimal ... resource allocation decision".
#[derive(Debug, Clone, Copy, Default)]
pub struct RoptSolver;

impl P2aSolver for RoptSolver {
    fn name(&self) -> &'static str {
        "ROPT"
    }

    fn solve(&mut self, problem: &P2aProblem, rng: &mut Pcg32) -> Vec<usize> {
        (0..problem.game().num_players()).map(|i| rng.below(problem.num_strategies(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{MecSystem, SystemConfig};
    use eotora_states::{PaperStateConfig, StateProvider};

    #[test]
    fn produces_valid_choices() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(12), 51);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 51);
        let state = p.observe(0, system.topology());
        let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
        let mut rng = Pcg32::seed(1);
        let mut solver = RoptSolver;
        let choices = solver.solve(&p2a, &mut rng);
        assert_eq!(choices.len(), 12);
        for (i, &s) in choices.iter().enumerate() {
            assert!(s < p2a.num_strategies(i));
        }
        // Assignments are feasible by construction.
        let assignments = p2a.assignments_from_choices(&choices);
        let topo = system.topology();
        for a in &assignments {
            assert!(topo.servers_reachable_from(a.base_station).contains(&a.server));
        }
    }

    #[test]
    fn different_draws_differ() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(20), 52);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 52);
        let state = p.observe(0, system.topology());
        let p2a = P2aProblem::build(&system, &state, &system.min_frequencies());
        let mut rng = Pcg32::seed(2);
        let mut solver = RoptSolver;
        let a = solver.solve(&p2a, &mut rng);
        let b = solver.solve(&p2a, &mut rng);
        assert_ne!(a, b);
    }
}
