//! Exact optimum for P2-A via branch-and-bound (the Gurobi substitute).
//!
//! Frames P2-A as a [`SequentialProblem`]: stage `i` assigns device `i` a
//! strategy; the state carries the current resource loads; the cumulative
//! cost is the social cost `Σ_r m_r·p_r²` so far. The completion bound gives
//! each unassigned device its cheapest marginal against the *current* loads
//! — admissible because loads only grow, so true marginals only exceed it.
//!
//! On the paper's Fig. 4 instance sizes (I ≈ 100) a full proof of optimality
//! is out of reach for any exact solver without commercial-grade cuts; the
//! node budget makes the search anytime: it returns the best incumbent and a
//! certified global lower bound (the min frontier bound), which the Fig. 4
//! harness reports alongside CGBA's ratio.

use eotora_optim::branch_bound::{BnbOutcome, BranchAndBound, SequentialProblem};
use eotora_util::rng::Pcg32;

use crate::bdma::{CgbaSolver, P2aSolver};
use crate::p2a::P2aProblem;

/// Branch-and-bound state: per-resource loads plus accumulated cost.
#[derive(Debug, Clone)]
pub struct LoadState {
    loads: Vec<f64>,
    cost: f64,
}

struct P2aSequential<'a> {
    problem: &'a P2aProblem,
}

impl P2aSequential<'_> {
    fn marginal(&self, loads: &[f64], player: usize, strategy: usize) -> f64 {
        let game = self.problem.game();
        game.strategies(player)[strategy]
            .iter()
            .map(|&(r, w)| game.resource_weight(r) * (2.0 * loads[r] * w + w * w))
            .sum()
    }
}

impl SequentialProblem for P2aSequential<'_> {
    type State = LoadState;

    fn num_stages(&self) -> usize {
        self.problem.game().num_players()
    }

    fn num_choices(&self, stage: usize) -> usize {
        self.problem.num_strategies(stage)
    }

    fn root_state(&self) -> LoadState {
        LoadState { loads: vec![0.0; self.problem.game().num_resources()], cost: 0.0 }
    }

    fn apply(&self, state: &LoadState, stage: usize, choice: usize) -> Option<(LoadState, f64)> {
        let game = self.problem.game();
        let delta = self.marginal(&state.loads, stage, choice);
        let mut loads = state.loads.clone();
        for &(r, w) in &game.strategies(stage)[choice] {
            loads[r] += w;
        }
        let cost = state.cost + delta;
        Some((LoadState { loads, cost }, cost))
    }

    fn completion_bound(&self, state: &LoadState, stage: usize) -> f64 {
        (stage..self.num_stages())
            .map(|i| {
                (0..self.num_choices(i))
                    .map(|s| self.marginal(&state.loads, i, s))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    }
}

/// Outcome of an exact solve, including optimality certificates.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactReport {
    /// Best strategy choices found.
    pub choices: Vec<usize>,
    /// Latency `T_t` of [`ExactReport::choices`].
    pub latency: f64,
    /// Certified global lower bound on the optimum.
    pub lower_bound: f64,
    /// Whether the search proved optimality.
    pub proven_optimal: bool,
    /// Nodes expanded by the search.
    pub nodes_expanded: usize,
}

/// The exact (Gurobi-replacement) baseline.
#[derive(Debug, Clone)]
pub struct ExactSolver {
    /// Node budget for the branch-and-bound search.
    pub node_budget: usize,
    /// Warm-start the search with a CGBA incumbent (recommended; prunes
    /// aggressively and guarantees the result is never worse than CGBA).
    pub warm_start: bool,
}

impl Default for ExactSolver {
    fn default() -> Self {
        Self { node_budget: 2_000_000, warm_start: true }
    }
}

impl ExactSolver {
    /// Runs the search and returns the full report with bounds.
    pub fn solve_with_report(&self, problem: &P2aProblem, rng: &mut Pcg32) -> ExactReport {
        let incumbent = if self.warm_start {
            let mut cgba = CgbaSolver::default();
            Some(cgba.solve(problem, rng))
        } else {
            None
        };
        self.solve_with_report_from(problem, incumbent.as_deref())
    }

    /// Runs the search from an explicit warm-start incumbent (e.g. the exact
    /// CGBA solution already measured by a comparison harness, mirroring how
    /// one would hand Gurobi a MIP start). The result is never worse than
    /// the incumbent.
    pub fn solve_with_report_from(
        &self,
        problem: &P2aProblem,
        incumbent: Option<&[usize]>,
    ) -> ExactReport {
        let seq = P2aSequential { problem };
        let solver = BranchAndBound::new().with_node_budget(self.node_budget);
        let result = solver.solve_with_incumbent(&seq, incumbent);
        let choices = result.best_choices.clone().expect("P2-A always has feasible assignments");
        ExactReport {
            latency: result.best_cost,
            lower_bound: result.lower_bound,
            proven_optimal: result.outcome == BnbOutcome::Optimal,
            nodes_expanded: result.nodes_expanded,
            choices,
        }
    }
}

impl P2aSolver for ExactSolver {
    fn name(&self) -> &'static str {
        "OPT"
    }

    fn solve(&mut self, problem: &P2aProblem, rng: &mut Pcg32) -> Vec<usize> {
        self.solve_with_report(problem, rng).choices
    }

    fn solve_with(
        &mut self,
        problem: &P2aProblem,
        rng: &mut Pcg32,
        recorder: &dyn eotora_obs::Recorder,
    ) -> Vec<usize> {
        let report = self.solve_with_report(problem, rng);
        if recorder.is_enabled() {
            recorder.add(eotora_obs::COUNTER_BNB_NODES, report.nodes_expanded as u64);
            if report.proven_optimal {
                recorder.add(eotora_obs::COUNTER_BNB_PROVEN_OPTIMAL, 1);
            }
        }
        report.choices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{MecSystem, SystemConfig};
    use eotora_states::{PaperStateConfig, StateProvider};
    use eotora_util::assert_close;

    fn setup(devices: usize, seed: u64) -> P2aProblem {
        let system = MecSystem::random(&SystemConfig::tiny(devices), seed);
        let mut p = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = p.observe(0, system.topology());
        P2aProblem::build(&system, &state, &system.min_frequencies())
    }

    fn brute_force(problem: &P2aProblem) -> f64 {
        let n = problem.game().num_players();
        let mut best = f64::INFINITY;
        fn rec(problem: &P2aProblem, i: usize, n: usize, choices: &mut Vec<usize>, best: &mut f64) {
            if i == n {
                *best = (*best).min(problem.total_latency(choices));
                return;
            }
            for s in 0..problem.num_strategies(i) {
                choices.push(s);
                rec(problem, i + 1, n, choices, best);
                choices.pop();
            }
        }
        rec(problem, 0, n, &mut Vec::new(), &mut best);
        best
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        for seed in 0..5u64 {
            let p2a = setup(4, 70 + seed);
            let exact = brute_force(&p2a);
            let mut rng = Pcg32::seed(seed);
            let report = ExactSolver::default().solve_with_report(&p2a, &mut rng);
            assert!(report.proven_optimal);
            assert_close!(report.latency, exact, 1e-9);
            assert_close!(report.lower_bound, report.latency, 1e-6);
        }
    }

    #[test]
    fn never_worse_than_cgba_with_warm_start() {
        let p2a = setup(8, 80);
        let mut rng = Pcg32::seed(5);
        let mut cgba = CgbaSolver::default();
        let cgba_latency = p2a.total_latency(&cgba.solve(&p2a, &mut rng));
        let mut rng = Pcg32::seed(5);
        let report = ExactSolver::default().solve_with_report(&p2a, &mut rng);
        assert!(report.latency <= cgba_latency + 1e-9);
    }

    #[test]
    fn cgba_within_theorem_ratio_of_exact() {
        // Theorem 2: T(CGBA(0)) ≤ 2.62 · T(OPT); empirically much tighter.
        for seed in 0..5u64 {
            let p2a = setup(6, 90 + seed);
            let mut rng = Pcg32::seed(seed);
            let report = ExactSolver::default().solve_with_report(&p2a, &mut rng);
            assert!(report.proven_optimal);
            let mut rng = Pcg32::seed(seed + 1);
            let mut cgba = CgbaSolver::default();
            let cgba_latency = p2a.total_latency(&cgba.solve(&p2a, &mut rng));
            let ratio = cgba_latency / report.latency;
            assert!(ratio <= 2.62 + 1e-9, "ratio {ratio}");
        }
    }

    #[test]
    fn budget_exhaustion_still_returns_incumbent_and_bound() {
        let p2a = setup(12, 100);
        let mut rng = Pcg32::seed(6);
        let solver = ExactSolver { node_budget: 50, warm_start: true };
        let report = solver.solve_with_report(&p2a, &mut rng);
        assert_eq!(report.choices.len(), 12);
        assert!(report.lower_bound <= report.latency + 1e-9);
        if !report.proven_optimal {
            assert!(report.lower_bound > 0.0);
        }
    }
}
