//! The β-only stationary policy of the paper's Lemma 2, as an executable
//! hindsight benchmark.
//!
//! Lemma 2 says an optimal policy exists that looks only at the current
//! state `β_t`, meets the budget on average, and attains the optimal
//! time-average latency `ρ*`. Theorem 4 then bounds DPP's latency by
//! `R·ρ* + BD/V` — so an executable β-only policy gives the yardstick that
//! makes the theorem *checkable*.
//!
//! The policy here is the Lagrangian form: a single fixed multiplier `μ`
//! prices energy, and every slot solves `min T_t + μ·C_t` (P2-A by CGBA,
//! frequencies in closed form — exactly the per-slot machinery DPP uses
//! with `Q(t)` frozen at `μ/V·V = μ`). [`BetaOnlyPolicy::tune`] bisects `μ`
//! *in hindsight* over a recorded state sequence until the average cost
//! meets the budget; running the tuned policy then yields the benchmark
//! latency. DPP, which needs no hindsight, should land close — asserted in
//! the tests and measured in the `beta_only_gap` experiment.

use eotora_states::SystemState;
use eotora_util::rng::Pcg32;

use crate::bdma::{CgbaSolver, P2aSolver};
use crate::p2b::solve_p2b;
use crate::system::MecSystem;
use crate::workspace::SlotWorkspace;

/// A tuned β-only (stationary Lagrangian) policy.
#[derive(Debug)]
pub struct BetaOnlyPolicy {
    system: MecSystem,
    /// The energy multiplier `μ` (dollars of latency per dollar of energy).
    pub multiplier: f64,
}

/// Metrics of one β-only evaluation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaOnlyRun {
    /// Time-average latency across the pass.
    pub average_latency: f64,
    /// Time-average energy cost across the pass.
    pub average_cost: f64,
}

impl BetaOnlyPolicy {
    /// Creates a policy with an explicit multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is negative.
    pub fn new(system: MecSystem, multiplier: f64) -> Self {
        assert!(multiplier >= 0.0, "multiplier must be non-negative");
        Self { system, multiplier }
    }

    /// Evaluates the policy over a recorded state sequence.
    pub fn evaluate(&self, states: &[SystemState], seed: u64) -> BetaOnlyRun {
        assert!(!states.is_empty(), "need at least one state");
        let mut solver = CgbaSolver::default();
        let mut rng = Pcg32::seed_stream(seed, 0xBE7A);
        let mut workspace = SlotWorkspace::new();
        let mut latency_sum = 0.0;
        let mut cost_sum = 0.0;
        for state in states {
            // P2-A at minimum frequencies (as in BDMA round 1), then the
            // Lagrangian frequency step min T + μ·C == solve_p2b(v=1, q=μ).
            let p2a = workspace.prepare(&self.system, state, &self.system.min_frequencies());
            let choices = solver.solve(p2a, &mut rng);
            let assignments = p2a.assignments_from_choices(&choices);
            let sol = solve_p2b(&self.system, state, &assignments, 1.0, self.multiplier);
            latency_sum +=
                crate::latency::optimal_latency(&self.system, state, &assignments, &sol.freqs_hz)
                    .total();
            cost_sum += self.system.energy_cost(state.price_per_kwh, &sol.freqs_hz);
        }
        let n = states.len() as f64;
        BetaOnlyRun { average_latency: latency_sum / n, average_cost: cost_sum / n }
    }

    /// Tunes `μ` by bisection over the recorded states until the average
    /// cost meets the system's budget (the hindsight step), then returns the
    /// tuned policy. If even `μ = 0` (free energy) meets the budget, the
    /// constraint is slack and `μ = 0` is returned.
    pub fn tune(system: MecSystem, states: &[SystemState], seed: u64) -> Self {
        assert!(!states.is_empty(), "need at least one state");
        let budget = system.budget_per_slot();
        let eval = |mu: f64| Self::new(system.clone(), mu).evaluate(states, seed).average_cost;

        if eval(0.0) <= budget {
            return Self::new(system, 0.0);
        }
        // Grow an upper bracket, then bisect: average cost is non-increasing
        // in μ (heavier energy pricing never increases consumption).
        let mut hi = 1.0;
        let mut guard = 0;
        while eval(hi) > budget && guard < 60 {
            hi *= 4.0;
            guard += 1;
        }
        let mut lo = 0.0;
        for _ in 0..50 {
            let mid = 0.5 * (lo + hi);
            if eval(mid) > budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Self::new(system, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpp::{DppConfig, EotoraDpp};
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};

    fn record_states(system: &MecSystem, horizon: u64, seed: u64) -> Vec<SystemState> {
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        (0..horizon).map(|t| provider.observe(t, system.topology())).collect()
    }

    #[test]
    fn tuned_policy_meets_budget() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(10), 201).with_budget(0.8);
        let states = record_states(&system, 72, 201);
        let policy = BetaOnlyPolicy::tune(system, &states, 1);
        let run = policy.evaluate(&states, 1);
        assert!(run.average_cost <= 0.8 * (1.0 + 1e-6), "cost {}", run.average_cost);
        assert!(policy.multiplier > 0.0, "a binding budget needs a positive multiplier");
    }

    #[test]
    fn slack_budget_means_zero_multiplier() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(8), 202).with_budget(100.0);
        let states = record_states(&system, 24, 202);
        let policy = BetaOnlyPolicy::tune(system, &states, 2);
        assert_eq!(policy.multiplier, 0.0);
    }

    #[test]
    fn latency_increases_as_multiplier_grows() {
        let system = MecSystem::random(&SystemConfig::paper_defaults(10), 203);
        let states = record_states(&system, 24, 203);
        let l =
            |mu: f64| BetaOnlyPolicy::new(system.clone(), mu).evaluate(&states, 3).average_latency;
        assert!(l(0.0) <= l(10.0) + 1e-9);
        assert!(l(10.0) <= l(1000.0) + 1e-9);
    }

    #[test]
    fn dpp_approaches_the_beta_only_benchmark() {
        // Theorem 4's promise made empirical: the online controller (no
        // hindsight) lands within a modest factor of the hindsight-tuned
        // stationary policy at the same realized budget.
        let budget = 0.8;
        let system = MecSystem::random(&SystemConfig::paper_defaults(12), 204).with_budget(budget);
        let states = record_states(&system, 144, 204);
        let oracle = BetaOnlyPolicy::tune(system.clone(), &states, 4).evaluate(&states, 4);

        let mut dpp = EotoraDpp::new(
            system,
            DppConfig { v: 200.0, bdma_rounds: 2, seed: 204, ..Default::default() },
        );
        for state in &states {
            dpp.step(state);
        }
        assert!(dpp.average_cost() <= budget * 1.12, "DPP cost {}", dpp.average_cost());
        let ratio = dpp.average_latency() / oracle.average_latency;
        assert!(ratio <= 1.10, "DPP latency should approach the β-only benchmark: ratio {ratio}");
        // And the benchmark is genuinely meaningful: not slack.
        assert!(oracle.average_cost <= budget * (1.0 + 1e-6));
    }
}
