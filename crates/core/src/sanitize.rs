//! State sanitization: validate `β_t = (f, d, h, p)` before it reaches the
//! solver, substituting last-known-good values for corrupt entries.
//!
//! Telemetry in production arrives late, stale, or mangled. Every scalar
//! the solver square-roots or divides by must be finite and positive — a
//! single NaN spectral efficiency would otherwise propagate through the
//! game weights into every decision. [`StateSanitizer`] screens each
//! observation entry-wise against generous physical limits, repairs bad
//! entries from the previous good observation (or a deterministic default
//! when there is none yet), and counts every substitution so the
//! `fault.state_substitutions` counter reflects exactly how much of the
//! input was reconstructed.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use eotora_states::SystemState;
use serde::{Deserialize, Serialize};

use crate::checkpoint::SanitizerSnapshot;

/// Inclusive plausibility limits per state field. Deliberately generous —
/// an order of magnitude or more around the paper's §VI-A ranges — so
/// sanitization only rejects physically meaningless values, never unusual
/// but legitimate ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SanitizeLimits {
    /// Task sizes in cycles (paper: 50–200 Mcycles).
    pub task_cycles: (f64, f64),
    /// Data lengths in bits (paper: 3–10 Mb).
    pub data_bits: (f64, f64),
    /// Access spectral efficiency in bit/s/Hz (paper: 15–50).
    pub spectral_efficiency: (f64, f64),
    /// Fronthaul spectral efficiency in bit/s/Hz.
    pub fronthaul_efficiency: (f64, f64),
    /// Electricity price in $/kWh.
    pub price_per_kwh: (f64, f64),
}

impl Default for SanitizeLimits {
    fn default() -> Self {
        Self {
            task_cycles: (1e4, 1e12),
            data_bits: (1.0, 1e10),
            spectral_efficiency: (1e-3, 1e4),
            fronthaul_efficiency: (1e-3, 1e6),
            price_per_kwh: (1e-6, 100.0),
        }
    }
}

fn ok(x: f64, (lo, hi): (f64, f64)) -> bool {
    x.is_finite() && x >= lo && x <= hi
}

/// Cold-start fallbacks when a corrupt entry arrives before any good
/// observation of it: one per field, defaulting to the *scenario means* of
/// the paper's §VI-A generators. The limits in [`SanitizeLimits`] span many
/// orders of magnitude, so a range midpoint would be wildly unphysical
/// (e.g. ~3 Gcycles for a 50–200 Mcycle workload); the mean of the actual
/// generating distribution keeps a fully-corrupt first slot solvable with a
/// plausible workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SanitizeDefaults {
    /// Mean task size (paper: Uniform(50, 200) Mcycles → 125 Mcycles).
    pub task_cycles: f64,
    /// Mean data length (paper: Uniform(3, 10) Mb → 6.5 Mb).
    pub data_bits: f64,
    /// Mean access spectral efficiency (paper: Uniform(15, 50) → 32.5).
    pub spectral_efficiency: f64,
    /// Fronthaul spectral efficiency (topology default: 10 bit/s/Hz).
    pub fronthaul_efficiency: f64,
    /// Electricity price (NYISO-like trend mean: $0.05/kWh).
    pub price_per_kwh: f64,
}

impl Default for SanitizeDefaults {
    fn default() -> Self {
        Self {
            task_cycles: 125e6,
            data_bits: 6.5e6,
            spectral_efficiency: 32.5,
            fronthaul_efficiency: 10.0,
            price_per_kwh: 0.05,
        }
    }
}

/// Screens successive observations, repairing corrupt entries from the
/// last good observation. Owns no solver state; one sanitizer per run.
#[derive(Debug, Clone, Default)]
pub struct StateSanitizer {
    limits: SanitizeLimits,
    defaults: SanitizeDefaults,
    last_good: Option<SystemState>,
    total_substitutions: u64,
}

impl StateSanitizer {
    /// A sanitizer with the default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sanitizer with custom limits (and the default cold-start means).
    pub fn with_limits(limits: SanitizeLimits) -> Self {
        Self { limits, ..Self::default() }
    }

    /// A sanitizer with custom limits and cold-start defaults.
    pub fn with_limits_and_defaults(limits: SanitizeLimits, defaults: SanitizeDefaults) -> Self {
        Self { limits, defaults, last_good: None, total_substitutions: 0 }
    }

    /// Total substitutions made over the sanitizer's lifetime.
    pub fn total_substitutions(&self) -> u64 {
        self.total_substitutions
    }

    /// Serializable resume point: limits, defaults, the last-known-good
    /// observation, and the lifetime substitution count.
    pub fn snapshot(&self) -> SanitizerSnapshot {
        SanitizerSnapshot {
            limits: self.limits.clone(),
            defaults: self.defaults.clone(),
            last_good: self.last_good.clone(),
            total_substitutions: self.total_substitutions,
        }
    }

    /// Rebuilds a sanitizer from a [`SanitizerSnapshot`]; subsequent
    /// substitutions behave exactly as in the snapshotted run.
    pub fn restore(snapshot: &SanitizerSnapshot) -> Self {
        Self {
            limits: snapshot.limits.clone(),
            defaults: snapshot.defaults.clone(),
            last_good: snapshot.last_good.clone(),
            total_substitutions: snapshot.total_substitutions,
        }
    }

    /// Screens `observed`, returning a safe copy plus the number of
    /// substituted entries. Stale detection: an observation whose `slot`
    /// went backwards (or repeated) relative to the previous good one
    /// counts one substitution and has its slot forced forward, so
    /// downstream slot-keyed logic keeps advancing.
    pub fn sanitize(&mut self, observed: &SystemState) -> (SystemState, u64) {
        let mut state = observed.clone();
        let mut subs: u64 = 0;
        let limits = self.limits.clone();
        let defaults = self.defaults.clone();
        let last = self.last_good.as_ref();

        // Stale / replayed observation.
        if let Some(prev) = last {
            if state.slot <= prev.slot {
                state.slot = prev.slot + 1;
                subs += 1;
            }
        }

        let fix_vec = |field: &mut Vec<f64>,
                       prev: Option<&Vec<f64>>,
                       lim: (f64, f64),
                       fallback: f64,
                       subs: &mut u64| {
            // A mis-shaped vector cannot be repaired entry-wise: substitute
            // the whole previous field (one substitution) when available.
            if let Some(p) = prev {
                if field.len() != p.len() {
                    *field = p.clone();
                    *subs += 1;
                    return;
                }
            }
            for (j, x) in field.iter_mut().enumerate() {
                if !ok(*x, lim) {
                    *x = prev.map(|p| p[j]).filter(|&g| ok(g, lim)).unwrap_or(fallback);
                    *subs += 1;
                }
            }
        };

        fix_vec(
            &mut state.task_cycles,
            last.map(|s| &s.task_cycles),
            limits.task_cycles,
            defaults.task_cycles,
            &mut subs,
        );
        fix_vec(
            &mut state.data_bits,
            last.map(|s| &s.data_bits),
            limits.data_bits,
            defaults.data_bits,
            &mut subs,
        );
        fix_vec(
            &mut state.fronthaul_efficiency,
            last.map(|s| &s.fronthaul_efficiency),
            limits.fronthaul_efficiency,
            defaults.fronthaul_efficiency,
            &mut subs,
        );
        // The device × station spectral matrix, row-wise.
        if let Some(prev) = last {
            if state.spectral_efficiency.len() != prev.spectral_efficiency.len() {
                state.spectral_efficiency = prev.spectral_efficiency.clone();
                subs += 1;
            }
        }
        for (i, row) in state.spectral_efficiency.iter_mut().enumerate() {
            let prev_row = last.and_then(|s| s.spectral_efficiency.get(i));
            fix_vec(
                row,
                prev_row,
                limits.spectral_efficiency,
                defaults.spectral_efficiency,
                &mut subs,
            );
        }
        if !ok(state.price_per_kwh, limits.price_per_kwh) {
            state.price_per_kwh = last
                .map(|s| s.price_per_kwh)
                .filter(|&p| ok(p, limits.price_per_kwh))
                .unwrap_or(defaults.price_per_kwh);
            subs += 1;
        }

        self.total_substitutions += subs;
        self.last_good = Some(state.clone());
        (state, subs)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn good_state(slot: u64) -> SystemState {
        SystemState {
            slot,
            task_cycles: vec![1e8, 1.5e8],
            data_bits: vec![5e6, 7e6],
            spectral_efficiency: vec![vec![20.0, 30.0], vec![25.0, 35.0]],
            fronthaul_efficiency: vec![40.0, 45.0],
            price_per_kwh: 0.05,
        }
    }

    #[test]
    fn clean_state_passes_untouched() {
        let mut s = StateSanitizer::new();
        let observed = good_state(0);
        let (clean, subs) = s.sanitize(&observed);
        assert_eq!(subs, 0);
        assert_eq!(clean, observed);
        assert_eq!(s.total_substitutions(), 0);
    }

    #[test]
    fn nan_and_negative_entries_are_substituted_from_last_good() {
        let mut s = StateSanitizer::new();
        s.sanitize(&good_state(0));
        let mut bad = good_state(1);
        bad.task_cycles[0] = f64::NAN;
        bad.spectral_efficiency[1][0] = -3.0;
        bad.price_per_kwh = f64::INFINITY;
        let (clean, subs) = s.sanitize(&bad);
        assert_eq!(subs, 3);
        assert_eq!(clean.task_cycles[0], 1e8);
        assert_eq!(clean.spectral_efficiency[1][0], 25.0);
        assert_eq!(clean.price_per_kwh, 0.05);
        assert_eq!(s.total_substitutions(), 3);
    }

    #[test]
    fn cold_start_corruption_falls_back_to_defaults() {
        let mut s = StateSanitizer::new();
        let mut bad = good_state(0);
        bad.data_bits[1] = 0.0; // below the positive floor
        let (clean, subs) = s.sanitize(&bad);
        assert_eq!(subs, 1);
        assert_eq!(clean.data_bits[1], SanitizeDefaults::default().data_bits);
    }

    #[test]
    fn fully_corrupt_first_slot_yields_scenario_mean_state() {
        // The first-slot edge case: every field is NaN and there is no
        // last-known-good yet. Each entry must land on the scenario-mean
        // default (not a range midpoint), every substitution counted.
        let mut s = StateSanitizer::new();
        let bad = SystemState {
            slot: 0,
            task_cycles: vec![f64::NAN; 3],
            data_bits: vec![f64::NAN; 3],
            spectral_efficiency: vec![vec![f64::NAN; 2]; 3],
            fronthaul_efficiency: vec![f64::NAN; 2],
            price_per_kwh: f64::NAN,
        };
        let (clean, subs) = s.sanitize(&bad);
        let d = SanitizeDefaults::default();
        assert_eq!(subs, 3 + 3 + 6 + 2 + 1);
        assert_eq!(s.total_substitutions(), subs);
        assert!(clean.task_cycles.iter().all(|&x| x == d.task_cycles));
        assert!(clean.data_bits.iter().all(|&x| x == d.data_bits));
        assert!(clean
            .spectral_efficiency
            .iter()
            .all(|row| row.iter().all(|&x| x == d.spectral_efficiency)));
        assert!(clean.fronthaul_efficiency.iter().all(|&x| x == d.fronthaul_efficiency));
        assert_eq!(clean.price_per_kwh, d.price_per_kwh);
        // The repaired state is solvable input: strictly positive, finite.
        assert!(clean.task_cycles.iter().all(|&x| x.is_finite() && x > 0.0));
        // And it became the last-known-good for the next slot.
        let mut next = good_state(1);
        next.task_cycles[0] = f64::NAN;
        let (clean2, _) = s.sanitize(&next);
        assert_eq!(clean2.task_cycles[0], d.task_cycles);
    }

    #[test]
    fn snapshot_restore_round_trips_through_serde() {
        let mut s = StateSanitizer::new();
        s.sanitize(&good_state(0));
        let mut bad = good_state(1);
        bad.task_cycles[0] = f64::NAN;
        s.sanitize(&bad);
        let json = serde_json::to_string(&s.snapshot()).unwrap();
        let snap = serde_json::from_str(&json).unwrap();
        let mut restored = StateSanitizer::restore(&snap);
        assert_eq!(restored.total_substitutions(), 1);
        // Restored sanitizer repairs from the same last-known-good.
        let mut again = good_state(2);
        again.price_per_kwh = -1.0;
        let (c1, _) = restored.sanitize(&again);
        let (c2, _) = s.sanitize(&again);
        assert_eq!(c1, c2);
    }

    #[test]
    fn stale_slot_is_forced_forward() {
        let mut s = StateSanitizer::new();
        s.sanitize(&good_state(5));
        let (clean, subs) = s.sanitize(&good_state(3));
        assert_eq!(subs, 1);
        assert_eq!(clean.slot, 6);
    }

    #[test]
    fn shape_mismatch_substitutes_whole_field() {
        let mut s = StateSanitizer::new();
        s.sanitize(&good_state(0));
        let mut bad = good_state(1);
        bad.fronthaul_efficiency = vec![40.0]; // lost an entry
        let (clean, subs) = s.sanitize(&bad);
        assert_eq!(subs, 1);
        assert_eq!(clean.fronthaul_efficiency, vec![40.0, 45.0]);
    }

    #[test]
    fn repaired_state_becomes_the_new_last_good() {
        let mut s = StateSanitizer::new();
        s.sanitize(&good_state(0));
        let mut bad = good_state(1);
        bad.task_cycles[1] = f64::NEG_INFINITY;
        let (first, _) = s.sanitize(&bad);
        // Next corrupt slot repairs from the *repaired* value.
        let mut again = good_state(2);
        again.task_cycles[1] = f64::NAN;
        let (second, _) = s.sanitize(&again);
        assert_eq!(second.task_cycles[1], first.task_cycles[1]);
    }
}
