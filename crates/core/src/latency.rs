//! Latency computation: the general forms of eqs. (7)–(11) and the
//! allocation-optimal closed forms of eqs. (18)–(20).
//!
//! Two layers are provided deliberately: [`latency_under`] evaluates an
//! *arbitrary* feasible decision (`L_t`), while [`optimal_latency`] evaluates
//! the closed form after Lemma 1 eliminates the allocation variables
//! (`T_t`). Tests cross-check that plugging Lemma 1's allocation into the
//! general form reproduces the closed form exactly, and that no feasible
//! allocation beats it.

use eotora_states::SystemState;
use serde::{Deserialize, Serialize};

use crate::decision::{Assignment, SlotDecision};
use crate::system::MecSystem;

/// Itemized latency of one slot, in seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Per-device total latency `L_{i,t}`.
    pub per_device: Vec<f64>,
    /// Total processing latency `L^P_t` (eq. 8).
    pub processing: f64,
    /// Total access-link latency `Σ_i L^{C,A}_{i,t}` (eq. 9).
    pub access: f64,
    /// Total fronthaul latency `Σ_i L^{C,F}_{i,t}` (eq. 10).
    pub fronthaul: f64,
}

impl LatencyBreakdown {
    /// Overall latency `L_t = L^C_t + L^P_t`.
    pub fn total(&self) -> f64 {
        self.processing + self.access + self.fronthaul
    }
}

/// Evaluates `L_t(α_t, β_t)` for an arbitrary decision (eqs. (7)–(11)).
///
/// The decision is taken at face value — shares are *not* re-optimized.
/// Server compute rates account for core counts
/// (`rate = cores × ω × σ × φ`).
///
/// # Panics
///
/// Panics if the state dimensions disagree with the system (this indicates
/// mixing states from a different topology) or any share/frequency is
/// non-positive where used.
pub fn latency_under(
    system: &MecSystem,
    state: &SystemState,
    decision: &SlotDecision,
) -> LatencyBreakdown {
    let topo = system.topology();
    assert_eq!(state.task_cycles.len(), topo.num_devices(), "state/topology device mismatch");
    assert_eq!(
        state.fronthaul_efficiency.len(),
        topo.num_base_stations(),
        "state/topology station mismatch"
    );

    let mut per_device = Vec::with_capacity(topo.num_devices());
    let mut processing = 0.0;
    let mut access = 0.0;
    let mut fronthaul = 0.0;

    for (i, a) in decision.assignments.iter().enumerate() {
        let k = a.base_station;
        let n = a.server;
        let bs = topo.base_station(k);
        let dev = eotora_topology::DeviceId(i);

        let phi = decision.compute_share[i];
        let psi_a = decision.access_share[i];
        let psi_f = decision.fronthaul_share[i];
        assert!(phi > 0.0 && psi_a > 0.0 && psi_f > 0.0, "shares must be positive in use");

        // Eq. (7) with core-aware rate: f / (cores·ω · σ · φ).
        let rate = system.compute_rate(n, decision.frequencies_hz[n.index()]);
        let l_proc = state.task_cycles[i] / (rate * system.suitability(dev, n) * phi);
        // Eq. (9): d / (W^A · h_{i,k} · ψ^A).
        let l_acc = state.data_bits[i]
            / (bs.access_bandwidth_hz * state.spectral_efficiency[i][k.index()] * psi_a);
        // Eq. (10): d / (W^F · h^F_k · ψ^F).
        let l_fh = state.data_bits[i]
            / (bs.fronthaul_bandwidth_hz * state.fronthaul_efficiency[k.index()] * psi_f);

        per_device.push(l_proc + l_acc + l_fh);
        processing += l_proc;
        access += l_acc;
        fronthaul += l_fh;
    }

    LatencyBreakdown { per_device, processing, access, fronthaul }
}

/// Itemized *optimal* latency `T_t` (allocation variables eliminated).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalLatency {
    /// `T^P_t` of eq. (18).
    pub processing: f64,
    /// Access part of `T^C_t` (first sum of eq. 19).
    pub access: f64,
    /// Fronthaul part of `T^C_t` (second sum of eq. 19).
    pub fronthaul: f64,
}

impl OptimalLatency {
    /// `T_t = T^P_t + T^C_t` (eq. 20).
    pub fn total(&self) -> f64 {
        self.processing + self.access + self.fronthaul
    }
}

/// Evaluates the closed forms (18)–(20): the latency under the Lemma 1
/// optimal allocation, given the discrete assignment and frequencies.
///
/// ```text
/// T^P = Σ_n (1 / (cores_n·ω_n)) · (Σ_{i→n} √(f_i/σ_{i,n}))²
/// T^C = Σ_k (1/W^A_k) (Σ_{i→k} √(d_i/h_{i,k}))² + Σ_k (1/W^F_k) (Σ_{i→k} √(d_i/h^F_k))²
/// ```
///
/// # Panics
///
/// Panics on dimension mismatches between system, state, and arguments.
pub fn optimal_latency(
    system: &MecSystem,
    state: &SystemState,
    assignments: &[Assignment],
    freqs_hz: &[f64],
) -> OptimalLatency {
    let topo = system.topology();
    assert_eq!(assignments.len(), topo.num_devices(), "one assignment per device");
    assert_eq!(freqs_hz.len(), topo.num_servers(), "one frequency per server");

    let mut server_root = vec![0.0; topo.num_servers()];
    let mut access_root = vec![0.0; topo.num_base_stations()];
    let mut fronthaul_root = vec![0.0; topo.num_base_stations()];

    for (i, a) in assignments.iter().enumerate() {
        let dev = eotora_topology::DeviceId(i);
        server_root[a.server.index()] +=
            (state.task_cycles[i] / system.suitability(dev, a.server)).sqrt();
        let k = a.base_station.index();
        access_root[k] += (state.data_bits[i] / state.spectral_efficiency[i][k]).sqrt();
        fronthaul_root[k] += (state.data_bits[i] / state.fronthaul_efficiency[k]).sqrt();
    }

    let processing: f64 = server_root
        .iter()
        .enumerate()
        .map(|(n, &root)| {
            let rate = system.compute_rate(eotora_topology::ServerId(n), freqs_hz[n]);
            root * root / rate
        })
        .sum();
    let access: f64 = access_root
        .iter()
        .enumerate()
        .map(|(k, &root)| {
            root * root / topo.base_station(eotora_topology::BaseStationId(k)).access_bandwidth_hz
        })
        .sum();
    let fronthaul: f64 = fronthaul_root
        .iter()
        .enumerate()
        .map(|(k, &root)| {
            root * root
                / topo.base_station(eotora_topology::BaseStationId(k)).fronthaul_bandwidth_hz
        })
        .sum();

    OptimalLatency { processing, access, fronthaul }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::optimal_allocation;
    use crate::system::SystemConfig;
    use eotora_states::{PaperStateConfig, StateProvider};
    use eotora_topology::BaseStationId;
    use eotora_util::assert_close;
    use eotora_util::rng::Pcg32;

    fn setup(devices: usize, seed: u64) -> (MecSystem, SystemState) {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = provider.observe(0, system.topology());
        (system, state)
    }

    fn random_assignments(system: &MecSystem, rng: &mut Pcg32) -> Vec<Assignment> {
        let topo = system.topology();
        (0..topo.num_devices())
            .map(|_| {
                let k = BaseStationId(rng.below(topo.num_base_stations()));
                let reachable = topo.servers_reachable_from(k);
                let server = *rng.pick(&reachable).expect("every BS reaches servers");
                Assignment { base_station: k, server }
            })
            .collect()
    }

    #[test]
    fn closed_form_matches_general_form_under_lemma1() {
        let (system, state) = setup(12, 4);
        let mut rng = Pcg32::seed(9);
        for _ in 0..10 {
            let assignments = random_assignments(&system, &mut rng);
            let freqs = system.max_frequencies();
            let decision = optimal_allocation(&system, &state, &assignments, &freqs);
            decision.validate(&system).unwrap();
            let general = latency_under(&system, &state, &decision);
            let closed = optimal_latency(&system, &state, &assignments, &freqs);
            assert_close!(general.total(), closed.total(), 1e-9);
            assert_close!(general.processing, closed.processing, 1e-9);
            assert_close!(general.access, closed.access, 1e-9);
            assert_close!(general.fronthaul, closed.fronthaul, 1e-9);
        }
    }

    #[test]
    fn lemma1_beats_equal_split() {
        let (system, state) = setup(15, 5);
        let mut rng = Pcg32::seed(10);
        let assignments = random_assignments(&system, &mut rng);
        let freqs = system.max_frequencies();
        let opt = optimal_latency(&system, &state, &assignments, &freqs).total();

        // Equal-split alternative: each device gets 1/(peers on the resource).
        let topo = system.topology();
        let mut per_bs = vec![0usize; topo.num_base_stations()];
        let mut per_srv = vec![0usize; topo.num_servers()];
        for a in &assignments {
            per_bs[a.base_station.index()] += 1;
            per_srv[a.server.index()] += 1;
        }
        let decision = SlotDecision {
            access_share: assignments
                .iter()
                .map(|a| 1.0 / per_bs[a.base_station.index()] as f64)
                .collect(),
            fronthaul_share: assignments
                .iter()
                .map(|a| 1.0 / per_bs[a.base_station.index()] as f64)
                .collect(),
            compute_share: assignments
                .iter()
                .map(|a| 1.0 / per_srv[a.server.index()] as f64)
                .collect(),
            assignments,
            frequencies_hz: freqs,
        };
        decision.validate(&system).unwrap();
        let equal = latency_under(&system, &state, &decision).total();
        assert!(opt <= equal + 1e-9, "optimal {opt} vs equal-split {equal}");
    }

    #[test]
    fn faster_clocks_reduce_processing_latency_only() {
        let (system, state) = setup(10, 6);
        let mut rng = Pcg32::seed(11);
        let assignments = random_assignments(&system, &mut rng);
        let slow = optimal_latency(&system, &state, &assignments, &system.min_frequencies());
        let fast = optimal_latency(&system, &state, &assignments, &system.max_frequencies());
        assert!(fast.processing < slow.processing);
        assert_close!(fast.access, slow.access, 1e-12);
        assert_close!(fast.fronthaul, slow.fronthaul, 1e-12);
        // Frequencies doubled ⇒ processing latency exactly halves.
        assert_close!(fast.processing * 2.0, slow.processing, 1e-9);
    }

    #[test]
    fn latencies_are_positive_and_finite() {
        let (system, state) = setup(25, 7);
        let mut rng = Pcg32::seed(12);
        let assignments = random_assignments(&system, &mut rng);
        let freqs = system.max_frequencies();
        let t = optimal_latency(&system, &state, &assignments, &freqs);
        assert!(t.processing > 0.0 && t.processing.is_finite());
        assert!(t.access > 0.0 && t.access.is_finite());
        assert!(t.fronthaul > 0.0 && t.fronthaul.is_finite());
        let decision = optimal_allocation(&system, &state, &assignments, &freqs);
        let l = latency_under(&system, &state, &decision);
        assert!(l.per_device.iter().all(|&x| x > 0.0 && x.is_finite()));
        assert_eq!(l.per_device.len(), 25);
    }

    #[test]
    fn concentrating_devices_on_one_resource_hurts() {
        // Quadratic load cost: everyone on one BS/server ≥ any spread.
        let (system, state) = setup(8, 8);
        let topo = system.topology();
        let k = BaseStationId(0);
        let n = topo.servers_reachable_from(k)[0];
        let all_same = vec![Assignment { base_station: k, server: n }; topo.num_devices()];
        let freqs = system.max_frequencies();
        let t_same = optimal_latency(&system, &state, &all_same, &freqs).total();
        let mut rng = Pcg32::seed(13);
        let spread = random_assignments(&system, &mut rng);
        let t_spread = optimal_latency(&system, &state, &spread, &freqs).total();
        assert!(t_same > t_spread, "concentrated {t_same} vs spread {t_spread}");
    }

    #[test]
    #[should_panic(expected = "one frequency per server")]
    fn wrong_frequency_count_panics() {
        let (system, state) = setup(4, 9);
        let mut rng = Pcg32::seed(14);
        let assignments = random_assignments(&system, &mut rng);
        optimal_latency(&system, &state, &assignments, &[2.0e9]);
    }
}
