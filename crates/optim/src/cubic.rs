//! Real-root extraction for cubic polynomials.
//!
//! P2-B's KKT stationarity condition with a quadratic energy model is a
//! cubic equation in the clock frequency (`V·A/ω² = Q·p·g'(ω)` multiplied
//! through by `ω²`), so the frequency step admits a closed form. This module
//! provides the root-finder behind that fast path: the trigonometric /
//! hyperbolic Cardano method, with a Newton polish step for full `f64`
//! accuracy.

/// Returns all real roots of `c3·x³ + c2·x² + c1·x + c0 = 0`, ascending.
///
/// Degenerate leading coefficients fall back to the quadratic/linear case.
/// Roots are polished with one Newton step; multiple roots are returned once
/// per distinct value (within a relative tolerance).
///
/// # Examples
///
/// ```
/// use eotora_optim::cubic::real_roots;
///
/// // (x-1)(x-2)(x-3) = x³ - 6x² + 11x - 6
/// let roots = real_roots(1.0, -6.0, 11.0, -6.0);
/// assert_eq!(roots.len(), 3);
/// assert!((roots[0] - 1.0).abs() < 1e-9);
/// assert!((roots[2] - 3.0).abs() < 1e-9);
/// ```
pub fn real_roots(c3: f64, c2: f64, c1: f64, c0: f64) -> Vec<f64> {
    const EPS: f64 = 1e-300;
    if c3.abs() < EPS {
        // Quadratic (or lower) case.
        if c2.abs() < EPS {
            if c1.abs() < EPS {
                return Vec::new(); // constant: no roots (or everything)
            }
            return vec![-c0 / c1];
        }
        let disc = c1 * c1 - 4.0 * c2 * c0;
        if disc < 0.0 {
            return Vec::new();
        }
        let sq = disc.sqrt();
        let mut roots = vec![(-c1 - sq) / (2.0 * c2), (-c1 + sq) / (2.0 * c2)];
        roots.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        roots.dedup_by(|a, b| (*a - *b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0));
        return roots;
    }

    // Depressed cubic t³ + p t + q with x = t − c2/(3 c3).
    let a = c2 / c3;
    let b = c1 / c3;
    let c = c0 / c3;
    let shift = a / 3.0;
    let p = b - a * a / 3.0;
    let q = 2.0 * a * a * a / 27.0 - a * b / 3.0 + c;

    let mut roots = Vec::new();
    let disc = (q / 2.0) * (q / 2.0) + (p / 3.0) * (p / 3.0) * (p / 3.0);
    if disc > 0.0 {
        // One real root (Cardano).
        let s = disc.sqrt();
        let u = (-q / 2.0 + s).cbrt();
        let v = (-q / 2.0 - s).cbrt();
        roots.push(u + v - shift);
    } else if p.abs() < 1e-300 {
        // Triple root.
        roots.push(-shift);
    } else {
        // Three real roots (trigonometric form).
        let r = (-p / 3.0).sqrt();
        let arg = (3.0 * q / (2.0 * p * r)).clamp(-1.0, 1.0);
        let phi = arg.acos();
        for k in 0..3 {
            let t = 2.0 * r * ((phi - 2.0 * std::f64::consts::PI * k as f64) / 3.0).cos();
            roots.push(t - shift);
        }
    }

    // One Newton polish per root, then sort and dedup near-equal roots.
    for x in roots.iter_mut() {
        let f = ((c3 * *x + c2) * *x + c1) * *x + c0;
        let df = (3.0 * c3 * *x + 2.0 * c2) * *x + c1;
        if df.abs() > 1e-300 {
            let next = *x - f / df;
            if next.is_finite() {
                *x = next;
            }
        }
    }
    roots.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    roots.dedup_by(|a, b| (*a - *b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0));
    roots
}

/// The smallest real root inside `[lo, hi]`, if any.
///
/// # Examples
///
/// ```
/// use eotora_optim::cubic::root_in_interval;
///
/// // x³ - x = x(x-1)(x+1): roots -1, 0, 1.
/// assert_eq!(root_in_interval(1.0, 0.0, -1.0, 0.0, 0.5, 2.0), Some(1.0));
/// assert_eq!(root_in_interval(1.0, 0.0, -1.0, 0.0, 2.0, 3.0), None);
/// ```
pub fn root_in_interval(c3: f64, c2: f64, c1: f64, c0: f64, lo: f64, hi: f64) -> Option<f64> {
    real_roots(c3, c2, c1, c0).into_iter().find(|&x| (lo..=hi).contains(&x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::rng::Pcg32;

    fn eval(c3: f64, c2: f64, c1: f64, c0: f64, x: f64) -> f64 {
        ((c3 * x + c2) * x + c1) * x + c0
    }

    #[test]
    fn three_distinct_roots() {
        let roots = real_roots(2.0, -12.0, 22.0, -12.0); // 2(x-1)(x-2)(x-3)
        assert_eq!(roots.len(), 3);
        for (r, expect) in roots.iter().zip([1.0, 2.0, 3.0]) {
            assert!((r - expect).abs() < 1e-9, "{r} vs {expect}");
        }
    }

    #[test]
    fn single_real_root() {
        // x³ + x + 1 has exactly one real root near -0.6823.
        let roots = real_roots(1.0, 0.0, 1.0, 1.0);
        assert_eq!(roots.len(), 1);
        assert!((roots[0] + 0.682_327_803_828_019_3).abs() < 1e-9);
    }

    #[test]
    fn triple_root() {
        // (x-2)³ = x³ - 6x² + 12x - 8.
        let roots = real_roots(1.0, -6.0, 12.0, -8.0);
        assert_eq!(roots.len(), 1);
        assert!((roots[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn quadratic_fallback() {
        let roots = real_roots(0.0, 1.0, -3.0, 2.0); // (x-1)(x-2)
        assert_eq!(roots.len(), 2);
        assert!((roots[0] - 1.0).abs() < 1e-12 && (roots[1] - 2.0).abs() < 1e-12);
        assert!(real_roots(0.0, 1.0, 0.0, 1.0).is_empty()); // x²+1
    }

    #[test]
    fn linear_and_constant_fallback() {
        assert_eq!(real_roots(0.0, 0.0, 2.0, -4.0), vec![2.0]);
        assert!(real_roots(0.0, 0.0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn random_cubics_roots_verify() {
        let mut rng = Pcg32::seed(8);
        for _ in 0..500 {
            let (c3, c2, c1, c0) = (
                rng.uniform_in(-5.0, 5.0),
                rng.uniform_in(-5.0, 5.0),
                rng.uniform_in(-5.0, 5.0),
                rng.uniform_in(-5.0, 5.0),
            );
            if c3.abs() < 1e-3 {
                continue;
            }
            let roots = real_roots(c3, c2, c1, c0);
            assert!(!roots.is_empty(), "odd-degree polynomial must have a real root");
            let scale = c3.abs().max(c2.abs()).max(c1.abs()).max(c0.abs());
            for r in roots {
                let v = eval(c3, c2, c1, c0, r);
                let rscale = scale * (1.0 + r.abs().powi(3));
                assert!(v.abs() <= 1e-7 * rscale, "residual {v} at root {r}");
            }
        }
    }

    #[test]
    fn interval_filter() {
        assert!(root_in_interval(1.0, -6.0, 11.0, -6.0, 1.5, 2.5).is_some());
        assert!(root_in_interval(1.0, -6.0, 11.0, -6.0, 3.5, 9.0).is_none());
    }

    #[test]
    fn p2b_shaped_cubic() {
        // 2a·c_w/1e18 · x³ + b·c_w/1e9 · x² − V·A = 0 at realistic scales.
        let (a, b) = (4.6, 4.1);
        let c_w = 40.0 * 0.06 * 1e-3; // Q·p·kwh
        let va = 100.0 * 2e7;
        let c3 = 2.0 * a * c_w / 1e18;
        let c2 = b * c_w / 1e9;
        let root = root_in_interval(c3, c2, 0.0, -va, 1.0, 1e12).expect("positive root exists");
        // Verify stationarity: V·A/x² == c_w (2a x/1e18 + b/1e9).
        let lhs = va / (root * root);
        let rhs = c_w * (2.0 * a * root / 1e18 + b / 1e9);
        assert!((lhs - rhs).abs() <= 1e-9 * lhs, "{lhs} vs {rhs}");
    }
}
