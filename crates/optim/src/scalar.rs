//! One-dimensional minimization of convex functions on an interval.
//!
//! Subproblem P2-B of the paper is convex and separable per edge server;
//! each server's frequency is found by minimizing a scalar convex function
//! `ω ↦ V·A/ω + Q·p·g(ω)` on `[F^L, F^U]`. The paper calls CVX for this; we
//! instead use the classical derivative-free and derivative-based methods
//! below, which agree with the KKT conditions to solver tolerance.

/// Result of a scalar minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarMinimum {
    /// Argmin found (within the requested tolerance).
    pub x: f64,
    /// Objective value at [`ScalarMinimum::x`].
    pub value: f64,
    /// Number of function (or derivative) evaluations used.
    pub evaluations: usize,
}

const INV_PHI: f64 = 0.618_033_988_749_894_9; // (√5 − 1) / 2

/// Golden-section search for the minimum of a unimodal `f` on `[lo, hi]`.
///
/// Derivative-free and robust: only requires `f` to be unimodal (every convex
/// function is). Stops when the bracket is shorter than `tol` or after
/// `max_iter` shrink steps.
///
/// # Panics
///
/// Panics if `lo > hi`, either bound is non-finite, or `tol` is not positive.
///
/// # Examples
///
/// ```
/// use eotora_optim::scalar::minimize_golden;
///
/// let m = minimize_golden(|x: f64| x.exp() - 2.0 * x, 0.0, 2.0, 1e-10, 200);
/// assert!((m.x - 2.0_f64.ln()).abs() < 1e-6);
/// ```
pub fn minimize_golden<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> ScalarMinimum {
    assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid bracket [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive");
    let (mut a, mut b) = (lo, hi);
    let mut evals = 0;
    if a == b {
        let v = f(a);
        return ScalarMinimum { x: a, value: v, evaluations: 1 };
    }
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    evals += 2;
    for _ in 0..max_iter {
        if (b - a).abs() <= tol {
            break;
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
        evals += 1;
    }
    let x = 0.5 * (a + b);
    let value = f(x);
    evals += 1;
    // The endpoints can beat the interior for monotone objectives; check them.
    let (flo, fhi) = (f(lo), f(hi));
    evals += 2;
    let mut best = ScalarMinimum { x, value, evaluations: evals };
    if flo < best.value {
        best = ScalarMinimum { x: lo, value: flo, evaluations: evals };
    }
    if fhi < best.value {
        best = ScalarMinimum { x: hi, value: fhi, evaluations: evals };
    }
    best
}

/// Minimizes a differentiable convex function on `[lo, hi]` by bisecting its
/// derivative `df`.
///
/// For a convex `f`, `df` is non-decreasing; the minimizer is `lo` if
/// `df(lo) ≥ 0`, `hi` if `df(hi) ≤ 0`, and otherwise the root of `df`.
/// Returns the argmin together with `f(x)` evaluated via the supplied `f`.
///
/// This is the production solver for P2-B: with a differentiable energy model
/// it converges to machine precision in ~60 derivative evaluations.
///
/// # Panics
///
/// Panics if `lo > hi`, either bound is non-finite, or `tol` is not positive.
///
/// # Examples
///
/// ```
/// use eotora_optim::scalar::minimize_bisection;
///
/// // f(x) = (x-3)^2, f'(x) = 2(x-3)
/// let m = minimize_bisection(|x| (x - 3.0) * (x - 3.0), |x| 2.0 * (x - 3.0), 0.0, 10.0, 1e-12, 200);
/// assert!((m.x - 3.0).abs() < 1e-9);
/// ```
pub fn minimize_bisection<F, D>(
    mut f: F,
    mut df: D,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> ScalarMinimum
where
    F: FnMut(f64) -> f64,
    D: FnMut(f64) -> f64,
{
    assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid bracket [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive");
    let mut evals = 2;
    if df(lo) >= 0.0 {
        let v = f(lo);
        return ScalarMinimum { x: lo, value: v, evaluations: evals + 1 };
    }
    if df(hi) <= 0.0 {
        let v = f(hi);
        return ScalarMinimum { x: hi, value: v, evaluations: evals + 1 };
    }
    let (mut a, mut b) = (lo, hi);
    for _ in 0..max_iter {
        if (b - a).abs() <= tol {
            break;
        }
        let mid = 0.5 * (a + b);
        let g = df(mid);
        evals += 1;
        if g > 0.0 {
            b = mid;
        } else if g < 0.0 {
            a = mid;
        } else {
            a = mid;
            b = mid;
        }
    }
    let x = 0.5 * (a + b);
    let value = f(x);
    ScalarMinimum { x, value, evaluations: evals + 1 }
}

/// Brent's method: golden-section robustness with superlinear parabolic
/// interpolation steps when the objective cooperates (Brent 1973, ch. 5).
///
/// Converges in far fewer evaluations than pure golden section on smooth
/// objectives — useful when `f` is expensive (e.g. a nested simulation) and
/// no derivative is available.
///
/// # Panics
///
/// Panics if `lo > hi`, either bound is non-finite, or `tol` is not
/// positive.
///
/// # Examples
///
/// ```
/// use eotora_optim::scalar::minimize_brent;
///
/// let m = minimize_brent(|x: f64| (x - 1.25).powi(2) + 0.5, 0.0, 4.0, 1e-10, 100);
/// assert!((m.x - 1.25).abs() < 1e-7);
/// assert!((m.value - 0.5).abs() < 1e-12);
/// ```
pub fn minimize_brent<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> ScalarMinimum {
    assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid bracket [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive");
    if lo == hi {
        let v = f(lo);
        return ScalarMinimum { x: lo, value: v, evaluations: 1 };
    }
    const CGOLD: f64 = 0.381_966_011_250_105; // 2 − φ
    let (mut a, mut b) = (lo, hi);
    let mut x = a + CGOLD * (b - a);
    let (mut w, mut v) = (x, x);
    let mut fx = f(x);
    let (mut fw, mut fv) = (fx, fx);
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;
    let mut evals = 1;

    for _ in 0..max_iter {
        let xm = 0.5 * (a + b);
        let tol1 = tol * x.abs() + 1e-15;
        let tol2 = 2.0 * tol1;
        if (x - xm).abs() <= tol2 - 0.5 * (b - a) {
            break;
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Try a parabolic fit through (v, w, x).
            let r = (x - w) * (fx - fv);
            let q0 = (x - v) * (fx - fw);
            let mut p = (x - v) * q0 - (x - w) * r;
            let mut q = 2.0 * (q0 - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_old = e;
            e = d;
            if p.abs() < (0.5 * q * e_old).abs() && p > q * (a - x) && p < q * (b - x) {
                d = p / q;
                let u = x + d;
                if (u - a) < tol2 || (b - u) < tol2 {
                    d = if xm > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x >= xm { a - x } else { b - x };
            d = CGOLD * e;
        }
        let u = if d.abs() >= tol1 { x + d } else { x + if d > 0.0 { tol1 } else { -tol1 } };
        let fu = f(u);
        evals += 1;
        if fu <= fx {
            if u >= x {
                a = x;
            } else {
                b = x;
            }
            (v, fv) = (w, fw);
            (w, fw) = (x, fx);
            (x, fx) = (u, fu);
        } else {
            if u < x {
                a = u;
            } else {
                b = u;
            }
            if fu <= fw || w == x {
                (v, fv) = (w, fw);
                (w, fw) = (u, fu);
            } else if fu <= fv || v == x || v == w {
                (v, fv) = (u, fu);
            }
        }
    }
    // Endpoints can win for monotone objectives, as in golden section.
    let (flo, fhi) = (f(lo), f(hi));
    evals += 2;
    let mut best = ScalarMinimum { x, value: fx, evaluations: evals };
    if flo < best.value {
        best = ScalarMinimum { x: lo, value: flo, evaluations: evals };
    }
    if fhi < best.value {
        best = ScalarMinimum { x: hi, value: fhi, evaluations: evals };
    }
    best
}

/// Verifies that `f` is (approximately) convex on `[lo, hi]` by sampling the
/// midpoint inequality on `samples` random-free evenly spaced triples.
///
/// Used by the energy-model validators: the paper's analysis requires each
/// `g_n` to be convex, and this check catches misconfigured custom models
/// early. Tolerance `tol` absorbs floating-point slack.
///
/// # Examples
///
/// ```
/// use eotora_optim::scalar::is_convex_on;
///
/// assert!(is_convex_on(|x| x * x, -1.0, 1.0, 64, 1e-9));
/// assert!(!is_convex_on(|x| -(x * x), -1.0, 1.0, 64, 1e-9));
/// ```
pub fn is_convex_on<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    samples: usize,
    tol: f64,
) -> bool {
    if samples < 3 || hi <= lo {
        return true;
    }
    let xs: Vec<f64> =
        (0..samples).map(|i| lo + (hi - lo) * i as f64 / (samples - 1) as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
    let scale = ys.iter().fold(1.0f64, |acc, &y| acc.max(y.abs()));
    for w in ys.windows(3) {
        // Midpoint convexity on an even grid: f(x_{i+1}) ≤ (f(x_i)+f(x_{i+2}))/2.
        if w[1] > 0.5 * (w[0] + w[2]) + tol * scale {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::assert_close;

    #[test]
    fn golden_quadratic() {
        let m = minimize_golden(|x| (x - 4.5) * (x - 4.5) + 1.0, 0.0, 10.0, 1e-11, 300);
        assert_close!(m.x, 4.5, 1e-6);
        assert_close!(m.value, 1.0, 1e-9);
    }

    #[test]
    fn golden_minimum_at_left_endpoint() {
        let m = minimize_golden(|x| x, 2.0, 5.0, 1e-10, 200);
        assert_close!(m.x, 2.0, 1e-9);
    }

    #[test]
    fn golden_minimum_at_right_endpoint() {
        let m = minimize_golden(|x| -x, 2.0, 5.0, 1e-10, 200);
        assert_close!(m.x, 5.0, 1e-9);
    }

    #[test]
    fn golden_degenerate_interval() {
        let m = minimize_golden(|x| x * x, 3.0, 3.0, 1e-10, 100);
        assert_eq!(m.x, 3.0);
        assert_eq!(m.value, 9.0);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn golden_rejects_reversed_bracket() {
        minimize_golden(|x| x, 5.0, 2.0, 1e-10, 10);
    }

    #[test]
    fn bisection_interior_root() {
        let m = minimize_bisection(
            |x| x * x * x * x - 8.0 * x,
            |x| 4.0 * x * x * x - 8.0,
            0.0,
            10.0,
            1e-13,
            300,
        );
        assert_close!(m.x, 2.0f64.cbrt(), 1e-9);
    }

    #[test]
    fn bisection_clamps_to_lower_bound() {
        // f'(x) = 2(x+5) > 0 on [0, 4]: min at 0.
        let m = minimize_bisection(
            |x| (x + 5.0) * (x + 5.0),
            |x| 2.0 * (x + 5.0),
            0.0,
            4.0,
            1e-12,
            100,
        );
        assert_eq!(m.x, 0.0);
    }

    #[test]
    fn bisection_clamps_to_upper_bound() {
        let m = minimize_bisection(|x| -x, |_| -1.0, 0.0, 4.0, 1e-12, 100);
        assert_eq!(m.x, 4.0);
    }

    #[test]
    fn bisection_and_golden_agree_on_p2b_shape() {
        // The actual P2-B per-server objective: V*A/w + Q*p*(a w^2 + b w + c).
        let (v, a_load, q, p) = (100.0, 3.5e18, 40.0, 0.07);
        let (a, b, c) = (8.0e-19, 1.0e-9, 10.0);
        let f = |w: f64| v * a_load / w + q * p * (a * w * w + b * w + c);
        let df = |w: f64| -v * a_load / (w * w) + q * p * (2.0 * a * w + b);
        let (lo, hi) = (1.8e9, 3.6e9);
        let g = minimize_golden(f, lo, hi, 1e-3, 500);
        let bi = minimize_bisection(f, df, lo, hi, 1e-6, 500);
        assert_close!(g.x, bi.x, 1e-4);
        assert_close!(g.value, bi.value, 1e-9);
    }

    #[test]
    fn brent_matches_golden_on_quadratics() {
        let mut rng = eotora_util::rng::Pcg32::seed(31);
        for _ in 0..50 {
            let c = rng.uniform_in(-5.0, 5.0);
            let g = minimize_golden(|x| (x - c) * (x - c), -10.0, 10.0, 1e-11, 400);
            let b = minimize_brent(|x| (x - c) * (x - c), -10.0, 10.0, 1e-11, 200);
            assert_close!(g.x, b.x, 1e-6);
            assert!(b.evaluations <= g.evaluations, "brent should not need more evals");
        }
    }

    #[test]
    fn brent_endpoint_minimum() {
        let m = minimize_brent(|x| x, 2.0, 5.0, 1e-10, 100);
        assert_eq!(m.x, 2.0);
        let m = minimize_brent(|x| -x, 2.0, 5.0, 1e-10, 100);
        assert_eq!(m.x, 5.0);
    }

    #[test]
    fn brent_degenerate_interval() {
        let m = minimize_brent(|x| x * x, 3.0, 3.0, 1e-10, 100);
        assert_eq!((m.x, m.value), (3.0, 9.0));
    }

    #[test]
    fn brent_on_p2b_shape_agrees_with_bisection() {
        let (v, a_load, q, p) = (100.0, 3.5e18, 40.0, 0.07);
        let (a, b, c) = (8.0e-19, 1.0e-9, 10.0);
        let f = |w: f64| v * a_load / w + q * p * (a * w * w + b * w + c);
        let df = |w: f64| -v * a_load / (w * w) + q * p * (2.0 * a * w + b);
        let bi = minimize_bisection(f, df, 1.8e9, 3.6e9, 1e-6, 500);
        let br = minimize_brent(f, 1.8e9, 3.6e9, 1e-12, 200);
        assert_close!(bi.x, br.x, 1e-6);
    }

    #[test]
    fn convexity_check_accepts_affine() {
        assert!(is_convex_on(|x| 3.0 * x + 1.0, 0.0, 5.0, 32, 1e-12));
    }

    #[test]
    fn convexity_check_rejects_sine_bump() {
        assert!(!is_convex_on(|x: f64| x.sin(), 0.0, std::f64::consts::PI, 64, 1e-9));
    }
}
