//! Numerical-optimization substrate for the `eotora` workspace.
//!
//! The paper relies on two external solvers that this crate replaces with
//! self-contained implementations:
//!
//! * **CVX** (used for subproblem P2-B) → [`scalar`]: derivative bisection,
//!   golden-section search and Brent minimization for one-dimensional convex
//!   problems. P2-B is separable per edge server, so these are all that is
//!   needed — each server solves `min_ω V·A/ω + Q·p·g(ω)` on a box.
//! * **Gurobi** (used for the optimal baseline in Fig. 4/5) →
//!   [`branch_bound`]: a generic best-first branch-and-bound over sequential
//!   discrete choices with admissible lower bounds, node budgets, and
//!   incumbent/bound reporting.
//!
//! Supporting machinery:
//!
//! * [`linalg`] — a small dense matrix type with partially pivoted LU solve,
//!   enough for the normal equations of low-degree polynomial fits.
//! * [`least_squares`] — polynomial least squares (the paper's quadratic fit
//!   of CPU power data in Fig. 3) plus goodness-of-fit.
//! * [`simplex`] — Euclidean projection onto the probability simplex, used to
//!   cross-check the closed-form allocations of Lemma 1 numerically.
//! * [`gradient`] — projected gradient descent with backtracking line search
//!   for box- or simplex-constrained smooth problems (test oracle for the
//!   closed forms; also usable on its own).
//!
//! # Examples
//!
//! ```
//! use eotora_optim::scalar::minimize_golden;
//!
//! // min (x-2)^2 on [0, 10]
//! let m = minimize_golden(|x| (x - 2.0) * (x - 2.0), 0.0, 10.0, 1e-10, 200);
//! assert!((m.x - 2.0).abs() < 1e-6);
//! ```

pub mod branch_bound;
pub mod cubic;
pub mod gradient;
pub mod least_squares;
pub mod linalg;
pub mod scalar;
pub mod simplex;

pub use branch_bound::{BnbOutcome, BnbResult, BranchAndBound, SequentialProblem};
pub use least_squares::{polyfit, PolyFit};
pub use linalg::Matrix;
pub use scalar::{minimize_bisection, minimize_brent, minimize_golden, ScalarMinimum};
pub use simplex::project_simplex;
