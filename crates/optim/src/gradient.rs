//! Projected gradient descent for smooth constrained minimization.
//!
//! Serves two roles in the workspace: a *numerical oracle* that
//! cross-validates the paper's closed-form resource allocations (Lemma 1)
//! in tests, and a general fallback for convex subproblems without closed
//! forms (e.g. experimenting with non-separable energy couplings).

/// Configuration for [`minimize_projected`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientConfig {
    /// Initial step size for backtracking line search.
    pub initial_step: f64,
    /// Multiplicative backtracking factor in `(0, 1)`.
    pub backtrack: f64,
    /// Armijo sufficient-decrease constant in `(0, 1)`.
    pub armijo: f64,
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Stop when the projected step moves less than this (ℓ∞).
    pub tol: f64,
}

impl Default for GradientConfig {
    fn default() -> Self {
        Self { initial_step: 1.0, backtrack: 0.5, armijo: 1e-4, max_iter: 2000, tol: 1e-10 }
    }
}

/// Result of a projected-gradient run.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientResult {
    /// Final iterate (feasible: it is the image of the projection).
    pub x: Vec<f64>,
    /// Objective value at the final iterate.
    pub value: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether the movement tolerance was met before `max_iter`.
    pub converged: bool,
}

/// Minimizes `f` over a convex set given by projection operator `project`,
/// starting from `x0`, using gradient `grad` with Armijo backtracking.
///
/// `project` must map any point to the feasible set (e.g.
/// [`crate::simplex::project_simplex`] or a box clamp). For convex `f` and
/// convex feasible sets this converges to the constrained minimum.
///
/// # Panics
///
/// Panics if `x0` is empty or the config has non-positive step/tolerance.
///
/// # Examples
///
/// ```
/// use eotora_optim::gradient::{minimize_projected, GradientConfig};
///
/// // min (x0-1)^2 + (x1+2)^2 over the box [0,1]^2 → optimum (1, 0).
/// let clamp = |v: &[f64]| v.iter().map(|x| x.clamp(0.0, 1.0)).collect::<Vec<_>>();
/// let r = minimize_projected(
///     |x| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2),
///     |x| vec![2.0 * (x[0] - 1.0), 2.0 * (x[1] + 2.0)],
///     clamp,
///     &[0.5, 0.5],
///     GradientConfig::default(),
/// );
/// assert!((r.x[0] - 1.0).abs() < 1e-6 && r.x[1].abs() < 1e-6);
/// ```
pub fn minimize_projected<F, G, P>(
    mut f: F,
    mut grad: G,
    mut project: P,
    x0: &[f64],
    config: GradientConfig,
) -> GradientResult
where
    F: FnMut(&[f64]) -> f64,
    G: FnMut(&[f64]) -> Vec<f64>,
    P: FnMut(&[f64]) -> Vec<f64>,
{
    assert!(!x0.is_empty(), "empty start point");
    assert!(config.initial_step > 0.0 && config.tol > 0.0, "step and tol must be positive");
    assert!((0.0..1.0).contains(&config.backtrack) && config.backtrack > 0.0, "backtrack in (0,1)");

    let mut x = project(x0);
    let mut fx = f(&x);
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..config.max_iter {
        iterations += 1;
        let g = grad(&x);
        let mut step = config.initial_step;
        let mut accepted = false;
        // Backtrack until the Armijo condition holds for the projected step.
        for _ in 0..60 {
            let cand: Vec<f64> = x.iter().zip(&g).map(|(xi, gi)| xi - step * gi).collect();
            let cand = project(&cand);
            let fc = f(&cand);
            let decrease: f64 =
                x.iter().zip(&cand).map(|(xi, ci)| (xi - ci) * (xi - ci)).sum::<f64>()
                    / step.max(1e-300);
            if fc <= fx - config.armijo * decrease {
                let moved = x.iter().zip(&cand).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
                x = cand;
                fx = fc;
                accepted = true;
                if moved <= config.tol {
                    converged = true;
                }
                break;
            }
            step *= config.backtrack;
        }
        if !accepted {
            // Line search failed to find descent: stationary to precision.
            converged = true;
        }
        if converged {
            break;
        }
    }

    GradientResult { x, value: fx, iterations, converged }
}

/// Clamps each coordinate of `v` into `[lo[i], hi[i]]` — the projection onto
/// a box. Convenience for [`minimize_projected`].
///
/// # Panics
///
/// Panics if the slice lengths differ or any `lo[i] > hi[i]`.
///
/// # Examples
///
/// ```
/// use eotora_optim::gradient::project_box;
///
/// assert_eq!(project_box(&[-1.0, 5.0], &[0.0, 0.0], &[1.0, 1.0]), vec![0.0, 1.0]);
/// ```
pub fn project_box(v: &[f64], lo: &[f64], hi: &[f64]) -> Vec<f64> {
    assert!(v.len() == lo.len() && v.len() == hi.len(), "length mismatch");
    v.iter()
        .zip(lo.iter().zip(hi))
        .map(|(&x, (&l, &h))| {
            assert!(l <= h, "box bound {l} > {h}");
            x.clamp(l, h)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::project_simplex;
    use eotora_util::assert_close;

    #[test]
    fn unconstrained_quadratic() {
        let r = minimize_projected(
            |x| (x[0] - 3.0).powi(2),
            |x| vec![2.0 * (x[0] - 3.0)],
            |v| v.to_vec(),
            &[0.0],
            GradientConfig::default(),
        );
        assert!(r.converged);
        assert_close!(r.x[0], 3.0, 1e-6);
    }

    #[test]
    fn box_constrained_active_bound() {
        let r = minimize_projected(
            |x| (x[0] - 5.0).powi(2),
            |x| vec![2.0 * (x[0] - 5.0)],
            |v| project_box(v, &[0.0], &[1.0]),
            &[0.5],
            GradientConfig::default(),
        );
        assert_close!(r.x[0], 1.0, 1e-9);
    }

    #[test]
    fn simplex_constrained_matches_closed_form() {
        // min Σ w_i / x_i over the simplex has solution x_i ∝ sqrt(w_i)
        // — the exact structure behind Lemma 1 of the paper.
        let w = [1.0, 4.0, 9.0];
        let r = minimize_projected(
            |x| w.iter().zip(x).map(|(wi, xi)| wi / xi.max(1e-9)).sum(),
            |x| w.iter().zip(x).map(|(wi, xi)| -wi / (xi.max(1e-9) * xi.max(1e-9))).collect(),
            |v| project_simplex(v, 1.0),
            &[1.0 / 3.0; 3],
            GradientConfig { max_iter: 20_000, tol: 1e-12, ..Default::default() },
        );
        let norm: f64 = w.iter().map(|wi| wi.sqrt()).sum();
        for (xi, wi) in r.x.iter().zip(&w) {
            assert_close!(*xi, wi.sqrt() / norm, 1e-4);
        }
    }

    #[test]
    fn respects_feasibility_throughout() {
        let r = minimize_projected(
            |x| x.iter().map(|v| v * v).sum(),
            |x| x.iter().map(|v| 2.0 * v).collect(),
            |v| project_simplex(v, 1.0),
            &[0.7, 0.3],
            GradientConfig::default(),
        );
        assert_close!(r.x.iter().sum::<f64>(), 1.0, 1e-9);
        // Symmetric objective on the simplex → equal split.
        assert_close!(r.x[0], 0.5, 1e-6);
    }

    #[test]
    fn zero_gradient_converges_immediately() {
        let r = minimize_projected(
            |_| 7.0,
            |x| vec![0.0; x.len()],
            |v| v.to_vec(),
            &[1.0, 2.0],
            GradientConfig::default(),
        );
        assert!(r.converged);
        assert_eq!(r.value, 7.0);
        assert!(r.iterations <= 2);
    }

    #[test]
    #[should_panic(expected = "empty start")]
    fn empty_start_panics() {
        minimize_projected(
            |_| 0.0,
            |_| vec![],
            |v: &[f64]| v.to_vec(),
            &[],
            GradientConfig::default(),
        );
    }

    #[test]
    fn project_box_behaviour() {
        assert_eq!(project_box(&[0.5], &[0.0], &[1.0]), vec![0.5]);
        assert_eq!(project_box(&[2.0, -2.0], &[0.0, 0.0], &[1.0, 1.0]), vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn project_box_length_mismatch_panics() {
        project_box(&[1.0], &[0.0, 0.0], &[1.0, 1.0]);
    }
}
