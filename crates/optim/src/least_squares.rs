//! Polynomial least-squares fitting.
//!
//! The paper fits a quadratic to measured i7-3770K power/frequency points
//! (Fig. 3) and perturbs the coefficients per server. [`polyfit`] implements
//! that fit via the normal equations `(XᵀX)β = Xᵀy` solved with the LU
//! routine in [`crate::linalg`], which is well-conditioned for the degree-2,
//! 10-point problems in play here.

use crate::linalg::{LinalgError, Matrix};

/// A fitted polynomial `y = c₀ + c₁·x + … + c_d·x^d` with fit diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct PolyFit {
    /// Coefficients in ascending-degree order (`coeffs[k]` multiplies `x^k`).
    pub coeffs: Vec<f64>,
    /// Coefficient of determination on the training points.
    pub r_squared: f64,
}

impl PolyFit {
    /// Evaluates the polynomial at `x` (Horner's rule).
    ///
    /// # Examples
    ///
    /// ```
    /// use eotora_optim::least_squares::polyfit;
    ///
    /// let xs = [0.0, 1.0, 2.0, 3.0];
    /// let ys = [1.0, 3.0, 5.0, 7.0]; // y = 1 + 2x
    /// let fit = polyfit(&xs, &ys, 1).unwrap();
    /// assert!((fit.eval(10.0) - 21.0).abs() < 1e-9);
    /// ```
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates the derivative of the polynomial at `x`.
    pub fn eval_derivative(&self, x: f64) -> f64 {
        self.coeffs
            .iter()
            .enumerate()
            .skip(1)
            .rev()
            .fold(0.0, |acc, (k, &c)| acc * x + k as f64 * c)
    }
}

/// Errors from [`polyfit`].
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// `xs` and `ys` have different lengths, or there are fewer points than
    /// coefficients.
    BadInput {
        /// Human-readable description.
        context: &'static str,
    },
    /// The normal equations are singular (e.g. duplicated x values only).
    Degenerate(LinalgError),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadInput { context } => write!(f, "bad fit input: {context}"),
            Self::Degenerate(e) => write!(f, "degenerate normal equations: {e}"),
        }
    }
}

impl std::error::Error for FitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Degenerate(e) => Some(e),
            Self::BadInput { .. } => None,
        }
    }
}

/// Fits a degree-`degree` polynomial to `(xs, ys)` by ordinary least squares.
///
/// # Errors
///
/// Returns [`FitError::BadInput`] when the inputs are mismatched or too few,
/// and [`FitError::Degenerate`] when the design matrix is rank-deficient.
///
/// # Examples
///
/// ```
/// use eotora_optim::least_squares::polyfit;
///
/// // Exact quadratic recovery.
/// let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
/// let ys: Vec<f64> = xs.iter().map(|&x| 2.0 - x + 0.5 * x * x).collect();
/// let fit = polyfit(&xs, &ys, 2).unwrap();
/// assert!((fit.coeffs[2] - 0.5).abs() < 1e-8);
/// assert!(fit.r_squared > 0.999999);
/// ```
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<PolyFit, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::BadInput { context: "xs and ys lengths differ" });
    }
    let n_coeffs = degree + 1;
    if xs.len() < n_coeffs {
        return Err(FitError::BadInput { context: "fewer points than coefficients" });
    }
    // Design matrix X with X[i][k] = x_i^k.
    let mut x = Matrix::zeros(xs.len(), n_coeffs);
    for (i, &xi) in xs.iter().enumerate() {
        let mut p = 1.0;
        for k in 0..n_coeffs {
            x[(i, k)] = p;
            p *= xi;
        }
    }
    let xt = x.transpose();
    let xtx = xt.mul(&x).expect("shapes agree by construction");
    let xty = xt.mul_vec(ys).expect("shapes agree by construction");
    let coeffs = xtx.solve(&xty).map_err(FitError::Degenerate)?;

    let fit = PolyFit { coeffs, r_squared: 0.0 };
    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|&y| (y - mean_y) * (y - mean_y)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&xi, &yi)| {
            let e = yi - fit.eval(xi);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    Ok(PolyFit { r_squared, ..fit })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::assert_close;
    use eotora_util::rng::Pcg32;

    #[test]
    fn exact_line() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 7.0, 9.0];
        let fit = polyfit(&xs, &ys, 1).unwrap();
        assert_close!(fit.coeffs[0], 3.0, 1e-9);
        assert_close!(fit.coeffs[1], 2.0, 1e-9);
        assert_close!(fit.r_squared, 1.0, 1e-12);
    }

    #[test]
    fn noisy_quadratic_recovers_coefficients() {
        let mut rng = Pcg32::seed(15);
        let xs: Vec<f64> = (0..200).map(|i| 1.0 + i as f64 * 0.01).collect();
        let ys: Vec<f64> =
            xs.iter().map(|&x| 4.0 + 3.0 * x + 2.0 * x * x + rng.normal(0.0, 0.01)).collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        assert_close!(fit.coeffs[0], 4.0, 0.05);
        assert_close!(fit.coeffs[1], 3.0, 0.05);
        assert_close!(fit.coeffs[2], 2.0, 0.02);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn derivative_eval() {
        let fit = PolyFit { coeffs: vec![1.0, -2.0, 3.0], r_squared: 1.0 };
        // d/dx (1 - 2x + 3x^2) = -2 + 6x
        assert_close!(fit.eval_derivative(0.0), -2.0, 1e-12);
        assert_close!(fit.eval_derivative(2.0), 10.0, 1e-12);
    }

    #[test]
    fn constant_polynomial_derivative_is_zero() {
        let fit = PolyFit { coeffs: vec![7.0], r_squared: 1.0 };
        assert_eq!(fit.eval_derivative(123.0), 0.0);
        assert_eq!(fit.eval(123.0), 7.0);
    }

    #[test]
    fn input_validation() {
        assert!(matches!(polyfit(&[1.0], &[1.0, 2.0], 1), Err(FitError::BadInput { .. })));
        assert!(matches!(polyfit(&[1.0, 2.0], &[1.0, 2.0], 2), Err(FitError::BadInput { .. })));
    }

    #[test]
    fn degenerate_design_detected() {
        // All x identical: columns of X are linearly dependent for degree ≥ 1.
        let xs = [2.0, 2.0, 2.0];
        let ys = [1.0, 2.0, 3.0];
        assert!(matches!(polyfit(&xs, &ys, 1), Err(FitError::Degenerate(_))));
    }

    #[test]
    fn r_squared_flat_target() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = polyfit(&xs, &ys, 1).unwrap();
        assert_close!(fit.r_squared, 1.0, 1e-12);
    }
}
