//! Euclidean projection onto the scaled probability simplex.
//!
//! Used as the projection operator when cross-checking the paper's Lemma 1
//! closed-form allocations with projected gradient descent: the bandwidth and
//! compute shares live on `{φ ≥ 0, Σφ ≤ 1}`, and at the optimum the budget
//! binds, so projecting onto `{φ ≥ 0, Σφ = s}` is the relevant operation.

/// Projects `v` onto the simplex `{x : x ≥ 0, Σx = s}` in `O(n log n)`
/// (Duchi, Shalev-Shwartz, Singer, Chandra, ICML 2008).
///
/// Returns the unique Euclidean projection.
///
/// # Panics
///
/// Panics if `s` is not positive, `v` is empty, or any entry is NaN.
///
/// # Examples
///
/// ```
/// use eotora_optim::simplex::project_simplex;
///
/// let p = project_simplex(&[0.5, 0.5], 1.0);
/// assert_eq!(p, vec![0.5, 0.5]); // already feasible
///
/// let p = project_simplex(&[2.0, 0.0], 1.0);
/// assert_eq!(p, vec![1.0, 0.0]);
/// ```
pub fn project_simplex(v: &[f64], s: f64) -> Vec<f64> {
    assert!(s > 0.0, "simplex scale must be positive");
    assert!(!v.is_empty(), "cannot project an empty vector");
    assert!(v.iter().all(|x| !x.is_nan()), "NaN in projection input");

    let mut u: Vec<f64> = v.to_vec();
    u.sort_by(|a, b| b.partial_cmp(a).expect("NaN filtered above"));
    let mut css = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let t = (css - s) / (i as f64 + 1.0);
        if ui - t > 0.0 {
            rho = i;
            theta = t;
        }
    }
    let _ = rho;
    v.iter().map(|&x| (x - theta).max(0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::assert_close;
    use eotora_util::rng::Pcg32;

    fn sum(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn feasible_point_unchanged() {
        let p = project_simplex(&[0.2, 0.3, 0.5], 1.0);
        for (a, b) in p.iter().zip([0.2, 0.3, 0.5]) {
            assert_close!(*a, b, 1e-12);
        }
    }

    #[test]
    fn projects_to_unit_sum() {
        let mut rng = Pcg32::seed(2);
        for _ in 0..200 {
            let n = 1 + rng.below(10);
            let v: Vec<f64> = (0..n).map(|_| rng.uniform_in(-3.0, 3.0)).collect();
            let p = project_simplex(&v, 1.0);
            assert_close!(sum(&p), 1.0, 1e-9);
            assert!(p.iter().all(|&x| x >= -1e-12));
        }
    }

    #[test]
    fn scaled_simplex() {
        let p = project_simplex(&[10.0, 10.0], 4.0);
        assert_close!(p[0], 2.0, 1e-12);
        assert_close!(p[1], 2.0, 1e-12);
    }

    #[test]
    fn negative_entries_clamped() {
        let p = project_simplex(&[-5.0, 1.0], 1.0);
        assert_eq!(p[0], 0.0);
        assert_close!(p[1], 1.0, 1e-12);
    }

    #[test]
    fn projection_is_idempotent() {
        let mut rng = Pcg32::seed(3);
        for _ in 0..50 {
            let v: Vec<f64> = (0..6).map(|_| rng.uniform_in(-2.0, 2.0)).collect();
            let p1 = project_simplex(&v, 1.0);
            let p2 = project_simplex(&p1, 1.0);
            for (a, b) in p1.iter().zip(&p2) {
                assert_close!(*a, *b, 1e-9);
            }
        }
    }

    #[test]
    fn projection_minimizes_distance() {
        // Compare against a dense grid search on the 2-simplex.
        let v = [0.9, -0.1, 0.4];
        let p = project_simplex(&v, 1.0);
        let d_opt: f64 = v.iter().zip(&p).map(|(a, b)| (a - b) * (a - b)).sum();
        let m = 60;
        for i in 0..=m {
            for j in 0..=(m - i) {
                let cand =
                    [i as f64 / m as f64, j as f64 / m as f64, (m - i - j) as f64 / m as f64];
                let d: f64 = v.iter().zip(&cand).map(|(a, b)| (a - b) * (a - b)).sum();
                assert!(d + 1e-9 >= d_opt, "grid point beats projection");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        project_simplex(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        project_simplex(&[], 1.0);
    }
}
