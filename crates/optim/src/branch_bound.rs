//! Generic best-first branch-and-bound over sequential discrete choices.
//!
//! This is the workspace's replacement for the commercial Gurobi solver the
//! paper uses as its optimal baseline (§VI-B, Fig. 4–5). The P2-A offloading
//! problem assigns every mobile device a (base station, server) pair; framed
//! sequentially — stage `i` picks device `i`'s pair — it fits the
//! [`SequentialProblem`] interface: monotone cumulative cost plus an
//! admissible completion bound.
//!
//! The solver is exact when it exhausts the search tree within its node
//! budget; otherwise it reports the best incumbent *and* the proven global
//! lower bound, so callers can still certify approximation ratios.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A minimization problem decomposed into a fixed sequence of discrete
/// choices (one per *stage*).
///
/// Implementations must satisfy two contracts for the solver to be exact:
///
/// * **Monotonicity** — the cumulative cost returned by
///   [`apply`](Self::apply) never decreases along a path.
/// * **Admissibility** — [`completion_bound`](Self::completion_bound) never
///   exceeds the true optimal cost-to-complete from the given state.
pub trait SequentialProblem {
    /// Solver state after a prefix of choices (e.g. accumulated resource
    /// loads). Cloned on branching, so keep it compact.
    type State: Clone;

    /// Total number of stages (choices to make).
    fn num_stages(&self) -> usize;

    /// Number of alternatives available at `stage`.
    fn num_choices(&self, stage: usize) -> usize;

    /// State before any choice has been made.
    fn root_state(&self) -> Self::State;

    /// Applies `choice` at `stage`, returning the successor state and the new
    /// *cumulative* cost, or `None` if the choice is infeasible.
    fn apply(&self, state: &Self::State, stage: usize, choice: usize)
        -> Option<(Self::State, f64)>;

    /// Admissible (never over-estimating) lower bound on the additional cost
    /// of completing stages `stage..num_stages` from `state`.
    ///
    /// Returning `0.0` is always sound and degrades the search to uniform
    /// cost; tighter bounds prune more.
    fn completion_bound(&self, state: &Self::State, stage: usize) -> f64;
}

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BnbOutcome {
    /// Search tree exhausted; the incumbent is a proven optimum.
    Optimal,
    /// Node budget hit first; the incumbent is feasible but only
    /// `lower_bound`-certified.
    BudgetExhausted,
    /// No feasible assignment exists.
    Infeasible,
}

/// Result of a [`BranchAndBound::solve`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct BnbResult {
    /// Best complete assignment found (one choice index per stage), if any.
    pub best_choices: Option<Vec<usize>>,
    /// Cost of `best_choices`; `+∞` when infeasible.
    pub best_cost: f64,
    /// Proven global lower bound on the optimum.
    pub lower_bound: f64,
    /// Number of nodes expanded.
    pub nodes_expanded: usize,
    /// Stop reason.
    pub outcome: BnbOutcome,
}

impl BnbResult {
    /// `best_cost / lower_bound` — the certified approximation ratio of the
    /// incumbent (`1.0` when proven optimal, `+∞` if no bound).
    pub fn certified_ratio(&self) -> f64 {
        if self.lower_bound > 0.0 {
            self.best_cost / self.lower_bound
        } else if self.best_cost == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    }
}

struct Node<S> {
    bound: f64,
    stage: usize,
    state: S,
    choices: Vec<usize>,
}

impl<S> PartialEq for Node<S> {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl<S> Eq for Node<S> {}
impl<S> PartialOrd for Node<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Node<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest bound first.
        // Tie-break on depth so deeper nodes (closer to completion) pop first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.stage.cmp(&other.stage))
    }
}

/// Best-first branch-and-bound driver.
///
/// # Examples
///
/// ```
/// use eotora_optim::branch_bound::{BranchAndBound, BnbOutcome, SequentialProblem};
///
/// /// Pick one number per stage; cost is their sum (min picks smallest each stage).
/// struct PickSmallest(Vec<Vec<f64>>);
///
/// impl SequentialProblem for PickSmallest {
///     type State = f64; // cumulative cost doubles as state
///     fn num_stages(&self) -> usize { self.0.len() }
///     fn num_choices(&self, s: usize) -> usize { self.0[s].len() }
///     fn root_state(&self) -> f64 { 0.0 }
///     fn apply(&self, st: &f64, s: usize, c: usize) -> Option<(f64, f64)> {
///         let cost = st + self.0[s][c];
///         Some((cost, cost))
///     }
///     fn completion_bound(&self, _: &f64, stage: usize) -> f64 {
///         self.0[stage..].iter().map(|row| row.iter().cloned().fold(f64::INFINITY, f64::min)).sum()
///     }
/// }
///
/// let p = PickSmallest(vec![vec![3.0, 1.0], vec![5.0, 2.0]]);
/// let r = BranchAndBound::new().solve(&p);
/// assert_eq!(r.outcome, BnbOutcome::Optimal);
/// assert_eq!(r.best_cost, 3.0);
/// assert_eq!(r.best_choices, Some(vec![1, 1]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchAndBound {
    node_budget: usize,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchAndBound {
    /// Creates a solver with a generous default node budget (2 million).
    pub fn new() -> Self {
        Self { node_budget: 2_000_000 }
    }

    /// Sets the maximum number of expanded nodes before the search gives up
    /// and reports [`BnbOutcome::BudgetExhausted`].
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        self.node_budget = budget;
        self
    }

    /// Runs the search on `problem`.
    ///
    /// An optional warm-start incumbent can be installed with
    /// [`solve_with_incumbent`](Self::solve_with_incumbent).
    pub fn solve<P: SequentialProblem>(&self, problem: &P) -> BnbResult {
        self.solve_with_incumbent(problem, None)
    }

    /// Runs the search, optionally seeded with a known-feasible assignment
    /// (`incumbent`) whose cost prunes the tree from the start. In the
    /// Fig. 4 harness the incumbent is CGBA's solution.
    ///
    /// # Panics
    ///
    /// Panics if the incumbent's length differs from `problem.num_stages()`
    /// or it is infeasible under `problem.apply`.
    pub fn solve_with_incumbent<P: SequentialProblem>(
        &self,
        problem: &P,
        incumbent: Option<&[usize]>,
    ) -> BnbResult {
        let stages = problem.num_stages();
        let mut best_cost = f64::INFINITY;
        let mut best_choices: Option<Vec<usize>> = None;

        if let Some(choices) = incumbent {
            assert_eq!(choices.len(), stages, "incumbent length mismatch");
            let mut state = problem.root_state();
            let mut cost = 0.0;
            for (stage, &c) in choices.iter().enumerate() {
                let (next, ncost) =
                    problem.apply(&state, stage, c).expect("incumbent must be feasible");
                state = next;
                cost = ncost;
            }
            best_cost = cost;
            best_choices = Some(choices.to_vec());
        }

        if stages == 0 {
            return BnbResult {
                best_choices: Some(Vec::new()),
                best_cost: 0.0,
                lower_bound: 0.0,
                nodes_expanded: 0,
                outcome: BnbOutcome::Optimal,
            };
        }

        let root = problem.root_state();
        let root_bound = problem.completion_bound(&root, 0);
        let mut heap: BinaryHeap<Node<P::State>> = BinaryHeap::new();
        heap.push(Node { bound: root_bound, stage: 0, state: root, choices: Vec::new() });

        let mut nodes_expanded = 0usize;
        // The min frontier bound when the budget runs out is still a valid
        // global lower bound (best-first popping order guarantees it).
        let mut frontier_bound = root_bound;

        while let Some(node) = heap.pop() {
            frontier_bound = node.bound;
            if node.bound >= best_cost {
                // Everything remaining is worse than the incumbent: optimal.
                return BnbResult {
                    best_choices,
                    best_cost,
                    lower_bound: best_cost.min(frontier_bound),
                    nodes_expanded,
                    outcome: BnbOutcome::Optimal,
                };
            }
            if nodes_expanded >= self.node_budget {
                let outcome = if best_choices.is_some() {
                    BnbOutcome::BudgetExhausted
                } else {
                    BnbOutcome::Infeasible
                };
                return BnbResult {
                    best_choices,
                    best_cost,
                    lower_bound: frontier_bound,
                    nodes_expanded,
                    outcome,
                };
            }
            nodes_expanded += 1;

            for choice in 0..problem.num_choices(node.stage) {
                let Some((state, cost)) = problem.apply(&node.state, node.stage, choice) else {
                    continue;
                };
                let next_stage = node.stage + 1;
                let mut choices = node.choices.clone();
                choices.push(choice);
                if next_stage == stages {
                    if cost < best_cost {
                        best_cost = cost;
                        best_choices = Some(choices);
                    }
                } else {
                    let bound = cost + problem.completion_bound(&state, next_stage);
                    if bound < best_cost {
                        heap.push(Node { bound, stage: next_stage, state, choices });
                    }
                }
            }
        }

        let outcome =
            if best_choices.is_some() { BnbOutcome::Optimal } else { BnbOutcome::Infeasible };
        BnbResult {
            lower_bound: if best_cost.is_finite() { best_cost } else { frontier_bound },
            best_choices,
            best_cost,
            nodes_expanded,
            outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::rng::Pcg32;

    /// Toy assignment problem: stage i picks column c, cost Σ w[i][c].
    struct TableProblem {
        costs: Vec<Vec<f64>>,
    }

    impl SequentialProblem for TableProblem {
        type State = f64;
        fn num_stages(&self) -> usize {
            self.costs.len()
        }
        fn num_choices(&self, stage: usize) -> usize {
            self.costs[stage].len()
        }
        fn root_state(&self) -> f64 {
            0.0
        }
        fn apply(&self, state: &f64, stage: usize, choice: usize) -> Option<(f64, f64)> {
            let c = state + self.costs[stage][choice];
            Some((c, c))
        }
        fn completion_bound(&self, _: &f64, stage: usize) -> f64 {
            self.costs[stage..]
                .iter()
                .map(|row| row.iter().cloned().fold(f64::INFINITY, f64::min))
                .sum()
        }
    }

    /// Quadratic-load problem mimicking P2-A's structure: each of I players
    /// picks one of R resources; cost = Σ_r load_r² with unit weights.
    struct QuadLoad {
        players: usize,
        resources: usize,
        weights: Vec<Vec<f64>>, // weights[i][r]
    }

    impl SequentialProblem for QuadLoad {
        type State = (Vec<f64>, f64); // (loads, cost)
        fn num_stages(&self) -> usize {
            self.players
        }
        fn num_choices(&self, _stage: usize) -> usize {
            self.resources
        }
        fn root_state(&self) -> Self::State {
            (vec![0.0; self.resources], 0.0)
        }
        fn apply(
            &self,
            state: &Self::State,
            stage: usize,
            choice: usize,
        ) -> Option<(Self::State, f64)> {
            let (loads, cost) = state;
            let w = self.weights[stage][choice];
            let old = loads[choice];
            let delta = (old + w) * (old + w) - old * old;
            let mut nl = loads.clone();
            nl[choice] = old + w;
            let nc = cost + delta;
            Some(((nl, nc), nc))
        }
        fn completion_bound(&self, state: &Self::State, stage: usize) -> f64 {
            // Each remaining player adds at least its cheapest marginal
            // against the *current* loads (loads only grow ⇒ admissible).
            let (loads, _) = state;
            self.weights[stage..]
                .iter()
                .map(|w| {
                    (0..self.resources)
                        .map(|r| 2.0 * loads[r] * w[r] + w[r] * w[r])
                        .fold(f64::INFINITY, f64::min)
                })
                .sum()
        }
    }

    fn brute_force(p: &QuadLoad) -> f64 {
        fn rec(p: &QuadLoad, stage: usize, loads: &mut Vec<f64>) -> f64 {
            if stage == p.players {
                return loads.iter().map(|l| l * l).sum();
            }
            let mut best = f64::INFINITY;
            for r in 0..p.resources {
                loads[r] += p.weights[stage][r];
                best = best.min(rec(p, stage + 1, loads));
                loads[r] -= p.weights[stage][r];
            }
            best
        }
        rec(p, 0, &mut vec![0.0; p.resources])
    }

    #[test]
    fn table_problem_optimal() {
        let p = TableProblem { costs: vec![vec![2.0, 9.0], vec![4.0, 1.0], vec![8.0, 3.0]] };
        let r = BranchAndBound::new().solve(&p);
        assert_eq!(r.outcome, BnbOutcome::Optimal);
        assert_eq!(r.best_cost, 6.0);
        assert_eq!(r.best_choices, Some(vec![0, 1, 1]));
        assert_eq!(r.certified_ratio(), 1.0);
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let p = TableProblem { costs: vec![] };
        let r = BranchAndBound::new().solve(&p);
        assert_eq!(r.outcome, BnbOutcome::Optimal);
        assert_eq!(r.best_cost, 0.0);
    }

    #[test]
    fn quad_load_matches_brute_force() {
        let mut rng = Pcg32::seed(99);
        for _ in 0..20 {
            let p = QuadLoad {
                players: 6,
                resources: 3,
                weights: (0..6)
                    .map(|_| (0..3).map(|_| rng.uniform_in(0.5, 2.0)).collect())
                    .collect(),
            };
            let exact = brute_force(&p);
            let r = BranchAndBound::new().solve(&p);
            assert_eq!(r.outcome, BnbOutcome::Optimal);
            assert!((r.best_cost - exact).abs() < 1e-9, "bnb {} vs brute {}", r.best_cost, exact);
        }
    }

    #[test]
    fn budget_exhaustion_reports_bound() {
        let mut rng = Pcg32::seed(5);
        let p = QuadLoad {
            players: 12,
            resources: 4,
            weights: (0..12).map(|_| (0..4).map(|_| rng.uniform_in(0.5, 2.0)).collect()).collect(),
        };
        let r = BranchAndBound::new().with_node_budget(10).solve(&p);
        // Either finished tiny tree (unlikely) or exhausted with a bound.
        if r.outcome == BnbOutcome::BudgetExhausted {
            assert!(r.lower_bound <= r.best_cost);
            assert!(r.best_choices.is_some());
            assert!(r.certified_ratio() >= 1.0);
        }
    }

    #[test]
    fn warm_start_incumbent_prunes_to_same_optimum() {
        let mut rng = Pcg32::seed(7);
        let p = QuadLoad {
            players: 6,
            resources: 3,
            weights: (0..6).map(|_| (0..3).map(|_| rng.uniform_in(0.5, 2.0)).collect()).collect(),
        };
        let cold = BranchAndBound::new().solve(&p);
        // Any feasible assignment works as incumbent; use all-zeros.
        let warm = BranchAndBound::new().solve_with_incumbent(&p, Some(&[0, 0, 0, 0, 0, 0]));
        assert_eq!(warm.outcome, BnbOutcome::Optimal);
        assert!((warm.best_cost - cold.best_cost).abs() < 1e-9);
        assert!(warm.nodes_expanded <= cold.nodes_expanded + 1);
    }

    /// Problem where some branches are infeasible.
    struct Gated;
    impl SequentialProblem for Gated {
        type State = u32;
        fn num_stages(&self) -> usize {
            2
        }
        fn num_choices(&self, _stage: usize) -> usize {
            2
        }
        fn root_state(&self) -> u32 {
            0
        }
        fn apply(&self, state: &u32, _stage: usize, choice: usize) -> Option<(u32, f64)> {
            // Choice 1 is always infeasible.
            if choice == 1 {
                None
            } else {
                Some((*state, 1.0 + *state as f64))
            }
        }
        fn completion_bound(&self, _: &u32, _: usize) -> f64 {
            0.0
        }
    }

    #[test]
    fn infeasible_choices_skipped() {
        let r = BranchAndBound::new().solve(&Gated);
        assert_eq!(r.outcome, BnbOutcome::Optimal);
        assert_eq!(r.best_choices, Some(vec![0, 0]));
    }

    /// Fully infeasible problem.
    struct NoWay;
    impl SequentialProblem for NoWay {
        type State = ();
        fn num_stages(&self) -> usize {
            1
        }
        fn num_choices(&self, _stage: usize) -> usize {
            3
        }
        fn root_state(&self) {}
        fn apply(&self, _: &(), _: usize, _: usize) -> Option<((), f64)> {
            None
        }
        fn completion_bound(&self, _: &(), _: usize) -> f64 {
            0.0
        }
    }

    #[test]
    fn infeasible_problem_detected() {
        let r = BranchAndBound::new().solve(&NoWay);
        assert_eq!(r.outcome, BnbOutcome::Infeasible);
        assert!(r.best_choices.is_none());
        assert!(r.best_cost.is_infinite());
    }

    #[test]
    #[should_panic(expected = "incumbent length")]
    fn bad_incumbent_length_panics() {
        let p = TableProblem { costs: vec![vec![1.0]] };
        BranchAndBound::new().solve_with_incumbent(&p, Some(&[0, 0]));
    }
}
