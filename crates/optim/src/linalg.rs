//! A small dense-matrix type with LU-based solving.
//!
//! Deliberately minimal: the workspace only needs to solve the (d+1)×(d+1)
//! normal equations of low-degree polynomial fits and a handful of similarly
//! tiny systems, so a partially pivoted LU over a row-major `Vec<f64>` is the
//! whole story. (This is the `ndarray` substitution noted in DESIGN.md.)

use std::fmt;

/// Errors produced by [`Matrix`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible with the requested operation.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
    },
    /// The system matrix is singular to working precision.
    Singular,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            Self::Singular => write!(f, "matrix is singular to working precision"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use eotora_optim::linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
/// let x = a.solve(&[2.0, 8.0]).unwrap();
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `rows` is empty or the rows
    /// have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::ShapeMismatch { context: "empty matrix" });
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::ShapeMismatch { context: "ragged rows" });
        }
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Ok(Self { rows: rows.len(), cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch { context: "mul_vec dimension" });
        }
        Ok((0..self.rows).map(|i| (0..self.cols).map(|j| self[(i, j)] * x[j]).sum()).collect())
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the inner dimensions differ.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch { context: "mul inner dimension" });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Solves `A·x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] for non-square `A` or wrong `b`
    /// length, and [`LinalgError::Singular`] when a pivot underflows.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::ShapeMismatch { context: "solve requires square matrix" });
        }
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch { context: "solve rhs length" });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let at = |a: &[f64], i: usize, j: usize| a[i * n + j];

        for col in 0..n {
            // Partial pivot: largest magnitude in this column at/below diag.
            let mut pivot_row = col;
            let mut pivot_val = at(&a, col, col).abs();
            for r in (col + 1)..n {
                let v = at(&a, r, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let pivot = at(&a, col, col);
            for r in (col + 1)..n {
                let factor = at(&a, r, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * at(&a, col, j);
                }
                x[r] -= factor * x[col];
            }
        }
        for col in (0..n).rev() {
            let mut acc = x[col];
            for (j, xj) in x.iter().enumerate().take(n).skip(col + 1) {
                acc -= at(&a, col, j) * xj;
            }
            x[col] = acc / at(&a, col, col);
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::assert_close;
    use eotora_util::rng::Pcg32;

    #[test]
    fn identity_solves_trivially() {
        let i3 = Matrix::identity(3);
        let x = i3.solve(&[1.0, -2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[5.0, 7.0]).unwrap();
        assert_close!(x[0], 7.0, 1e-12);
        assert_close!(x[1], 5.0, 1e-12);
    }

    #[test]
    fn solve_random_systems_roundtrip() {
        let mut rng = Pcg32::seed(21);
        for n in [1usize, 2, 3, 5, 8] {
            // Diagonally dominant => nonsingular.
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.uniform_in(-1.0, 1.0);
                }
                a[(i, i)] += n as f64 + 1.0;
            }
            let x_true: Vec<f64> = (0..n).map(|_| rng.uniform_in(-5.0, 5.0)).collect();
            let b = a.mul_vec(&x_true).unwrap();
            let x = a.solve(&b).unwrap();
            for (xs, xt) in x.iter().zip(&x_true) {
                assert_close!(*xs, *xt, 1e-9);
            }
        }
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        assert!(matches!(a.solve(&[1.0]), Err(LinalgError::ShapeMismatch { .. })));
        assert!(matches!(a.mul_vec(&[1.0]), Err(LinalgError::ShapeMismatch { .. })));
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn transpose_and_mul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at.cols(), 2);
        let ata = at.mul(&a).unwrap();
        assert_eq!(ata.rows(), 3);
        assert_close!(ata[(0, 0)], 17.0, 1e-12);
        assert_close!(ata[(2, 1)], 36.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::identity(2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn display_of_errors() {
        assert!(LinalgError::Singular.to_string().contains("singular"));
        let e = LinalgError::ShapeMismatch { context: "x" };
        assert!(e.to_string().contains("shape mismatch"));
    }
}
