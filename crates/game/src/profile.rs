//! Strategy profiles with incrementally maintained resource loads.

use serde::{Deserialize, Serialize};

use eotora_util::rng::Pcg32;

use crate::{GameRef, StrategyFilter};

/// A strategy profile with incrementally maintained resource loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    pub(crate) choices: Vec<usize>,
    pub(crate) loads: Vec<f64>,
}

impl Profile {
    /// Builds a profile from per-player strategy indices.
    ///
    /// # Panics
    ///
    /// Panics if `choices.len()` differs from the player count or any index
    /// is out of range for its player.
    pub fn from_choices<G: GameRef>(game: &G, choices: Vec<usize>) -> Self {
        let structure = game.structure();
        assert_eq!(choices.len(), structure.num_players(), "one choice per player");
        let mut loads = vec![0.0; structure.num_resources()];
        for (i, &s) in choices.iter().enumerate() {
            for &(r, w) in &structure.strategies(i)[s] {
                loads[r] += w;
            }
        }
        Self { choices, loads }
    }

    /// Rebuilds a profile from per-player choices retained from an earlier
    /// (possibly stale) solve, repairing them against the current game:
    /// out-of-range strategy indices are clamped to the player's last
    /// strategy, and loads are recomputed from the current weights.
    ///
    /// Returns `None` when the player count no longer matches — the retained
    /// choices belong to a different game and cannot be repaired, so callers
    /// should fall back to a cold start.
    pub fn from_retained_choices<G: GameRef>(game: &G, choices: &[usize]) -> Option<Self> {
        let structure = game.structure();
        if choices.len() != structure.num_players() {
            return None;
        }
        let repaired = choices
            .iter()
            .enumerate()
            .map(|(i, &s)| s.min(structure.strategies(i).len() - 1))
            .collect();
        Some(Self::from_choices(game, repaired))
    }

    /// A uniformly random profile.
    pub fn random<G: GameRef>(game: &G, rng: &mut Pcg32) -> Self {
        let structure = game.structure();
        let choices = (0..structure.num_players())
            .map(|i| rng.below(structure.strategies(i).len()))
            .collect();
        Self::from_choices(game, choices)
    }

    /// Strategy index chosen by each player.
    pub fn choices(&self) -> &[usize] {
        &self.choices
    }

    /// Current load `p_r(z)` on each resource.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Switches player `i` to strategy `s`, updating loads incrementally.
    pub fn switch<G: GameRef>(&mut self, game: &G, i: usize, s: usize) {
        let structure = game.structure();
        for &(r, w) in &structure.strategies(i)[self.choices[i]] {
            self.loads[r] -= w;
        }
        for &(r, w) in &structure.strategies(i)[s] {
            self.loads[r] += w;
        }
        self.choices[i] = s;
    }

    /// Player `i`'s cost `T_i(z) = Σ_r m_r · p_{i,r} · p_r(z)`.
    pub fn player_cost<G: GameRef>(&self, game: &G, i: usize) -> f64 {
        game.structure().strategies(i)[self.choices[i]]
            .iter()
            .map(|&(r, w)| game.weights().get(r) * w * self.loads[r])
            .sum()
    }

    /// Social cost `Σ_i T_i(z) = Σ_r m_r · p_r(z)²`.
    pub fn total_cost<G: GameRef>(&self, game: &G) -> f64 {
        self.loads.iter().zip(game.weights().as_slice()).map(|(&p, &m)| m * p * p).sum()
    }

    /// The exact potential
    /// `Φ(z) = ½ Σ_r m_r (p_r(z)² + Σ_{i∈I_r(z)} p_{i,r}²)`.
    ///
    /// Any unilateral deviation changes Φ by exactly the deviating player's
    /// cost change, so best-response dynamics strictly decrease Φ.
    pub fn potential<G: GameRef>(&self, game: &G) -> f64 {
        let structure = game.structure();
        let mut sum_sq = vec![0.0; structure.num_resources()];
        for (i, &s) in self.choices.iter().enumerate() {
            for &(r, w) in &structure.strategies(i)[s] {
                sum_sq[r] += w * w;
            }
        }
        self.loads
            .iter()
            .zip(game.weights().as_slice())
            .zip(&sum_sq)
            .map(|((&p, &m), &ss)| 0.5 * m * (p * p + ss))
            .sum()
    }

    /// The cost player `i` would pay for strategy `s` against the rest of
    /// the profile — the single-entry building block of
    /// [`Profile::best_response`]. The incremental CGBA scheduler calls this
    /// exact expression when refreshing dirty cache entries, so cached and
    /// freshly scanned values are bit-identical.
    pub(crate) fn strategy_cost<G: GameRef>(&self, game: &G, i: usize, s: usize) -> f64 {
        let structure = game.structure();
        let weights = game.weights();
        let current = &structure.strategies(i)[self.choices[i]];
        let mut cost = 0.0;
        for &(r, w) in &structure.strategies(i)[s] {
            // Load excluding i's current contribution on r (if any).
            let own: f64 =
                current.iter().find(|&&(cr, _)| cr == r).map(|&(_, cw)| cw).unwrap_or(0.0);
            cost += weights.get(r) * w * (self.loads[r] - own + w);
        }
        cost
    }

    /// The best response of player `i` against the rest of the profile:
    /// `(strategy index, resulting cost for i)`.
    pub fn best_response<G: GameRef>(&self, game: &G, i: usize) -> (usize, f64) {
        let mut best = (self.choices[i], f64::INFINITY);
        for s in 0..game.structure().strategies(i).len() {
            let cost = self.strategy_cost(game, i, s);
            if cost < best.1 {
                best = (s, cost);
            }
        }
        best
    }

    /// [`Profile::best_response`] restricted to strategies `filter` allows.
    ///
    /// Scans strategies in the same order with the same float expression and
    /// the same strict-improvement update rule, so with an all-allowing
    /// filter the result is bit-identical to the unfiltered scan. Returns
    /// `None` when the filter allows no strategy for `i`.
    pub fn best_response_filtered<G: GameRef>(
        &self,
        game: &G,
        i: usize,
        filter: &StrategyFilter,
    ) -> Option<(usize, f64)> {
        let mut best = (usize::MAX, f64::INFINITY);
        for s in 0..game.structure().strategies(i).len() {
            if !filter.is_allowed(i, s) {
                continue;
            }
            let cost = self.strategy_cost(game, i, s);
            if cost < best.1 {
                best = (s, cost);
            }
        }
        if best.0 == usize::MAX {
            None
        } else {
            Some(best)
        }
    }

    /// The strategy player `i` would pick if it were alone in the game —
    /// `argmin_s Σ_r m_r · p_{i,r}²` over allowed strategies. This is the
    /// displacement fallback of the fault-masking repair path: it depends
    /// only on the player's own weights, never on other players' choices,
    /// so it is deterministic and always feasible when any allowed strategy
    /// exists.
    pub fn solo_cheapest_filtered<G: GameRef>(
        game: &G,
        i: usize,
        filter: &StrategyFilter,
    ) -> Option<usize> {
        let structure = game.structure();
        let weights = game.weights();
        let mut best = (usize::MAX, f64::INFINITY);
        for (s, strategy) in structure.strategies(i).iter().enumerate() {
            if !filter.is_allowed(i, s) {
                continue;
            }
            let cost: f64 = strategy.iter().map(|&(r, w)| weights.get(r) * w * w).sum();
            if cost < best.1 {
                best = (s, cost);
            }
        }
        if best.0 == usize::MAX {
            None
        } else {
            Some(best.0)
        }
    }

    /// [`Profile::from_retained_choices`] against a filtered game: stale
    /// indices are clamped exactly as in the unfiltered repair, and any
    /// choice landing on a disallowed strategy is *displaced* to that
    /// player's cheapest allowed strategy ([`Profile::solo_cheapest_filtered`]).
    ///
    /// Returns the repaired profile plus the number of displaced players.
    /// Returns `None` when the player count no longer matches or some
    /// displaced player has no allowed strategy at all (callers should widen
    /// the filter for that player first). With an all-allowing filter the
    /// result is identical to [`Profile::from_retained_choices`] with zero
    /// displacements.
    pub fn from_retained_choices_filtered<G: GameRef>(
        game: &G,
        choices: &[usize],
        filter: &StrategyFilter,
    ) -> Option<(Self, usize)> {
        let structure = game.structure();
        if choices.len() != structure.num_players() {
            return None;
        }
        let mut displaced = 0;
        let mut repaired = Vec::with_capacity(choices.len());
        for (i, &s) in choices.iter().enumerate() {
            let clamped = s.min(structure.strategies(i).len() - 1);
            if filter.is_allowed(i, clamped) {
                repaired.push(clamped);
            } else {
                displaced += 1;
                repaired.push(Self::solo_cheapest_filtered(game, i, filter)?);
            }
        }
        Some((Self::from_choices(game, repaired), displaced))
    }

    /// Whether no player can reduce its cost by a factor of more than
    /// `1/(1−λ)` — i.e. the CGBA stopping condition
    /// `(1−λ)·T_i(z) ≤ min_{ẑ_i} T_i(ẑ_i, z_{−i})` for all `i`.
    /// With `λ = 0` this is an exact Nash equilibrium (up to `tol`).
    pub fn is_lambda_equilibrium<G: GameRef>(&self, game: &G, lambda: f64, tol: f64) -> bool {
        (0..game.structure().num_players()).all(|i| {
            let cost = self.player_cost(game, i);
            let (_, best) = self.best_response(game, i);
            (1.0 - lambda) * cost <= best + tol
        })
    }
}
