//! Weighted congestion games and the paper's CGBA algorithm (§V-B).
//!
//! Subproblem P2-A — choosing each device's (base station, server) pair to
//! minimize total latency — is interpreted by the paper as a *weighted
//! congestion game* `WCG = (D, {Z_i}, {T_i})`:
//!
//! * **Resources** `r ∈ R` are the compute capacity of each server and the
//!   access/fronthaul bandwidth of each base station, each with a weight
//!   `m_r` (`1/ω_n`, `1/W_k^A`, `1/W_k^F`).
//! * **Players** are the devices; a strategy `z_i` picks a feasible resource
//!   bundle (the server + the two link resources of the chosen station),
//!   contributing a player-resource weight `p_{i,r}` to each.
//! * **Cost** of player `i` is `T_i(z) = Σ_{r∈R_i(z_i)} m_r · p_{i,r} ·
//!   p_r(z)`, where `p_r(z) = Σ_{j uses r} p_{j,r}` is the load.
//!
//! The identity `Σ_i T_i(z) = Σ_r m_r · p_r(z)²` makes the game's social
//! cost exactly the latency `T_t` of eq. (18)–(19) (see `eotora-core::p2a`
//! for the mapping; DESIGN.md documents the `p_{i,C_n}` typo fix).
//!
//! This game admits the **exact potential**
//! `Φ(z) = ½ Σ_r m_r (p_r(z)² + Σ_{i∈I_r(z)} p_{i,r}²)`
//! — every unilateral improvement decreases Φ by the same amount, which is
//! why best-response dynamics terminate. [`cgba`] implements Algorithm 3:
//! repeatedly move the player with the *largest* improvement gap until no
//! player can improve its cost by more than a factor `λ`, giving the
//! `2.62/(1−8λ)` approximation of Theorem 2 in
//! `O((1/λ)·log(Φ₀/Φ_min))` iterations.
//!
//! # Structure/weights split
//!
//! The game is stored as an immutable-shape [`GameStructure`] (players,
//! strategies, and the resource→(player, strategy) `touching` index) plus a
//! mutable [`ResourceWeights`] view. The BDMA alternation only changes the
//! per-server `m_r` between rounds, and across slots only the per-player
//! weights change — neither perturbs the shape, so solvers can reuse the
//! structure (and the incremental-scheduling caches keyed on it) without a
//! rebuild. [`GameRef`] abstracts over "owns both halves"
//! ([`CongestionGame`]) and "borrows them separately" ([`SplitGame`]); every
//! [`Profile`] method and the CGBA entry points are generic over it.
//!
//! # Examples
//!
//! ```
//! use eotora_game::{CongestionGame, CgbaConfig, cgba};
//! use eotora_util::rng::Pcg32;
//!
//! // Two players, two identical resources; each strategy uses one resource.
//! let mut g = CongestionGame::new(vec![1.0, 1.0]);
//! g.add_player(vec![vec![(0, 1.0)], vec![(1, 1.0)]]);
//! g.add_player(vec![vec![(0, 1.0)], vec![(1, 1.0)]]);
//! let report = cgba(&g, &CgbaConfig::default(), &mut Pcg32::seed(1));
//! // The equilibrium spreads the players: total cost 1² + 1² = 2.
//! assert_eq!(report.total_cost, 2.0);
//! ```

use serde::{Deserialize, Serialize};

mod cgba;
mod mask;
mod profile;
mod shard;

pub use cgba::{
    brute_force_optimum, cgba, cgba_from, cgba_from_filtered, cgba_from_reference,
    cgba_from_with_scratch, cgba_reference, cgba_warm_from_with_scratch,
    empirical_price_of_anarchy, CgbaConfig, CgbaReport, CgbaScratch, SchedulingRule,
};
pub use mask::StrategyFilter;
pub use profile::Profile;
pub use shard::{BitSet, ShardPlan, ShardSpec, MAX_CUT_FRACTION};

/// A strategy: the resource bundle it uses, as `(resource index, p_{i,r})`
/// pairs. Indices must be unique within a strategy.
pub type Strategy = Vec<(usize, f64)>;

/// Errors detected by [`CongestionGame::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum GameError {
    /// A strategy references a resource index `>= num_resources`.
    DanglingResource {
        /// Offending player.
        player: usize,
        /// Offending resource index.
        resource: usize,
    },
    /// A player has no strategies.
    NoStrategies {
        /// Offending player.
        player: usize,
    },
    /// A weight (`m_r` or `p_{i,r}`) is non-positive or non-finite.
    BadWeight {
        /// Human-readable description.
        context: String,
    },
    /// A strategy uses the same resource twice.
    DuplicateResource {
        /// Offending player.
        player: usize,
    },
}

impl std::fmt::Display for GameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DanglingResource { player, resource } => {
                write!(f, "player {player} references missing resource {resource}")
            }
            Self::NoStrategies { player } => write!(f, "player {player} has no strategies"),
            Self::BadWeight { context } => write!(f, "bad weight: {context}"),
            Self::DuplicateResource { player } => {
                write!(f, "player {player} has a strategy with duplicate resources")
            }
        }
    }
}

impl std::error::Error for GameError {}

/// The shape of a congestion game: every player's strategy set (with the
/// per-player weights `p_{i,r}`) plus the inverted resource→(player,
/// strategy) index the incremental CGBA scheduler dirties from.
///
/// The *shape* (which resources each strategy touches) is immutable after
/// construction; the per-player weights may be refreshed in place via
/// [`GameStructure::set_strategy_weights`] — across slots the P2-A mapping
/// changes only those, never the shape, so the `touching` index stays valid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameStructure {
    num_resources: usize,
    players: Vec<Vec<Strategy>>,
    /// `touching[r]` = every `(player, strategy)` whose strategy uses `r`.
    /// `u32` halves the footprint; player/strategy counts stay far below
    /// `u32::MAX`.
    touching: Vec<Vec<(u32, u32)>>,
}

impl GameStructure {
    /// Builds and validates a structure over `num_resources` resources.
    ///
    /// # Errors
    ///
    /// Returns the first structural [`GameError`] found (dangling or
    /// duplicate resources, empty strategy sets, bad player weights).
    pub fn new(num_resources: usize, players: Vec<Vec<Strategy>>) -> Result<Self, GameError> {
        let mut structure = Self::empty(num_resources);
        for strategies in players {
            structure.push_player_unchecked(strategies);
        }
        structure.validate()?;
        Ok(structure)
    }

    fn empty(num_resources: usize) -> Self {
        Self { num_resources, players: Vec::new(), touching: vec![Vec::new(); num_resources] }
    }

    /// Appends a player without validating (the lazy [`CongestionGame`]
    /// construction path). Dangling resource indices are tolerated here and
    /// reported by [`GameStructure::validate`].
    fn push_player_unchecked(&mut self, strategies: Vec<Strategy>) -> usize {
        let player = self.players.len();
        for (s, strategy) in strategies.iter().enumerate() {
            for &(r, _) in strategy {
                if let Some(index) = self.touching.get_mut(r) {
                    index.push((player as u32, s as u32));
                }
            }
        }
        self.players.push(strategies);
        player
    }

    /// Number of players `I`.
    pub fn num_players(&self) -> usize {
        self.players.len()
    }

    /// Number of resources `|R|`.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Player `i`'s strategies.
    pub fn strategies(&self, i: usize) -> &[Strategy] {
        &self.players[i]
    }

    /// Every `(player, strategy)` pair whose strategy uses resource `r`.
    pub fn touching(&self, r: usize) -> &[(u32, u32)] {
        &self.touching[r]
    }

    /// Overwrites the per-resource player weights of strategy `s` of player
    /// `i` in place, preserving the resource shape (`weights[j]` replaces
    /// the weight of the `j`-th resource of the strategy).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the strategy's resource count.
    pub fn set_strategy_weights(&mut self, i: usize, s: usize, weights: &[f64]) {
        let strategy = &mut self.players[i][s];
        assert_eq!(weights.len(), strategy.len(), "one weight per strategy resource");
        for (slot, &w) in strategy.iter_mut().zip(weights) {
            debug_assert!(w > 0.0 && w.is_finite(), "player weight must be positive and finite");
            slot.1 = w;
        }
    }

    /// Checks the structural invariants (player side of
    /// [`CongestionGame::validate`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`GameError`] found.
    pub fn validate(&self) -> Result<(), GameError> {
        for (i, strategies) in self.players.iter().enumerate() {
            if strategies.is_empty() {
                return Err(GameError::NoStrategies { player: i });
            }
            for s in strategies {
                let mut seen = vec![false; self.num_resources];
                for &(r, w) in s {
                    if r >= self.num_resources {
                        return Err(GameError::DanglingResource { player: i, resource: r });
                    }
                    if seen[r] {
                        return Err(GameError::DuplicateResource { player: i });
                    }
                    seen[r] = true;
                    if w <= 0.0 || w.is_nan() || !w.is_finite() {
                        return Err(GameError::BadWeight {
                            context: format!("player {i} resource {r} weight {w}"),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// The mutable half of the split game: the resource weights `m_r`. BDMA
/// rounds refresh only the `N` server entries via [`ResourceWeights::set`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceWeights {
    weights: Vec<f64>,
}

impl ResourceWeights {
    /// Builds and validates a weight vector.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::BadWeight`] on a non-positive or non-finite
    /// entry.
    pub fn new(weights: Vec<f64>) -> Result<Self, GameError> {
        let unchecked = Self::from_raw(weights);
        unchecked.validate()?;
        Ok(unchecked)
    }

    /// Wraps a weight vector without validating (the lazy
    /// [`CongestionGame::new`] path; [`ResourceWeights::validate`] reports
    /// bad entries later).
    pub fn from_raw(weights: Vec<f64>) -> Self {
        Self { weights }
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are no resources.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The weight `m_r` of resource `r`.
    #[inline]
    pub fn get(&self, r: usize) -> f64 {
        self.weights[r]
    }

    /// All weights, in resource order.
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }

    /// Overwrites the weight of resource `r` in place.
    #[inline]
    pub fn set(&mut self, r: usize, m: f64) {
        debug_assert!(m > 0.0 && m.is_finite(), "resource weight must be positive and finite");
        self.weights[r] = m;
    }

    /// Checks every weight is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::BadWeight`] for the first offending entry.
    pub fn validate(&self) -> Result<(), GameError> {
        for (r, &m) in self.weights.iter().enumerate() {
            if m <= 0.0 || m.is_nan() || !m.is_finite() {
                return Err(GameError::BadWeight { context: format!("resource {r} weight {m}") });
            }
        }
        Ok(())
    }
}

/// Read access to the two halves of a congestion game. [`Profile`] and the
/// CGBA solvers are generic over this, so they work both on an owned
/// [`CongestionGame`] and on separately borrowed halves ([`SplitGame`]).
pub trait GameRef {
    /// The immutable-shape half: players, strategies, `touching` index.
    fn structure(&self) -> &GameStructure;
    /// The mutable half: the resource weights `m_r`.
    fn weights(&self) -> &ResourceWeights;
}

impl<G: GameRef + ?Sized> GameRef for &G {
    fn structure(&self) -> &GameStructure {
        (**self).structure()
    }
    fn weights(&self) -> &ResourceWeights {
        (**self).weights()
    }
}

/// A congestion game borrowed as its two halves — lets a caller hold the
/// weights mutably elsewhere between solves while sharing one structure.
///
/// # Examples
///
/// ```
/// use eotora_game::{cgba_from, CgbaConfig, GameStructure, Profile, ResourceWeights, SplitGame};
///
/// let structure = GameStructure::new(
///     2,
///     vec![vec![vec![(0, 1.0)], vec![(1, 1.0)]], vec![vec![(0, 1.0)], vec![(1, 1.0)]]],
/// )
/// .unwrap();
/// let mut weights = ResourceWeights::new(vec![1.0, 1.0]).unwrap();
/// weights.set(1, 0.5); // in-place weight update, no game rebuild
/// let game = SplitGame { structure: &structure, weights: &weights };
/// let initial = Profile::from_choices(&game, vec![0, 0]);
/// let report = cgba_from(&game, initial, &CgbaConfig::default());
/// assert!(report.converged);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SplitGame<'a> {
    /// The immutable-shape half.
    pub structure: &'a GameStructure,
    /// The resource weights.
    pub weights: &'a ResourceWeights,
}

impl GameRef for SplitGame<'_> {
    fn structure(&self) -> &GameStructure {
        self.structure
    }
    fn weights(&self) -> &ResourceWeights {
        self.weights
    }
}

/// Validates the two halves of a game together, in the order the original
/// monolithic check used: resource weights first, then the player side.
///
/// # Errors
///
/// Returns the first [`GameError`] found.
pub fn validate_parts(
    structure: &GameStructure,
    weights: &ResourceWeights,
) -> Result<(), GameError> {
    weights.validate()?;
    structure.validate()
}

/// A weighted congestion game with linear (load-proportional) resource
/// costs: a [`GameStructure`] plus its [`ResourceWeights`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionGame {
    structure: GameStructure,
    weights: ResourceWeights,
}

impl CongestionGame {
    /// Creates a game over resources with weights `m_r`.
    ///
    /// # Panics
    ///
    /// Panics if `resource_weights` is empty.
    pub fn new(resource_weights: Vec<f64>) -> Self {
        assert!(!resource_weights.is_empty(), "need at least one resource");
        Self {
            structure: GameStructure::empty(resource_weights.len()),
            weights: ResourceWeights::from_raw(resource_weights),
        }
    }

    /// Assembles a game from pre-validated halves.
    ///
    /// # Panics
    ///
    /// Panics if the halves disagree on the resource count.
    pub fn from_parts(structure: GameStructure, weights: ResourceWeights) -> Self {
        assert_eq!(structure.num_resources(), weights.len(), "structure/weights resource count");
        Self { structure, weights }
    }

    /// Adds a player with the given strategy set; returns its index.
    pub fn add_player(&mut self, strategies: Vec<Strategy>) -> usize {
        self.structure.push_player_unchecked(strategies)
    }

    /// Number of players `I`.
    pub fn num_players(&self) -> usize {
        self.structure.num_players()
    }

    /// Number of resources `|R|`.
    pub fn num_resources(&self) -> usize {
        self.weights.len()
    }

    /// The weight `m_r` of resource `r`.
    pub fn resource_weight(&self, r: usize) -> f64 {
        self.weights.get(r)
    }

    /// Overwrites the weight `m_r` of resource `r` in place (the BDMA
    /// round-to-round server-weight refresh).
    pub fn set_resource_weight(&mut self, r: usize, m: f64) {
        self.weights.set(r, m);
    }

    /// Overwrites the per-resource player weights of strategy `s` of player
    /// `i` in place (see [`GameStructure::set_strategy_weights`]).
    pub fn set_strategy_weights(&mut self, i: usize, s: usize, weights: &[f64]) {
        self.structure.set_strategy_weights(i, s, weights);
    }

    /// Player `i`'s strategies.
    pub fn strategies(&self, i: usize) -> &[Strategy] {
        self.structure.strategies(i)
    }

    /// The immutable-shape half of the game.
    pub fn structure(&self) -> &GameStructure {
        &self.structure
    }

    /// The resource-weight half of the game.
    pub fn weights(&self) -> &ResourceWeights {
        &self.weights
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`GameError`] found.
    pub fn validate(&self) -> Result<(), GameError> {
        validate_parts(&self.structure, &self.weights)
    }
}

impl GameRef for CongestionGame {
    fn structure(&self) -> &GameStructure {
        &self.structure
    }
    fn weights(&self) -> &ResourceWeights {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::assert_close;
    use eotora_util::rng::Pcg32;

    /// I players, R resources, each strategy = exactly one resource, with
    /// player weight `w[i]` on every resource.
    fn singleton_game(weights: &[f64], m: &[f64]) -> CongestionGame {
        let mut g = CongestionGame::new(m.to_vec());
        for &w in weights {
            let strategies = (0..m.len()).map(|r| vec![(r, w)]).collect();
            g.add_player(strategies);
        }
        g
    }

    #[test]
    fn social_cost_identity() {
        // Σ_i T_i == Σ_r m_r p_r² for arbitrary profiles.
        let g = singleton_game(&[1.0, 2.0, 3.0], &[0.5, 2.0]);
        for choices in [[0, 0, 0], [0, 1, 0], [1, 1, 1], [0, 1, 1]] {
            let p = Profile::from_choices(&g, choices.to_vec());
            let by_players: f64 = (0..3).map(|i| p.player_cost(&g, i)).sum();
            assert_close!(by_players, p.total_cost(&g), 1e-12);
        }
    }

    #[test]
    fn potential_change_equals_cost_change() {
        let g = singleton_game(&[1.5, 2.5], &[1.0, 3.0]);
        let mut p = Profile::from_choices(&g, vec![0, 0]);
        let phi0 = p.potential(&g);
        let c0 = p.player_cost(&g, 1);
        p.switch(&g, 1, 1);
        let phi1 = p.potential(&g);
        let c1 = p.player_cost(&g, 1);
        assert_close!(phi1 - phi0, c1 - c0, 1e-12);
    }

    #[test]
    fn best_response_spreads_load() {
        let g = singleton_game(&[1.0, 1.0], &[1.0, 1.0]);
        let p = Profile::from_choices(&g, vec![0, 0]);
        let (s, cost) = p.best_response(&g, 1);
        assert_eq!(s, 1);
        assert_close!(cost, 1.0, 1e-12);
    }

    #[test]
    fn cgba_reaches_nash_on_symmetric_game() {
        let g = singleton_game(&[1.0; 4], &[1.0, 1.0]);
        let mut rng = Pcg32::seed(5);
        let r = cgba(&g, &CgbaConfig::default(), &mut rng);
        assert!(r.converged);
        assert!(r.profile.is_lambda_equilibrium(&g, 0.0, 1e-12));
        // Balanced split: loads (2, 2) → total cost 8. Any imbalance is worse.
        assert_close!(r.total_cost, 8.0, 1e-12);
    }

    #[test]
    fn cgba_never_increases_cost_vs_start() {
        let mut rng = Pcg32::seed(6);
        for seed in 0..20u64 {
            let mut wr = Pcg32::seed(seed);
            let weights: Vec<f64> = (0..8).map(|_| wr.uniform_in(0.5, 3.0)).collect();
            let m: Vec<f64> = (0..4).map(|_| wr.uniform_in(0.2, 2.0)).collect();
            let g = singleton_game(&weights, &m);
            let r = cgba(&g, &CgbaConfig::default(), &mut rng);
            assert!(r.total_cost <= r.initial_cost + 1e-9);
            assert!(r.converged);
        }
    }

    #[test]
    fn potential_decreases_along_cgba_moves() {
        // Replay CGBA manually and check Φ strictly decreases.
        let mut wr = Pcg32::seed(8);
        let weights: Vec<f64> = (0..6).map(|_| wr.uniform_in(0.5, 2.0)).collect();
        let m: Vec<f64> = (0..3).map(|_| wr.uniform_in(0.5, 2.0)).collect();
        let g = singleton_game(&weights, &m);
        let mut p = Profile::from_choices(&g, vec![0; 6]);
        let mut phi = p.potential(&g);
        for _ in 0..1000 {
            let mut moved = false;
            for i in 0..6 {
                let cost = p.player_cost(&g, i);
                let (s, br) = p.best_response(&g, i);
                if br < cost - 1e-12 {
                    p.switch(&g, i, s);
                    let new_phi = p.potential(&g);
                    assert!(new_phi < phi - 1e-12, "potential must strictly decrease");
                    phi = new_phi;
                    moved = true;
                    break;
                }
            }
            if !moved {
                return;
            }
        }
        panic!("best-response dynamics failed to converge");
    }

    #[test]
    fn lambda_relaxes_convergence() {
        let mut wr = Pcg32::seed(10);
        let weights: Vec<f64> = (0..20).map(|_| wr.uniform_in(0.5, 3.0)).collect();
        let m: Vec<f64> = (0..5).map(|_| wr.uniform_in(0.2, 2.0)).collect();
        let g = singleton_game(&weights, &m);
        let mut iters = Vec::new();
        let mut costs = Vec::new();
        for lambda in [0.0, 0.06, 0.12] {
            // Average over several starts to smooth randomness.
            let mut total_iters = 0;
            let mut total_cost = 0.0;
            for seed in 0..10u64 {
                let mut rng = Pcg32::seed(seed);
                let cfg = CgbaConfig { lambda, ..Default::default() };
                let r = cgba(&g, &cfg, &mut rng);
                assert!(r.converged);
                assert!(r.profile.is_lambda_equilibrium(&g, lambda, 1e-9));
                total_iters += r.iterations;
                total_cost += r.total_cost;
            }
            iters.push(total_iters);
            costs.push(total_cost);
        }
        // More slack → no more iterations than exact best response.
        assert!(iters[2] <= iters[0], "iters {iters:?}");
        // Final costs stay in the same ballpark (λ only weakens the
        // guarantee; which equilibrium is hit is start-dependent).
        assert!((costs[2] - costs[0]).abs() <= 0.05 * costs[0], "costs {costs:?}");
    }

    #[test]
    fn round_robin_also_converges_to_nash() {
        let mut wr = Pcg32::seed(11);
        let weights: Vec<f64> = (0..10).map(|_| wr.uniform_in(0.5, 3.0)).collect();
        let m: Vec<f64> = (0..4).map(|_| wr.uniform_in(0.2, 2.0)).collect();
        let g = singleton_game(&weights, &m);
        let mut rng = Pcg32::seed(12);
        let cfg = CgbaConfig { scheduling: SchedulingRule::RoundRobin, ..Default::default() };
        let r = cgba(&g, &cfg, &mut rng);
        assert!(r.converged);
        assert!(r.profile.is_lambda_equilibrium(&g, 0.0, 1e-9));
    }

    #[test]
    fn price_of_anarchy_within_theorem_bound() {
        // Exhaustively compute the optimum on small instances and check
        // T(ẑ) ≤ 2.62 · T(z*) for λ = 0 (Theorem 2).
        for seed in 0..30u64 {
            let mut wr = Pcg32::seed(seed);
            let weights: Vec<f64> = (0..5).map(|_| wr.uniform_in(0.5, 3.0)).collect();
            let m: Vec<f64> = (0..3).map(|_| wr.uniform_in(0.2, 2.0)).collect();
            let g = singleton_game(&weights, &m);
            // Brute force optimum over 3^5 profiles.
            let mut opt = f64::INFINITY;
            for code in 0..3usize.pow(5) {
                let mut c = code;
                let choices: Vec<usize> = (0..5)
                    .map(|_| {
                        let v = c % 3;
                        c /= 3;
                        v
                    })
                    .collect();
                opt = opt.min(Profile::from_choices(&g, choices).total_cost(&g));
            }
            let mut rng = Pcg32::seed(seed + 1000);
            let r = cgba(&g, &CgbaConfig::default(), &mut rng);
            assert!(
                r.total_cost <= 2.62 * opt + 1e-9,
                "seed {seed}: {} > 2.62 × {opt}",
                r.total_cost
            );
        }
    }

    #[test]
    fn multi_resource_strategies() {
        // Strategies that bundle resources (like BS + server in the paper).
        let mut g = CongestionGame::new(vec![1.0, 1.0, 2.0]);
        g.add_player(vec![vec![(0, 1.0), (2, 0.5)], vec![(1, 1.0), (2, 0.5)]]);
        g.add_player(vec![vec![(0, 2.0), (2, 1.0)], vec![(1, 2.0), (2, 1.0)]]);
        g.validate().unwrap();
        let p = Profile::from_choices(&g, vec![0, 0]);
        // Loads: r0 = 3, r2 = 1.5 → total = 1·9 + 2·2.25 = 13.5.
        assert_close!(p.total_cost(&g), 13.5, 1e-12);
        let identity: f64 = (0..2).map(|i| p.player_cost(&g, i)).sum();
        assert_close!(identity, 13.5, 1e-12);
        let mut rng = Pcg32::seed(1);
        let r = cgba(&g, &CgbaConfig::default(), &mut rng);
        assert!(r.converged);
        // Spreading over r0/r1 is optimal; shared r2 load unchanged.
        // loads: one on r0 (either 1 or 2 weight), other on r1, r2 = 1.5.
        // cost = w1² + w2² + 2·1.5² = 1 + 4 + 4.5 = 9.5.
        assert_close!(r.total_cost, 9.5, 1e-12);
    }

    #[test]
    fn validation_errors() {
        let mut g = CongestionGame::new(vec![1.0]);
        g.add_player(vec![]);
        assert!(matches!(g.validate(), Err(GameError::NoStrategies { player: 0 })));

        let mut g = CongestionGame::new(vec![1.0]);
        g.add_player(vec![vec![(3, 1.0)]]);
        assert!(matches!(g.validate(), Err(GameError::DanglingResource { .. })));

        let mut g = CongestionGame::new(vec![1.0, 1.0]);
        g.add_player(vec![vec![(0, 1.0), (0, 2.0)]]);
        assert!(matches!(g.validate(), Err(GameError::DuplicateResource { .. })));

        let mut g = CongestionGame::new(vec![-1.0]);
        g.add_player(vec![vec![(0, 1.0)]]);
        assert!(matches!(g.validate(), Err(GameError::BadWeight { .. })));

        let mut g = CongestionGame::new(vec![1.0]);
        g.add_player(vec![vec![(0, 0.0)]]);
        assert!(matches!(g.validate(), Err(GameError::BadWeight { .. })));
    }

    #[test]
    fn structure_construction_validates_eagerly() {
        assert!(matches!(
            GameStructure::new(1, vec![vec![vec![(3, 1.0)]]]),
            Err(GameError::DanglingResource { player: 0, resource: 3 })
        ));
        assert!(matches!(GameStructure::new(1, vec![vec![]]), Err(GameError::NoStrategies { .. })));
        assert!(matches!(
            ResourceWeights::new(vec![1.0, f64::NAN]),
            Err(GameError::BadWeight { .. })
        ));
        let st = GameStructure::new(2, vec![vec![vec![(0, 1.0)], vec![(1, 2.0)]]]).unwrap();
        assert_eq!(st.num_players(), 1);
        assert_eq!(st.touching(0), &[(0, 0)]);
        assert_eq!(st.touching(1), &[(0, 1)]);
    }

    #[test]
    fn touching_index_covers_every_strategy_resource() {
        let mut wr = Pcg32::seed(31);
        let weights: Vec<f64> = (0..9).map(|_| wr.uniform_in(0.5, 2.0)).collect();
        let m: Vec<f64> = (0..4).map(|_| wr.uniform_in(0.5, 2.0)).collect();
        let g = singleton_game(&weights, &m);
        let st = g.structure();
        for i in 0..st.num_players() {
            for (s, strategy) in st.strategies(i).iter().enumerate() {
                for &(r, _) in strategy {
                    assert!(st.touching(r).contains(&(i as u32, s as u32)));
                }
            }
        }
        let total: usize = (0..st.num_resources()).map(|r| st.touching(r).len()).sum();
        let expected: usize =
            (0..st.num_players()).flat_map(|i| st.strategies(i).iter().map(Vec::len)).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn in_place_weight_updates_preserve_shape() {
        let mut g = singleton_game(&[1.0, 2.0], &[1.0, 1.0]);
        let before = g.structure().clone();
        g.set_resource_weight(0, 3.0);
        g.set_strategy_weights(1, 0, &[5.0]);
        assert_eq!(g.resource_weight(0), 3.0);
        assert_eq!(g.strategies(1)[0], vec![(0, 5.0)]);
        // Only the weight payloads changed; the touching index is intact.
        for r in 0..2 {
            assert_eq!(g.structure().touching(r), before.touching(r));
        }
        g.validate().unwrap();
    }

    #[test]
    fn brute_force_matches_known_optimum() {
        let g = singleton_game(&[1.0, 2.0], &[1.0, 1.0]);
        let (choices, cost) = brute_force_optimum(&g, 100).unwrap();
        // Separating the players is optimal: 1² + 2² = 5.
        assert_eq!(cost, 5.0);
        assert_ne!(choices[0], choices[1]);
    }

    #[test]
    fn brute_force_guards_against_blowup() {
        let g = singleton_game(&[1.0; 30], &[1.0, 1.0]);
        let err = brute_force_optimum(&g, 1_000).unwrap_err();
        assert!(err > 1_000);
    }

    #[test]
    fn empirical_poa_within_theorem_constant() {
        let mut rng = Pcg32::seed(17);
        for seed in 0..10u64 {
            let mut wr = Pcg32::seed(seed);
            let weights: Vec<f64> = (0..6).map(|_| wr.uniform_in(0.5, 3.0)).collect();
            let m: Vec<f64> = (0..3).map(|_| wr.uniform_in(0.2, 2.0)).collect();
            let g = singleton_game(&weights, &m);
            let poa = empirical_price_of_anarchy(&g, 10, 1_000_000, &mut rng).unwrap();
            assert!((1.0..=2.62 + 1e-9).contains(&poa), "PoA {poa}");
        }
    }

    #[test]
    fn iteration_cap_reported_as_not_converged() {
        let g = singleton_game(&[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0]);
        let mut rng = Pcg32::seed(3);
        let cfg = CgbaConfig { max_iterations: 0, ..Default::default() };
        let r = cgba(&g, &cfg, &mut rng);
        // With zero allowed iterations, convergence can only be claimed if
        // the random start happened to be an equilibrium.
        if !r.converged {
            assert_eq!(r.iterations, 0);
        }
    }

    #[test]
    fn switch_keeps_loads_consistent() {
        let mut wr = Pcg32::seed(14);
        let weights: Vec<f64> = (0..7).map(|_| wr.uniform_in(0.5, 2.0)).collect();
        let m: Vec<f64> = (0..3).map(|_| wr.uniform_in(0.5, 2.0)).collect();
        let g = singleton_game(&weights, &m);
        let mut p = Profile::from_choices(&g, vec![0; 7]);
        let mut rng = Pcg32::seed(15);
        for _ in 0..100 {
            let i = rng.below(7);
            let s = rng.below(3);
            p.switch(&g, i, s);
        }
        let rebuilt = Profile::from_choices(&g, p.choices().to_vec());
        for (a, b) in p.loads().iter().zip(rebuilt.loads()) {
            assert_close!(*a, *b, 1e-9);
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // One scratch across games of different shapes and weight updates
        // must behave exactly like a fresh scratch per call.
        let mut scratch = CgbaScratch::default();
        for seed in 0..10u64 {
            let mut wr = Pcg32::seed(seed);
            let players = 2 + (seed as usize % 5);
            let resources = 2 + (seed as usize % 3);
            let weights: Vec<f64> = (0..players).map(|_| wr.uniform_in(0.5, 3.0)).collect();
            let m: Vec<f64> = (0..resources).map(|_| wr.uniform_in(0.2, 2.0)).collect();
            let mut g = singleton_game(&weights, &m);
            for round in 0..3 {
                let initial = Profile::random(&g, &mut Pcg32::seed(seed * 10 + round));
                let cfg = CgbaConfig::default();
                let reused = cgba_from_with_scratch(&g, initial.clone(), &cfg, &mut scratch);
                let fresh = cgba_from_with_scratch(&g, initial, &cfg, &mut CgbaScratch::default());
                assert_eq!(reused, fresh);
                // Perturb a resource weight in place before the next round.
                let r = wr.below(resources);
                g.set_resource_weight(r, wr.uniform_in(0.2, 2.0));
            }
        }
    }
}
