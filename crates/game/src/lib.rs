//! Weighted congestion games and the paper's CGBA algorithm (§V-B).
//!
//! Subproblem P2-A — choosing each device's (base station, server) pair to
//! minimize total latency — is interpreted by the paper as a *weighted
//! congestion game* `WCG = (D, {Z_i}, {T_i})`:
//!
//! * **Resources** `r ∈ R` are the compute capacity of each server and the
//!   access/fronthaul bandwidth of each base station, each with a weight
//!   `m_r` (`1/ω_n`, `1/W_k^A`, `1/W_k^F`).
//! * **Players** are the devices; a strategy `z_i` picks a feasible resource
//!   bundle (the server + the two link resources of the chosen station),
//!   contributing a player-resource weight `p_{i,r}` to each.
//! * **Cost** of player `i` is `T_i(z) = Σ_{r∈R_i(z_i)} m_r · p_{i,r} ·
//!   p_r(z)`, where `p_r(z) = Σ_{j uses r} p_{j,r}` is the load.
//!
//! The identity `Σ_i T_i(z) = Σ_r m_r · p_r(z)²` makes the game's social
//! cost exactly the latency `T_t` of eq. (18)–(19) (see `eotora-core::p2a`
//! for the mapping; DESIGN.md documents the `p_{i,C_n}` typo fix).
//!
//! This game admits the **exact potential**
//! `Φ(z) = ½ Σ_r m_r (p_r(z)² + Σ_{i∈I_r(z)} p_{i,r}²)`
//! — every unilateral improvement decreases Φ by the same amount, which is
//! why best-response dynamics terminate. [`cgba`] implements Algorithm 3:
//! repeatedly move the player with the *largest* improvement gap until no
//! player can improve its cost by more than a factor `λ`, giving the
//! `2.62/(1−8λ)` approximation of Theorem 2 in
//! `O((1/λ)·log(Φ₀/Φ_min))` iterations.
//!
//! # Examples
//!
//! ```
//! use eotora_game::{CongestionGame, CgbaConfig, cgba};
//! use eotora_util::rng::Pcg32;
//!
//! // Two players, two identical resources; each strategy uses one resource.
//! let mut g = CongestionGame::new(vec![1.0, 1.0]);
//! g.add_player(vec![vec![(0, 1.0)], vec![(1, 1.0)]]);
//! g.add_player(vec![vec![(0, 1.0)], vec![(1, 1.0)]]);
//! let report = cgba(&g, &CgbaConfig::default(), &mut Pcg32::seed(1));
//! // The equilibrium spreads the players: total cost 1² + 1² = 2.
//! assert_eq!(report.total_cost, 2.0);
//! ```

use serde::{Deserialize, Serialize};

use eotora_util::rng::Pcg32;

/// A strategy: the resource bundle it uses, as `(resource index, p_{i,r})`
/// pairs. Indices must be unique within a strategy.
pub type Strategy = Vec<(usize, f64)>;

/// Errors detected by [`CongestionGame::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum GameError {
    /// A strategy references a resource index `>= num_resources`.
    DanglingResource {
        /// Offending player.
        player: usize,
        /// Offending resource index.
        resource: usize,
    },
    /// A player has no strategies.
    NoStrategies {
        /// Offending player.
        player: usize,
    },
    /// A weight (`m_r` or `p_{i,r}`) is non-positive or non-finite.
    BadWeight {
        /// Human-readable description.
        context: String,
    },
    /// A strategy uses the same resource twice.
    DuplicateResource {
        /// Offending player.
        player: usize,
    },
}

impl std::fmt::Display for GameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DanglingResource { player, resource } => {
                write!(f, "player {player} references missing resource {resource}")
            }
            Self::NoStrategies { player } => write!(f, "player {player} has no strategies"),
            Self::BadWeight { context } => write!(f, "bad weight: {context}"),
            Self::DuplicateResource { player } => {
                write!(f, "player {player} has a strategy with duplicate resources")
            }
        }
    }
}

impl std::error::Error for GameError {}

/// A weighted congestion game with linear (load-proportional) resource costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionGame {
    resource_weights: Vec<f64>,
    players: Vec<Vec<Strategy>>,
}

impl CongestionGame {
    /// Creates a game over resources with weights `m_r`.
    ///
    /// # Panics
    ///
    /// Panics if `resource_weights` is empty.
    pub fn new(resource_weights: Vec<f64>) -> Self {
        assert!(!resource_weights.is_empty(), "need at least one resource");
        Self { resource_weights, players: Vec::new() }
    }

    /// Adds a player with the given strategy set; returns its index.
    pub fn add_player(&mut self, strategies: Vec<Strategy>) -> usize {
        self.players.push(strategies);
        self.players.len() - 1
    }

    /// Number of players `I`.
    pub fn num_players(&self) -> usize {
        self.players.len()
    }

    /// Number of resources `|R|`.
    pub fn num_resources(&self) -> usize {
        self.resource_weights.len()
    }

    /// The weight `m_r` of resource `r`.
    pub fn resource_weight(&self, r: usize) -> f64 {
        self.resource_weights[r]
    }

    /// Player `i`'s strategies.
    pub fn strategies(&self, i: usize) -> &[Strategy] {
        &self.players[i]
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`GameError`] found.
    pub fn validate(&self) -> Result<(), GameError> {
        for (r, &m) in self.resource_weights.iter().enumerate() {
            if m <= 0.0 || m.is_nan() || !m.is_finite() {
                return Err(GameError::BadWeight { context: format!("resource {r} weight {m}") });
            }
        }
        for (i, strategies) in self.players.iter().enumerate() {
            if strategies.is_empty() {
                return Err(GameError::NoStrategies { player: i });
            }
            for s in strategies {
                let mut seen = vec![false; self.resource_weights.len()];
                for &(r, w) in s {
                    if r >= self.resource_weights.len() {
                        return Err(GameError::DanglingResource { player: i, resource: r });
                    }
                    if seen[r] {
                        return Err(GameError::DuplicateResource { player: i });
                    }
                    seen[r] = true;
                    if w <= 0.0 || w.is_nan() || !w.is_finite() {
                        return Err(GameError::BadWeight {
                            context: format!("player {i} resource {r} weight {w}"),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// A strategy profile with incrementally maintained resource loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    choices: Vec<usize>,
    loads: Vec<f64>,
}

impl Profile {
    /// Builds a profile from per-player strategy indices.
    ///
    /// # Panics
    ///
    /// Panics if `choices.len()` differs from the player count or any index
    /// is out of range for its player.
    pub fn from_choices(game: &CongestionGame, choices: Vec<usize>) -> Self {
        assert_eq!(choices.len(), game.num_players(), "one choice per player");
        let mut loads = vec![0.0; game.num_resources()];
        for (i, &s) in choices.iter().enumerate() {
            for &(r, w) in &game.players[i][s] {
                loads[r] += w;
            }
        }
        Self { choices, loads }
    }

    /// A uniformly random profile.
    pub fn random(game: &CongestionGame, rng: &mut Pcg32) -> Self {
        let choices = (0..game.num_players()).map(|i| rng.below(game.players[i].len())).collect();
        Self::from_choices(game, choices)
    }

    /// Strategy index chosen by each player.
    pub fn choices(&self) -> &[usize] {
        &self.choices
    }

    /// Current load `p_r(z)` on each resource.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Switches player `i` to strategy `s`, updating loads incrementally.
    pub fn switch(&mut self, game: &CongestionGame, i: usize, s: usize) {
        for &(r, w) in &game.players[i][self.choices[i]] {
            self.loads[r] -= w;
        }
        for &(r, w) in &game.players[i][s] {
            self.loads[r] += w;
        }
        self.choices[i] = s;
    }

    /// Player `i`'s cost `T_i(z) = Σ_r m_r · p_{i,r} · p_r(z)`.
    pub fn player_cost(&self, game: &CongestionGame, i: usize) -> f64 {
        game.players[i][self.choices[i]]
            .iter()
            .map(|&(r, w)| game.resource_weights[r] * w * self.loads[r])
            .sum()
    }

    /// Social cost `Σ_i T_i(z) = Σ_r m_r · p_r(z)²`.
    pub fn total_cost(&self, game: &CongestionGame) -> f64 {
        self.loads.iter().zip(&game.resource_weights).map(|(&p, &m)| m * p * p).sum()
    }

    /// The exact potential
    /// `Φ(z) = ½ Σ_r m_r (p_r(z)² + Σ_{i∈I_r(z)} p_{i,r}²)`.
    ///
    /// Any unilateral deviation changes Φ by exactly the deviating player's
    /// cost change, so best-response dynamics strictly decrease Φ.
    pub fn potential(&self, game: &CongestionGame) -> f64 {
        let mut sum_sq = vec![0.0; game.num_resources()];
        for (i, &s) in self.choices.iter().enumerate() {
            for &(r, w) in &game.players[i][s] {
                sum_sq[r] += w * w;
            }
        }
        self.loads
            .iter()
            .zip(&game.resource_weights)
            .zip(&sum_sq)
            .map(|((&p, &m), &ss)| 0.5 * m * (p * p + ss))
            .sum()
    }

    /// The best response of player `i` against the rest of the profile:
    /// `(strategy index, resulting cost for i)`.
    pub fn best_response(&self, game: &CongestionGame, i: usize) -> (usize, f64) {
        let current = &game.players[i][self.choices[i]];
        let mut best = (self.choices[i], f64::INFINITY);
        for (s, strat) in game.players[i].iter().enumerate() {
            let mut cost = 0.0;
            for &(r, w) in strat {
                // Load excluding i's current contribution on r (if any).
                let own: f64 =
                    current.iter().find(|&&(cr, _)| cr == r).map(|&(_, cw)| cw).unwrap_or(0.0);
                cost += game.resource_weights[r] * w * (self.loads[r] - own + w);
            }
            if cost < best.1 {
                best = (s, cost);
            }
        }
        best
    }

    /// Whether no player can reduce its cost by a factor of more than
    /// `1/(1−λ)` — i.e. the CGBA stopping condition
    /// `(1−λ)·T_i(z) ≤ min_{ẑ_i} T_i(ẑ_i, z_{−i})` for all `i`.
    /// With `λ = 0` this is an exact Nash equilibrium (up to `tol`).
    pub fn is_lambda_equilibrium(&self, game: &CongestionGame, lambda: f64, tol: f64) -> bool {
        (0..game.num_players()).all(|i| {
            let cost = self.player_cost(game, i);
            let (_, best) = self.best_response(game, i);
            (1.0 - lambda) * cost <= best + tol
        })
    }
}

/// How CGBA picks which improvable player moves next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulingRule {
    /// The paper's Algorithm 3 line 3: the player with the largest absolute
    /// improvement `T_i(z) − min T_i(·, z_{−i})`.
    #[default]
    MaxGain,
    /// Cyclic scan (ablation baseline): first improvable player in index
    /// order after the last mover.
    RoundRobin,
}

/// Configuration for [`cgba`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CgbaConfig {
    /// Approximation slack `λ ∈ [0, 0.125)`; larger converges faster with a
    /// worse guarantee (Theorem 2).
    pub lambda: f64,
    /// Hard iteration cap (the potential argument guarantees finite
    /// termination; this guards pathological float behaviour).
    pub max_iterations: usize,
    /// Player-selection rule.
    pub scheduling: SchedulingRule,
}

impl Default for CgbaConfig {
    fn default() -> Self {
        Self { lambda: 0.0, max_iterations: 1_000_000, scheduling: SchedulingRule::MaxGain }
    }
}

/// Outcome of a [`cgba`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgbaReport {
    /// Final profile `ẑ`.
    pub profile: Profile,
    /// Social cost `T(ẑ)` of the final profile.
    pub total_cost: f64,
    /// Social cost of the random initial profile.
    pub initial_cost: f64,
    /// Number of best-response moves performed.
    pub iterations: usize,
    /// Whether the λ-equilibrium condition was reached (vs. iteration cap).
    pub converged: bool,
}

/// Runs CGBA(λ) (paper Algorithm 3) from a uniformly random initial profile.
///
/// # Panics
///
/// Panics if the game has no players, `λ ∉ [0, 1)`, or the game fails
/// [`CongestionGame::validate`].
pub fn cgba(game: &CongestionGame, config: &CgbaConfig, rng: &mut Pcg32) -> CgbaReport {
    let initial = Profile::random(game, rng);
    cgba_from(game, initial, config)
}

/// Runs CGBA(λ) from a caller-supplied initial profile (used for
/// deterministic ablations and warm starts).
///
/// # Panics
///
/// Same conditions as [`cgba`].
pub fn cgba_from(game: &CongestionGame, initial: Profile, config: &CgbaConfig) -> CgbaReport {
    assert!(game.num_players() > 0, "game has no players");
    assert!((0.0..1.0).contains(&config.lambda), "lambda must be in [0, 1)");
    game.validate().expect("game must validate before solving");

    let mut profile = initial;
    let initial_cost = profile.total_cost(game);
    let mut iterations = 0;
    let mut converged = false;
    let mut rr_cursor = 0usize;
    let n = game.num_players();

    while iterations < config.max_iterations {
        // Find the mover per the scheduling rule.
        let mut mover: Option<(usize, usize)> = None; // (player, strategy)
        match config.scheduling {
            SchedulingRule::MaxGain => {
                let mut best_gap = 0.0;
                for i in 0..n {
                    let cost = profile.player_cost(game, i);
                    let (s, br) = profile.best_response(game, i);
                    if (1.0 - config.lambda) * cost > br {
                        let gap = cost - br;
                        if gap > best_gap {
                            best_gap = gap;
                            mover = Some((i, s));
                        }
                    }
                }
            }
            SchedulingRule::RoundRobin => {
                for step in 0..n {
                    let i = (rr_cursor + step) % n;
                    let cost = profile.player_cost(game, i);
                    let (s, br) = profile.best_response(game, i);
                    if (1.0 - config.lambda) * cost > br {
                        mover = Some((i, s));
                        rr_cursor = (i + 1) % n;
                        break;
                    }
                }
            }
        }
        match mover {
            Some((i, s)) => {
                profile.switch(game, i, s);
                iterations += 1;
            }
            None => {
                converged = true;
                break;
            }
        }
    }

    let total_cost = profile.total_cost(game);
    CgbaReport { profile, total_cost, initial_cost, iterations, converged }
}

/// Exhaustively computes the social optimum of a *small* game.
///
/// Returns the optimal choices and cost. The profile space must not exceed
/// `max_profiles` (guard against accidental exponential blowups).
///
/// # Errors
///
/// Returns the actual profile-space size when it exceeds `max_profiles`.
///
/// # Examples
///
/// ```
/// use eotora_game::{brute_force_optimum, CongestionGame};
///
/// let mut g = CongestionGame::new(vec![1.0, 1.0]);
/// g.add_player(vec![vec![(0, 1.0)], vec![(1, 1.0)]]);
/// g.add_player(vec![vec![(0, 1.0)], vec![(1, 1.0)]]);
/// let (choices, cost) = brute_force_optimum(&g, 1_000_000).unwrap();
/// assert_eq!(cost, 2.0); // spread across the two resources
/// assert_ne!(choices[0], choices[1]);
/// ```
pub fn brute_force_optimum(
    game: &CongestionGame,
    max_profiles: u128,
) -> Result<(Vec<usize>, f64), u128> {
    let mut space: u128 = 1;
    for i in 0..game.num_players() {
        space = space.saturating_mul(game.strategies(i).len() as u128);
        if space > max_profiles {
            return Err(space);
        }
    }
    let n = game.num_players();
    let mut choices = vec![0usize; n];
    let mut best_choices = choices.clone();
    let mut best = f64::INFINITY;
    loop {
        let cost = Profile::from_choices(game, choices.clone()).total_cost(game);
        if cost < best {
            best = cost;
            best_choices = choices.clone();
        }
        // Odometer increment over the mixed-radix strategy space.
        let mut i = 0;
        loop {
            if i == n {
                return Ok((best_choices, best));
            }
            choices[i] += 1;
            if choices[i] < game.strategies(i).len() {
                break;
            }
            choices[i] = 0;
            i += 1;
        }
    }
}

/// Empirical price-of-anarchy scan: runs CGBA(0) from `samples` random
/// starts and compares the worst equilibrium found against the brute-force
/// optimum. For weighted congestion games with affine costs the true PoA is
/// at most 2.62 (the constant in the paper's Theorem 2).
///
/// # Errors
///
/// Propagates [`brute_force_optimum`]'s size guard.
pub fn empirical_price_of_anarchy(
    game: &CongestionGame,
    samples: usize,
    max_profiles: u128,
    rng: &mut Pcg32,
) -> Result<f64, u128> {
    let (_, opt) = brute_force_optimum(game, max_profiles)?;
    let mut worst: f64 = 1.0;
    for _ in 0..samples {
        let report = cgba(game, &CgbaConfig::default(), rng);
        if opt > 0.0 {
            worst = worst.max(report.total_cost / opt);
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::assert_close;

    /// I players, R resources, each strategy = exactly one resource, with
    /// player weight `w[i]` on every resource.
    fn singleton_game(weights: &[f64], m: &[f64]) -> CongestionGame {
        let mut g = CongestionGame::new(m.to_vec());
        for &w in weights {
            let strategies = (0..m.len()).map(|r| vec![(r, w)]).collect();
            g.add_player(strategies);
        }
        g
    }

    #[test]
    fn social_cost_identity() {
        // Σ_i T_i == Σ_r m_r p_r² for arbitrary profiles.
        let g = singleton_game(&[1.0, 2.0, 3.0], &[0.5, 2.0]);
        for choices in [[0, 0, 0], [0, 1, 0], [1, 1, 1], [0, 1, 1]] {
            let p = Profile::from_choices(&g, choices.to_vec());
            let by_players: f64 = (0..3).map(|i| p.player_cost(&g, i)).sum();
            assert_close!(by_players, p.total_cost(&g), 1e-12);
        }
    }

    #[test]
    fn potential_change_equals_cost_change() {
        let g = singleton_game(&[1.5, 2.5], &[1.0, 3.0]);
        let mut p = Profile::from_choices(&g, vec![0, 0]);
        let phi0 = p.potential(&g);
        let c0 = p.player_cost(&g, 1);
        p.switch(&g, 1, 1);
        let phi1 = p.potential(&g);
        let c1 = p.player_cost(&g, 1);
        assert_close!(phi1 - phi0, c1 - c0, 1e-12);
    }

    #[test]
    fn best_response_spreads_load() {
        let g = singleton_game(&[1.0, 1.0], &[1.0, 1.0]);
        let p = Profile::from_choices(&g, vec![0, 0]);
        let (s, cost) = p.best_response(&g, 1);
        assert_eq!(s, 1);
        assert_close!(cost, 1.0, 1e-12);
    }

    #[test]
    fn cgba_reaches_nash_on_symmetric_game() {
        let g = singleton_game(&[1.0; 4], &[1.0, 1.0]);
        let mut rng = Pcg32::seed(5);
        let r = cgba(&g, &CgbaConfig::default(), &mut rng);
        assert!(r.converged);
        assert!(r.profile.is_lambda_equilibrium(&g, 0.0, 1e-12));
        // Balanced split: loads (2, 2) → total cost 8. Any imbalance is worse.
        assert_close!(r.total_cost, 8.0, 1e-12);
    }

    #[test]
    fn cgba_never_increases_cost_vs_start() {
        let mut rng = Pcg32::seed(6);
        for seed in 0..20u64 {
            let mut wr = Pcg32::seed(seed);
            let weights: Vec<f64> = (0..8).map(|_| wr.uniform_in(0.5, 3.0)).collect();
            let m: Vec<f64> = (0..4).map(|_| wr.uniform_in(0.2, 2.0)).collect();
            let g = singleton_game(&weights, &m);
            let r = cgba(&g, &CgbaConfig::default(), &mut rng);
            assert!(r.total_cost <= r.initial_cost + 1e-9);
            assert!(r.converged);
        }
    }

    #[test]
    fn potential_decreases_along_cgba_moves() {
        // Replay CGBA manually and check Φ strictly decreases.
        let mut wr = Pcg32::seed(8);
        let weights: Vec<f64> = (0..6).map(|_| wr.uniform_in(0.5, 2.0)).collect();
        let m: Vec<f64> = (0..3).map(|_| wr.uniform_in(0.5, 2.0)).collect();
        let g = singleton_game(&weights, &m);
        let mut p = Profile::from_choices(&g, vec![0; 6]);
        let mut phi = p.potential(&g);
        for _ in 0..1000 {
            let mut moved = false;
            for i in 0..6 {
                let cost = p.player_cost(&g, i);
                let (s, br) = p.best_response(&g, i);
                if br < cost - 1e-12 {
                    p.switch(&g, i, s);
                    let new_phi = p.potential(&g);
                    assert!(new_phi < phi - 1e-12, "potential must strictly decrease");
                    phi = new_phi;
                    moved = true;
                    break;
                }
            }
            if !moved {
                return;
            }
        }
        panic!("best-response dynamics failed to converge");
    }

    #[test]
    fn lambda_relaxes_convergence() {
        let mut wr = Pcg32::seed(10);
        let weights: Vec<f64> = (0..20).map(|_| wr.uniform_in(0.5, 3.0)).collect();
        let m: Vec<f64> = (0..5).map(|_| wr.uniform_in(0.2, 2.0)).collect();
        let g = singleton_game(&weights, &m);
        let mut iters = Vec::new();
        let mut costs = Vec::new();
        for lambda in [0.0, 0.06, 0.12] {
            // Average over several starts to smooth randomness.
            let mut total_iters = 0;
            let mut total_cost = 0.0;
            for seed in 0..10u64 {
                let mut rng = Pcg32::seed(seed);
                let cfg = CgbaConfig { lambda, ..Default::default() };
                let r = cgba(&g, &cfg, &mut rng);
                assert!(r.converged);
                assert!(r.profile.is_lambda_equilibrium(&g, lambda, 1e-9));
                total_iters += r.iterations;
                total_cost += r.total_cost;
            }
            iters.push(total_iters);
            costs.push(total_cost);
        }
        // More slack → no more iterations than exact best response.
        assert!(iters[2] <= iters[0], "iters {iters:?}");
        // Final costs stay in the same ballpark (λ only weakens the
        // guarantee; which equilibrium is hit is start-dependent).
        assert!((costs[2] - costs[0]).abs() <= 0.05 * costs[0], "costs {costs:?}");
    }

    #[test]
    fn round_robin_also_converges_to_nash() {
        let mut wr = Pcg32::seed(11);
        let weights: Vec<f64> = (0..10).map(|_| wr.uniform_in(0.5, 3.0)).collect();
        let m: Vec<f64> = (0..4).map(|_| wr.uniform_in(0.2, 2.0)).collect();
        let g = singleton_game(&weights, &m);
        let mut rng = Pcg32::seed(12);
        let cfg = CgbaConfig { scheduling: SchedulingRule::RoundRobin, ..Default::default() };
        let r = cgba(&g, &cfg, &mut rng);
        assert!(r.converged);
        assert!(r.profile.is_lambda_equilibrium(&g, 0.0, 1e-9));
    }

    #[test]
    fn price_of_anarchy_within_theorem_bound() {
        // Exhaustively compute the optimum on small instances and check
        // T(ẑ) ≤ 2.62 · T(z*) for λ = 0 (Theorem 2).
        for seed in 0..30u64 {
            let mut wr = Pcg32::seed(seed);
            let weights: Vec<f64> = (0..5).map(|_| wr.uniform_in(0.5, 3.0)).collect();
            let m: Vec<f64> = (0..3).map(|_| wr.uniform_in(0.2, 2.0)).collect();
            let g = singleton_game(&weights, &m);
            // Brute force optimum over 3^5 profiles.
            let mut opt = f64::INFINITY;
            for code in 0..3usize.pow(5) {
                let mut c = code;
                let choices: Vec<usize> = (0..5)
                    .map(|_| {
                        let v = c % 3;
                        c /= 3;
                        v
                    })
                    .collect();
                opt = opt.min(Profile::from_choices(&g, choices).total_cost(&g));
            }
            let mut rng = Pcg32::seed(seed + 1000);
            let r = cgba(&g, &CgbaConfig::default(), &mut rng);
            assert!(
                r.total_cost <= 2.62 * opt + 1e-9,
                "seed {seed}: {} > 2.62 × {opt}",
                r.total_cost
            );
        }
    }

    #[test]
    fn multi_resource_strategies() {
        // Strategies that bundle resources (like BS + server in the paper).
        let mut g = CongestionGame::new(vec![1.0, 1.0, 2.0]);
        g.add_player(vec![vec![(0, 1.0), (2, 0.5)], vec![(1, 1.0), (2, 0.5)]]);
        g.add_player(vec![vec![(0, 2.0), (2, 1.0)], vec![(1, 2.0), (2, 1.0)]]);
        g.validate().unwrap();
        let p = Profile::from_choices(&g, vec![0, 0]);
        // Loads: r0 = 3, r2 = 1.5 → total = 1·9 + 2·2.25 = 13.5.
        assert_close!(p.total_cost(&g), 13.5, 1e-12);
        let identity: f64 = (0..2).map(|i| p.player_cost(&g, i)).sum();
        assert_close!(identity, 13.5, 1e-12);
        let mut rng = Pcg32::seed(1);
        let r = cgba(&g, &CgbaConfig::default(), &mut rng);
        assert!(r.converged);
        // Spreading over r0/r1 is optimal; shared r2 load unchanged.
        // loads: one on r0 (either 1 or 2 weight), other on r1, r2 = 1.5.
        // cost = w1² + w2² + 2·1.5² = 1 + 4 + 4.5 = 9.5.
        assert_close!(r.total_cost, 9.5, 1e-12);
    }

    #[test]
    fn validation_errors() {
        let mut g = CongestionGame::new(vec![1.0]);
        g.add_player(vec![]);
        assert!(matches!(g.validate(), Err(GameError::NoStrategies { player: 0 })));

        let mut g = CongestionGame::new(vec![1.0]);
        g.add_player(vec![vec![(3, 1.0)]]);
        assert!(matches!(g.validate(), Err(GameError::DanglingResource { .. })));

        let mut g = CongestionGame::new(vec![1.0, 1.0]);
        g.add_player(vec![vec![(0, 1.0), (0, 2.0)]]);
        assert!(matches!(g.validate(), Err(GameError::DuplicateResource { .. })));

        let mut g = CongestionGame::new(vec![-1.0]);
        g.add_player(vec![vec![(0, 1.0)]]);
        assert!(matches!(g.validate(), Err(GameError::BadWeight { .. })));

        let mut g = CongestionGame::new(vec![1.0]);
        g.add_player(vec![vec![(0, 0.0)]]);
        assert!(matches!(g.validate(), Err(GameError::BadWeight { .. })));
    }

    #[test]
    fn brute_force_matches_known_optimum() {
        let g = singleton_game(&[1.0, 2.0], &[1.0, 1.0]);
        let (choices, cost) = brute_force_optimum(&g, 100).unwrap();
        // Separating the players is optimal: 1² + 2² = 5.
        assert_eq!(cost, 5.0);
        assert_ne!(choices[0], choices[1]);
    }

    #[test]
    fn brute_force_guards_against_blowup() {
        let g = singleton_game(&[1.0; 30], &[1.0, 1.0]);
        let err = brute_force_optimum(&g, 1_000).unwrap_err();
        assert!(err > 1_000);
    }

    #[test]
    fn empirical_poa_within_theorem_constant() {
        let mut rng = Pcg32::seed(17);
        for seed in 0..10u64 {
            let mut wr = Pcg32::seed(seed);
            let weights: Vec<f64> = (0..6).map(|_| wr.uniform_in(0.5, 3.0)).collect();
            let m: Vec<f64> = (0..3).map(|_| wr.uniform_in(0.2, 2.0)).collect();
            let g = singleton_game(&weights, &m);
            let poa = empirical_price_of_anarchy(&g, 10, 1_000_000, &mut rng).unwrap();
            assert!((1.0..=2.62 + 1e-9).contains(&poa), "PoA {poa}");
        }
    }

    #[test]
    fn iteration_cap_reported_as_not_converged() {
        let g = singleton_game(&[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0]);
        let mut rng = Pcg32::seed(3);
        let cfg = CgbaConfig { max_iterations: 0, ..Default::default() };
        let r = cgba(&g, &cfg, &mut rng);
        // With zero allowed iterations, convergence can only be claimed if
        // the random start happened to be an equilibrium.
        if !r.converged {
            assert_eq!(r.iterations, 0);
        }
    }

    #[test]
    fn switch_keeps_loads_consistent() {
        let mut wr = Pcg32::seed(14);
        let weights: Vec<f64> = (0..7).map(|_| wr.uniform_in(0.5, 2.0)).collect();
        let m: Vec<f64> = (0..3).map(|_| wr.uniform_in(0.5, 2.0)).collect();
        let g = singleton_game(&weights, &m);
        let mut p = Profile::from_choices(&g, vec![0; 7]);
        let mut rng = Pcg32::seed(15);
        for _ in 0..100 {
            let i = rng.below(7);
            let s = rng.below(3);
            p.switch(&g, i, s);
        }
        let rebuilt = Profile::from_choices(&g, p.choices().to_vec());
        for (a, b) in p.loads().iter().zip(rebuilt.loads()) {
            assert_close!(*a, *b, 1e-9);
        }
    }
}
