//! CGBA(λ) best-response dynamics (paper Algorithm 3) with an incremental
//! MaxGain scheduler.
//!
//! The naive MaxGain loop rescans every `(player, strategy)` cost each
//! iteration — O(I·S) work per move. A best-response move only changes the
//! loads of the resources in the mover's old and new strategies, so only
//! entries whose strategy touches one of those resources (plus the mover's
//! own entries) can change value. [`CgbaScratch`] caches per-entry costs and
//! uses [`GameStructure::touching`] to mark exactly those entries dirty,
//! recomputing each with the *same expression* the naive scan uses — the
//! mover sequence and every intermediate float are bit-identical to the
//! rescan (asserted per-iteration under `cfg(test)` or the `naive-check`
//! feature, and property-tested in `tests/incremental.rs`).
//!
//! [`cgba_from_reference`] keeps the pre-refactor rescan loop verbatim as
//! the equivalence oracle and benchmark baseline.

use serde::{Deserialize, Serialize};

use eotora_util::rng::Pcg32;

use crate::{validate_parts, GameRef, GameStructure, Profile, StrategyFilter};

/// How CGBA picks which improvable player moves next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulingRule {
    /// The paper's Algorithm 3 line 3: the player with the largest absolute
    /// improvement `T_i(z) − min T_i(·, z_{−i})`.
    #[default]
    MaxGain,
    /// Cyclic scan (ablation baseline): first improvable player in index
    /// order after the last mover.
    RoundRobin,
}

/// Configuration for [`cgba`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CgbaConfig {
    /// Approximation slack `λ ∈ [0, 0.125)`; larger converges faster with a
    /// worse guarantee (Theorem 2).
    pub lambda: f64,
    /// Hard iteration cap (the potential argument guarantees finite
    /// termination; this guards pathological float behaviour).
    pub max_iterations: usize,
    /// Player-selection rule.
    pub scheduling: SchedulingRule,
}

impl Default for CgbaConfig {
    fn default() -> Self {
        Self { lambda: 0.0, max_iterations: 1_000_000, scheduling: SchedulingRule::MaxGain }
    }
}

/// Outcome of a [`cgba`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgbaReport {
    /// Final profile `ẑ`.
    pub profile: Profile,
    /// Social cost `T(ẑ)` of the final profile.
    pub total_cost: f64,
    /// Social cost of the *seed* profile the dynamics started from — a
    /// uniformly random profile under [`cgba`], the caller-supplied (e.g.
    /// retained previous-slot) profile under [`cgba_from`] and the warm
    /// entry points.
    pub initial_cost: f64,
    /// Number of best-response moves performed.
    pub iterations: usize,
    /// Whether the λ-equilibrium condition was reached (vs. iteration cap).
    pub converged: bool,
}

/// Reusable state for the incremental MaxGain scheduler: cached
/// `(player, strategy)` costs in a flat arena plus dirty flags. Owning one
/// across [`cgba_from_with_scratch`] calls makes the steady-state solve
/// allocation-free; `CgbaScratch::reset` marks everything dirty at the
/// start of each call, so weight updates between calls need no bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct CgbaScratch {
    /// `offsets[i]..offsets[i+1]` indexes player `i`'s entries in the arena.
    offsets: Vec<usize>,
    /// Cached `Profile::strategy_cost` per `(player, strategy)` entry.
    strat_cost: Vec<f64>,
    entry_dirty: Vec<bool>,
    /// Cached `Profile::player_cost` per player.
    cur_cost: Vec<f64>,
    cur_dirty: Vec<bool>,
    /// Cached best response per player (valid when `!player_dirty`).
    best_s: Vec<usize>,
    best_cost: Vec<f64>,
    player_dirty: Vec<bool>,
    moves: Vec<(usize, usize)>,
    /// Move-local buffer of `(resource, pre-move load bits)` pairs.
    touched: Vec<(usize, u64)>,
    /// Warm-start snapshot of the last tracked run (see
    /// [`cgba_warm_from_with_scratch`]): when the next warm call starts from
    /// the snapshotted profile, only entries whose inputs changed bit
    /// pattern since that run need a rescan.
    snap_valid: bool,
    snap_choices: Vec<usize>,
    snap_loads: Vec<u64>,
    snap_weights: Vec<u64>,
    /// Flattened `(resource, weight bits)` of every strategy, in
    /// `(player, strategy, entry)` order — guards against structure drift
    /// and detects per-player weight updates exactly.
    snap_strat_resources: Vec<usize>,
    snap_strat_weights: Vec<u64>,
    /// Monotonic count of cost evaluations (`player_cost` /
    /// `strategy_cost` calls) performed by solves using this scratch —
    /// the hot path's unit of work, surfaced as the `cgba.probes`
    /// counter. Never reset, so callers can emit per-solve deltas.
    probes: u64,
}

impl CgbaScratch {
    /// Sizes the arena for `structure` and marks every cache entry dirty.
    fn reset(&mut self, structure: &GameStructure) {
        let n = structure.num_players();
        self.offsets.clear();
        self.offsets.push(0);
        let mut total = 0;
        for i in 0..n {
            total += structure.strategies(i).len();
            self.offsets.push(total);
        }
        self.strat_cost.clear();
        self.strat_cost.resize(total, 0.0);
        self.entry_dirty.clear();
        self.entry_dirty.resize(total, true);
        self.cur_cost.clear();
        self.cur_cost.resize(n, 0.0);
        self.cur_dirty.clear();
        self.cur_dirty.resize(n, true);
        self.best_s.clear();
        self.best_s.resize(n, 0);
        self.best_cost.clear();
        self.best_cost.resize(n, 0.0);
        self.player_dirty.clear();
        self.player_dirty.resize(n, true);
        self.moves.clear();
        // A cold start means the caches will be rebuilt for an arbitrary
        // profile; any retained warm snapshot no longer describes them.
        self.snap_valid = false;
    }

    /// Attempts the warm first-iteration fast path: when `initial` is
    /// exactly the profile the last tracked run converged to, the caches in
    /// this scratch are still *valid* for every entry whose inputs (resource
    /// weight, resource load, own strategy weights) kept the same bit
    /// pattern — [`Profile::strategy_cost`] is deterministic, so a rescan
    /// would reproduce the cached float exactly. Marks dirty precisely the
    /// entries touching a changed resource or owned by a player whose
    /// strategy weights changed, and returns `true`.
    ///
    /// Returns `false` (caller must [`CgbaScratch::reset`]) when there is no
    /// snapshot, the seed differs from the snapshotted profile, or the game
    /// structure drifted (player/resource/strategy shape mismatch).
    fn try_warm<G: GameRef>(&mut self, game: &G, initial: &Profile) -> bool {
        if !self.snap_valid {
            return false;
        }
        let structure = game.structure();
        let weights = game.weights();
        let n = structure.num_players();
        if self.snap_choices != initial.choices
            || self.snap_weights.len() != structure.num_resources()
            || self.offsets.len() != n + 1
        {
            return false;
        }
        for i in 0..n {
            if self.offsets[i + 1] - self.offsets[i] != structure.strategies(i).len() {
                return false;
            }
        }

        self.entry_dirty.iter_mut().for_each(|e| *e = false);
        self.cur_dirty.iter_mut().for_each(|e| *e = false);
        self.player_dirty.iter_mut().for_each(|e| *e = false);
        self.moves.clear();

        // Pass 1: resources whose weight or load changed bit pattern dirty
        // every entry that touches them (and the current cost of players
        // whose *chosen* strategy touches them).
        for r in 0..self.snap_weights.len() {
            if weights.get(r).to_bits() == self.snap_weights[r]
                && initial.loads[r].to_bits() == self.snap_loads[r]
            {
                continue;
            }
            for &(p, ps) in structure.touching(r) {
                let (p, ps) = (p as usize, ps as usize);
                self.entry_dirty[self.offsets[p] + ps] = true;
                self.player_dirty[p] = true;
                if ps == initial.choices[p] {
                    self.cur_dirty[p] = true;
                }
            }
        }

        // Pass 2: per-player strategy weights. A changed weight in strategy
        // `s` dirties entry `(i, s)`; a change in the *chosen* strategy also
        // shifts the `own` term of every entry of `i` and `i`'s current
        // cost. Any drift in the resource lists themselves means this is a
        // different structure — bail out to a full reset.
        let mut idx = 0;
        for i in 0..n {
            for (s, strategy) in structure.strategies(i).iter().enumerate() {
                for &(r, w) in strategy {
                    if idx >= self.snap_strat_resources.len() || self.snap_strat_resources[idx] != r
                    {
                        return false;
                    }
                    if w.to_bits() != self.snap_strat_weights[idx] {
                        self.entry_dirty[self.offsets[i] + s] = true;
                        self.player_dirty[i] = true;
                        if s == initial.choices[i] {
                            for e in &mut self.entry_dirty[self.offsets[i]..self.offsets[i + 1]] {
                                *e = true;
                            }
                            self.cur_dirty[i] = true;
                        }
                    }
                    idx += 1;
                }
            }
        }
        idx == self.snap_strat_resources.len()
    }

    /// Records the converged profile plus the weight/load bit patterns its
    /// caches were computed against, enabling [`CgbaScratch::try_warm`] on
    /// the next call.
    fn store_snapshot<G: GameRef>(&mut self, game: &G, profile: &Profile) {
        let structure = game.structure();
        let weights = game.weights();
        self.snap_choices.clear();
        self.snap_choices.extend_from_slice(&profile.choices);
        self.snap_loads.clear();
        self.snap_loads.extend(profile.loads.iter().map(|l| l.to_bits()));
        self.snap_weights.clear();
        self.snap_weights.extend((0..structure.num_resources()).map(|r| weights.get(r).to_bits()));
        self.snap_strat_resources.clear();
        self.snap_strat_weights.clear();
        for i in 0..structure.num_players() {
            for strategy in structure.strategies(i) {
                for &(r, w) in strategy {
                    self.snap_strat_resources.push(r);
                    self.snap_strat_weights.push(w.to_bits());
                }
            }
        }
        self.snap_valid = true;
    }

    /// The `(player, strategy)` moves of the most recent run, in order —
    /// lets equivalence tests compare the incremental scheduler's decisions
    /// against a naive-rescan trace, not just the final profile.
    pub fn moves(&self) -> &[(usize, usize)] {
        &self.moves
    }

    /// Monotonic count of cost evaluations performed by every solve that
    /// used this scratch. Callers snapshot before/after a solve and emit
    /// the delta as the `cgba.probes` counter.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Performs player `i`'s move to strategy `s` (via [`Profile::switch`])
    /// and marks every cache entry the move invalidates.
    ///
    /// A non-mover's cached cost depends only on the *values* of its
    /// strategy's resource loads (and its own unchanged choice), so only
    /// resources whose load actually changed bit pattern can invalidate it.
    /// When the old and new strategy share a resource with the same weight
    /// (e.g. a server switch that keeps the base station), the `-w` then
    /// `+w` round-trip usually restores the load bits exactly — those
    /// entries would recompute to the identical float and stay valid, so
    /// the loads are snapshotted before the switch and compared after.
    fn apply_move<G: GameRef>(&mut self, game: &G, profile: &mut Profile, i: usize, s: usize) {
        let structure = game.structure();
        // The mover's own entries all change (its `own` contribution term
        // follows its current choice), as do its cost and best response.
        for e in &mut self.entry_dirty[self.offsets[i]..self.offsets[i + 1]] {
            *e = true;
        }
        self.player_dirty[i] = true;
        self.cur_dirty[i] = true;

        self.touched.clear();
        for strat in [profile.choices[i], s] {
            for &(r, _) in &structure.strategies(i)[strat] {
                if !self.touched.iter().any(|&(tr, _)| tr == r) {
                    self.touched.push((r, profile.loads[r].to_bits()));
                }
            }
        }
        profile.switch(game, i, s);
        for idx in 0..self.touched.len() {
            let (r, before) = self.touched[idx];
            if profile.loads[r].to_bits() == before {
                continue;
            }
            for &(p, ps) in structure.touching(r) {
                let (p, ps) = (p as usize, ps as usize);
                self.entry_dirty[self.offsets[p] + ps] = true;
                self.player_dirty[p] = true;
                // A player's *current* cost only moves if its chosen
                // strategy uses the touched resource.
                if ps == profile.choices[p] {
                    self.cur_dirty[p] = true;
                }
            }
        }
    }
}

/// Runs CGBA(λ) (paper Algorithm 3) from a uniformly random initial profile.
///
/// # Panics
///
/// Panics if the game has no players or `λ ∉ [0, 1)`. Validity of the game
/// is a construction-time concern ([`GameStructure::new`],
/// [`crate::ResourceWeights::new`]) and only debug-asserted here.
pub fn cgba<G: GameRef>(game: &G, config: &CgbaConfig, rng: &mut Pcg32) -> CgbaReport {
    let initial = Profile::random(game, rng);
    cgba_from(game, initial, config)
}

/// Runs CGBA(λ) from a caller-supplied initial profile (used for
/// deterministic ablations and warm starts).
///
/// # Panics
///
/// Same conditions as [`cgba`].
pub fn cgba_from<G: GameRef>(game: &G, initial: Profile, config: &CgbaConfig) -> CgbaReport {
    cgba_from_with_scratch(game, initial, config, &mut CgbaScratch::default())
}

/// Runs CGBA(λ) reusing caller-owned [`CgbaScratch`] — the allocation-free
/// steady-state entry point. Produces bit-identical results to
/// [`cgba_from_reference`] for any game, initial profile, and config.
///
/// # Panics
///
/// Same conditions as [`cgba`].
pub fn cgba_from_with_scratch<G: GameRef>(
    game: &G,
    initial: Profile,
    config: &CgbaConfig,
    scratch: &mut CgbaScratch,
) -> CgbaReport {
    assert!(game.structure().num_players() > 0, "game has no players");
    assert!((0.0..1.0).contains(&config.lambda), "lambda must be in [0, 1)");
    debug_assert!(
        validate_parts(game.structure(), game.weights()).is_ok(),
        "game must validate before solving"
    );
    scratch.reset(game.structure());
    match config.scheduling {
        SchedulingRule::MaxGain => cgba_max_gain(game, initial, config, scratch),
        SchedulingRule::RoundRobin => cgba_round_robin(game, initial, config, scratch),
    }
}

/// Runs CGBA(λ) from a caller-supplied profile with the warm
/// first-iteration fast path: when `initial` equals the profile the
/// previous call through this entry point converged to, only cache entries
/// whose inputs changed bit pattern since then are rescanned (the
/// scratch's `try_warm` step); everything else is reused. Falls back to a
/// full scratch reset whenever the snapshot does not apply, so the
/// result is *always* bit-identical to [`cgba_from_reference`] for the same
/// game, initial profile, and config — warm starts change how fast the
/// mover sequence is found, never which moves are made.
///
/// Only the MaxGain scheduler has an incremental cache to warm; RoundRobin
/// degrades to the cold path.
///
/// # Panics
///
/// Same conditions as [`cgba`].
pub fn cgba_warm_from_with_scratch<G: GameRef>(
    game: &G,
    initial: Profile,
    config: &CgbaConfig,
    scratch: &mut CgbaScratch,
) -> CgbaReport {
    assert!(game.structure().num_players() > 0, "game has no players");
    assert!((0.0..1.0).contains(&config.lambda), "lambda must be in [0, 1)");
    debug_assert!(
        validate_parts(game.structure(), game.weights()).is_ok(),
        "game must validate before solving"
    );
    let warm = config.scheduling == SchedulingRule::MaxGain && scratch.try_warm(game, &initial);
    if !warm {
        scratch.reset(game.structure());
    }
    let report = match config.scheduling {
        SchedulingRule::MaxGain => cgba_max_gain(game, initial, config, scratch),
        SchedulingRule::RoundRobin => cgba_round_robin(game, initial, config, scratch),
    };
    // Only a converged MaxGain run leaves every cache entry clean (the
    // final no-mover scan refreshed them all); an iteration-capped exit
    // leaves stale entries behind and cannot seed the fast path.
    if report.converged && config.scheduling == SchedulingRule::MaxGain {
        scratch.store_snapshot(game, &report.profile);
    } else {
        scratch.snap_valid = false;
    }
    report
}

/// Incremental MaxGain loop: refresh dirty cache entries, pick the max-gap
/// mover from the caches, dirty only what the move invalidates.
fn cgba_max_gain<G: GameRef>(
    game: &G,
    initial: Profile,
    config: &CgbaConfig,
    scratch: &mut CgbaScratch,
) -> CgbaReport {
    let mut profile = initial;
    let initial_cost = profile.total_cost(game);
    let mut iterations = 0;
    let mut converged = false;
    let n = game.structure().num_players();

    while iterations < config.max_iterations {
        let mut mover: Option<(usize, usize)> = None; // (player, strategy)
        let mut best_gap = 0.0;
        for i in 0..n {
            if scratch.cur_dirty[i] {
                scratch.cur_cost[i] = profile.player_cost(game, i);
                scratch.cur_dirty[i] = false;
                scratch.probes += 1;
            }
            if scratch.player_dirty[i] {
                let off = scratch.offsets[i];
                let mut best = (profile.choices[i], f64::INFINITY);
                for s in 0..(scratch.offsets[i + 1] - off) {
                    if scratch.entry_dirty[off + s] {
                        scratch.strat_cost[off + s] = profile.strategy_cost(game, i, s);
                        scratch.entry_dirty[off + s] = false;
                        scratch.probes += 1;
                    }
                    let cost = scratch.strat_cost[off + s];
                    if cost < best.1 {
                        best = (s, cost);
                    }
                }
                scratch.best_s[i] = best.0;
                scratch.best_cost[i] = best.1;
                scratch.player_dirty[i] = false;
            }
            let cost = scratch.cur_cost[i];
            let br = scratch.best_cost[i];
            if (1.0 - config.lambda) * cost > br {
                let gap = cost - br;
                if gap > best_gap {
                    best_gap = gap;
                    mover = Some((i, scratch.best_s[i]));
                }
            }
        }
        #[cfg(any(test, feature = "naive-check"))]
        assert_eq!(
            mover,
            naive_max_gain_mover(game, &profile, config),
            "incremental MaxGain diverged from naive rescan at iteration {iterations}"
        );
        match mover {
            Some((i, s)) => {
                scratch.apply_move(game, &mut profile, i, s);
                scratch.moves.push((i, s));
                iterations += 1;
            }
            None => {
                converged = true;
                break;
            }
        }
    }

    let total_cost = profile.total_cost(game);
    CgbaReport { profile, total_cost, initial_cost, iterations, converged }
}

/// RoundRobin is an ablation baseline, not a hot path: keep the naive scan.
fn cgba_round_robin<G: GameRef>(
    game: &G,
    initial: Profile,
    config: &CgbaConfig,
    scratch: &mut CgbaScratch,
) -> CgbaReport {
    let mut profile = initial;
    let initial_cost = profile.total_cost(game);
    let mut iterations = 0;
    let mut converged = false;
    let mut rr_cursor = 0usize;
    let n = game.structure().num_players();

    while iterations < config.max_iterations {
        let mut mover: Option<(usize, usize)> = None;
        for step in 0..n {
            let i = (rr_cursor + step) % n;
            let cost = profile.player_cost(game, i);
            let (s, br) = profile.best_response(game, i);
            scratch.probes += 1 + game.structure().strategies(i).len() as u64;
            if (1.0 - config.lambda) * cost > br {
                mover = Some((i, s));
                rr_cursor = (i + 1) % n;
                break;
            }
        }
        match mover {
            Some((i, s)) => {
                profile.switch(game, i, s);
                scratch.moves.push((i, s));
                iterations += 1;
            }
            None => {
                converged = true;
                break;
            }
        }
    }

    let total_cost = profile.total_cost(game);
    CgbaReport { profile, total_cost, initial_cost, iterations, converged }
}

/// One step of the pre-refactor MaxGain selection: full rescan of every
/// player's cost and best response. The incremental loop asserts against
/// this each iteration under `cfg(test)` / the `naive-check` feature.
#[cfg(any(test, feature = "naive-check"))]
fn naive_max_gain_mover<G: GameRef>(
    game: &G,
    profile: &Profile,
    config: &CgbaConfig,
) -> Option<(usize, usize)> {
    let mut mover: Option<(usize, usize)> = None;
    let mut best_gap = 0.0;
    for i in 0..game.structure().num_players() {
        let cost = profile.player_cost(game, i);
        let (s, br) = profile.best_response(game, i);
        if (1.0 - config.lambda) * cost > br {
            let gap = cost - br;
            if gap > best_gap {
                best_gap = gap;
                mover = Some((i, s));
            }
        }
    }
    mover
}

/// Runs the pre-refactor CGBA(λ) loop from a random initial profile — the
/// equivalence oracle and benchmark baseline. See [`cgba_from_reference`].
///
/// # Panics
///
/// Panics if the game has no players, `λ ∉ [0, 1)`, or the game fails
/// validation.
pub fn cgba_reference<G: GameRef>(game: &G, config: &CgbaConfig, rng: &mut Pcg32) -> CgbaReport {
    let initial = Profile::random(game, rng);
    cgba_from_reference(game, initial, config)
}

/// The pre-refactor `cgba_from` body, verbatim: full validation on entry
/// and a naive O(I·S) rescan per move. Kept as the oracle the incremental
/// path is tested (and benchmarked) against; not used on any hot path.
///
/// # Panics
///
/// Same conditions as [`cgba_reference`].
pub fn cgba_from_reference<G: GameRef>(
    game: &G,
    initial: Profile,
    config: &CgbaConfig,
) -> CgbaReport {
    let n = game.structure().num_players();
    assert!(n > 0, "game has no players");
    assert!((0.0..1.0).contains(&config.lambda), "lambda must be in [0, 1)");
    validate_parts(game.structure(), game.weights()).expect("game must validate before solving");

    let mut profile = initial;
    let initial_cost = profile.total_cost(game);
    let mut iterations = 0;
    let mut converged = false;
    let mut rr_cursor = 0usize;

    while iterations < config.max_iterations {
        // Find the mover per the scheduling rule.
        let mut mover: Option<(usize, usize)> = None; // (player, strategy)
        match config.scheduling {
            SchedulingRule::MaxGain => {
                let mut best_gap = 0.0;
                for i in 0..n {
                    let cost = profile.player_cost(game, i);
                    let (s, br) = profile.best_response(game, i);
                    if (1.0 - config.lambda) * cost > br {
                        let gap = cost - br;
                        if gap > best_gap {
                            best_gap = gap;
                            mover = Some((i, s));
                        }
                    }
                }
            }
            SchedulingRule::RoundRobin => {
                for step in 0..n {
                    let i = (rr_cursor + step) % n;
                    let cost = profile.player_cost(game, i);
                    let (s, br) = profile.best_response(game, i);
                    if (1.0 - config.lambda) * cost > br {
                        mover = Some((i, s));
                        rr_cursor = (i + 1) % n;
                        break;
                    }
                }
            }
        }
        match mover {
            Some((i, s)) => {
                profile.switch(game, i, s);
                iterations += 1;
            }
            None => {
                converged = true;
                break;
            }
        }
    }

    let total_cost = profile.total_cost(game);
    CgbaReport { profile, total_cost, initial_cost, iterations, converged }
}

/// The [`cgba_from_reference`] loop with two fault-tolerance hooks: a
/// [`StrategyFilter`] restricting each player's best-response scan to
/// allowed strategies, and a `should_stop` predicate polled once per
/// iteration (the anytime-deadline hook — returning `true` breaks out with
/// `converged == false` and the best-so-far profile).
///
/// With an all-allowing filter and a never-stopping predicate this is
/// bit-identical to [`cgba_from_reference`] from the same initial profile:
/// same scan order, same float expressions, same mover selection
/// (property-tested in `tests/masking.rs`). Players the filter leaves with
/// *no* allowed strategy never move; callers must seed `initial` with those
/// players already on a deliberate (best-effort) strategy.
///
/// # Panics
///
/// Same conditions as [`cgba_reference`].
pub fn cgba_from_filtered<G: GameRef>(
    game: &G,
    initial: Profile,
    config: &CgbaConfig,
    filter: &StrategyFilter,
    mut should_stop: impl FnMut() -> bool,
) -> CgbaReport {
    let n = game.structure().num_players();
    assert!(n > 0, "game has no players");
    assert!((0.0..1.0).contains(&config.lambda), "lambda must be in [0, 1)");
    validate_parts(game.structure(), game.weights()).expect("game must validate before solving");

    let mut profile = initial;
    let initial_cost = profile.total_cost(game);
    let mut iterations = 0;
    let mut converged = false;
    let mut rr_cursor = 0usize;

    while iterations < config.max_iterations {
        if should_stop() {
            break;
        }
        let mut mover: Option<(usize, usize)> = None; // (player, strategy)
        match config.scheduling {
            SchedulingRule::MaxGain => {
                let mut best_gap = 0.0;
                for i in 0..n {
                    let cost = profile.player_cost(game, i);
                    let Some((s, br)) = profile.best_response_filtered(game, i, filter) else {
                        continue;
                    };
                    if (1.0 - config.lambda) * cost > br {
                        let gap = cost - br;
                        if gap > best_gap {
                            best_gap = gap;
                            mover = Some((i, s));
                        }
                    }
                }
            }
            SchedulingRule::RoundRobin => {
                for step in 0..n {
                    let i = (rr_cursor + step) % n;
                    let cost = profile.player_cost(game, i);
                    let Some((s, br)) = profile.best_response_filtered(game, i, filter) else {
                        continue;
                    };
                    if (1.0 - config.lambda) * cost > br {
                        mover = Some((i, s));
                        rr_cursor = (i + 1) % n;
                        break;
                    }
                }
            }
        }
        match mover {
            Some((i, s)) => {
                profile.switch(game, i, s);
                iterations += 1;
            }
            None => {
                converged = true;
                break;
            }
        }
    }

    let total_cost = profile.total_cost(game);
    CgbaReport { profile, total_cost, initial_cost, iterations, converged }
}

/// Exhaustively computes the social optimum of a *small* game.
///
/// Returns the optimal choices and cost. The profile space must not exceed
/// `max_profiles` (guard against accidental exponential blowups).
///
/// # Errors
///
/// Returns the actual profile-space size when it exceeds `max_profiles`.
///
/// # Examples
///
/// ```
/// use eotora_game::{brute_force_optimum, CongestionGame};
///
/// let mut g = CongestionGame::new(vec![1.0, 1.0]);
/// g.add_player(vec![vec![(0, 1.0)], vec![(1, 1.0)]]);
/// g.add_player(vec![vec![(0, 1.0)], vec![(1, 1.0)]]);
/// let (choices, cost) = brute_force_optimum(&g, 1_000_000).unwrap();
/// assert_eq!(cost, 2.0); // spread across the two resources
/// assert_ne!(choices[0], choices[1]);
/// ```
pub fn brute_force_optimum<G: GameRef>(
    game: &G,
    max_profiles: u128,
) -> Result<(Vec<usize>, f64), u128> {
    let structure = game.structure();
    let mut space: u128 = 1;
    for i in 0..structure.num_players() {
        space = space.saturating_mul(structure.strategies(i).len() as u128);
        if space > max_profiles {
            return Err(space);
        }
    }
    let n = structure.num_players();
    let mut choices = vec![0usize; n];
    let mut best_choices = choices.clone();
    let mut best = f64::INFINITY;
    loop {
        let cost = Profile::from_choices(game, choices.clone()).total_cost(game);
        if cost < best {
            best = cost;
            best_choices = choices.clone();
        }
        // Odometer increment over the mixed-radix strategy space.
        let mut i = 0;
        loop {
            if i == n {
                return Ok((best_choices, best));
            }
            choices[i] += 1;
            if choices[i] < structure.strategies(i).len() {
                break;
            }
            choices[i] = 0;
            i += 1;
        }
    }
}

/// Empirical price-of-anarchy scan: runs CGBA(0) from `samples` random
/// starts and compares the worst equilibrium found against the brute-force
/// optimum. For weighted congestion games with affine costs the true PoA is
/// at most 2.62 (the constant in the paper's Theorem 2).
///
/// # Errors
///
/// Propagates [`brute_force_optimum`]'s size guard.
pub fn empirical_price_of_anarchy<G: GameRef>(
    game: &G,
    samples: usize,
    max_profiles: u128,
    rng: &mut Pcg32,
) -> Result<f64, u128> {
    let (_, opt) = brute_force_optimum(game, max_profiles)?;
    let mut worst: f64 = 1.0;
    for _ in 0..samples {
        let report = cgba(game, &CgbaConfig::default(), rng);
        if opt > 0.0 {
            worst = worst.max(report.total_cost / opt);
        }
    }
    Ok(worst)
}
