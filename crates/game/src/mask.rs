//! Per-(player, strategy) availability filters for fault masking.
//!
//! A [`StrategyFilter`] marks individual strategies as allowed or
//! disallowed *without changing the game's shape*: the
//! [`GameStructure`](crate::GameStructure) (and therefore every cache keyed
//! on it) is untouched, and filtered solvers simply skip disallowed entries
//! when scanning best responses. This is how failure masking composes with
//! the structure/weights split — a down server or severed link disallows
//! every strategy touching its resources for one slot, and lifting the
//! filter restores bit-identical behavior to the never-masked path.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::{GameStructure, ShardSpec};

/// An allow/deny mark per (player, strategy), stored flat.
///
/// Construct with [`StrategyFilter::allow_all`] or
/// [`StrategyFilter::from_masked_resources`]; refine with
/// [`StrategyFilter::disallow`]. A filter is only meaningful for the
/// structure it was built from (same players, same strategy counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyFilter {
    /// Per-player start offset into `allowed`; `offsets.len() == players + 1`.
    offsets: Vec<usize>,
    allowed: Vec<bool>,
    disallowed_total: usize,
}

impl StrategyFilter {
    /// A filter allowing every strategy of every player.
    pub fn allow_all(structure: &GameStructure) -> Self {
        let mut offsets = Vec::with_capacity(structure.num_players() + 1);
        let mut total = 0;
        offsets.push(0);
        for i in 0..structure.num_players() {
            total += structure.strategies(i).len();
            offsets.push(total);
        }
        Self { offsets, allowed: vec![true; total], disallowed_total: 0 }
    }

    /// A filter disallowing every strategy that touches a masked resource.
    ///
    /// `masked[r]` marks resource `r` unavailable; a strategy is disallowed
    /// when *any* of its `(resource, weight)` pairs lands on a masked
    /// resource. Resources beyond `masked.len()` are treated as available.
    pub fn from_masked_resources(structure: &GameStructure, masked: &[bool]) -> Self {
        let mut filter = Self::allow_all(structure);
        for i in 0..structure.num_players() {
            for (s, strategy) in structure.strategies(i).iter().enumerate() {
                if strategy.iter().any(|&(r, _)| masked.get(r).copied().unwrap_or(false)) {
                    filter.disallow(i, s);
                }
            }
        }
        filter
    }

    /// Marks strategy `s` of player `i` disallowed. Idempotent.
    pub fn disallow(&mut self, i: usize, s: usize) {
        let idx = self.offsets[i] + s;
        debug_assert!(idx < self.offsets[i + 1], "strategy index out of range");
        if self.allowed[idx] {
            self.allowed[idx] = false;
            self.disallowed_total += 1;
        }
    }

    /// Whether strategy `s` of player `i` is allowed.
    #[inline]
    pub fn is_allowed(&self, i: usize, s: usize) -> bool {
        self.allowed[self.offsets[i] + s]
    }

    /// Whether the filter disallows nothing (the fast-path check: an
    /// all-allowed filter must not change any solver's behavior).
    pub fn all_allowed(&self) -> bool {
        self.disallowed_total == 0
    }

    /// Total number of disallowed (player, strategy) entries.
    pub fn disallowed_count(&self) -> usize {
        self.disallowed_total
    }

    /// Number of strategies still allowed for player `i`.
    pub fn allowed_count(&self, i: usize) -> usize {
        self.allowed[self.offsets[i]..self.offsets[i + 1]].iter().filter(|&&a| a).count()
    }

    /// The first allowed strategy index for player `i`, if any.
    pub fn first_allowed(&self, i: usize) -> Option<usize> {
        self.allowed[self.offsets[i]..self.offsets[i + 1]].iter().position(|&a| a)
    }

    /// Re-allows every strategy of player `i` — the best-effort escape hatch
    /// when masking would leave a player with an empty strategy set (the
    /// game model has no "do nothing" strategy, so such a player must be
    /// allowed to use nominally-masked resources rather than have no move).
    pub fn allow_all_for_player(&mut self, i: usize) {
        for idx in self.offsets[i]..self.offsets[i + 1] {
            if !self.allowed[idx] {
                self.allowed[idx] = true;
                self.disallowed_total -= 1;
            }
        }
    }

    /// Number of players the filter covers.
    pub fn num_players(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Projects a global filter onto one shard's local view.
    ///
    /// `local` is the structure [`ShardSpec::build_local`] produced for
    /// `shard`. The result allocates only shard-sized storage — masking
    /// cost scales with the shard, not the global game — and allows local
    /// strategy `(li, ls)` exactly when the global filter allows its global
    /// image, so a filtered local scan visits the same allowed set in the
    /// same order as the restriction of the global scan.
    pub fn project(&self, shard: &ShardSpec, local: &GameStructure) -> Self {
        let mut out = Self::allow_all(local);
        if self.all_allowed() {
            return out;
        }
        for (li, &gi) in shard.players().iter().enumerate() {
            for ls in 0..local.strategies(li).len() {
                if !self.is_allowed(gi, shard.global_strategy(li, ls)) {
                    out.disallow(li, ls);
                }
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::CongestionGame;

    fn two_player_game() -> CongestionGame {
        let mut g = CongestionGame::new(vec![1.0, 1.0, 1.0]);
        g.add_player(vec![vec![(0, 1.0)], vec![(1, 1.0)], vec![(2, 1.0)]]);
        g.add_player(vec![vec![(0, 1.0), (1, 1.0)], vec![(2, 1.0)]]);
        g
    }

    #[test]
    fn allow_all_allows_everything() {
        let g = two_player_game();
        let f = StrategyFilter::allow_all(g.structure());
        assert!(f.all_allowed());
        assert_eq!(f.num_players(), 2);
        assert_eq!(f.allowed_count(0), 3);
        assert_eq!(f.allowed_count(1), 2);
        assert_eq!(f.disallowed_count(), 0);
    }

    #[test]
    fn masked_resource_disallows_touching_strategies() {
        let g = two_player_game();
        let f = StrategyFilter::from_masked_resources(g.structure(), &[false, true, false]);
        // Player 0: strategy 1 touches resource 1.
        assert!(f.is_allowed(0, 0));
        assert!(!f.is_allowed(0, 1));
        assert!(f.is_allowed(0, 2));
        // Player 1: strategy 0 touches resources {0, 1}.
        assert!(!f.is_allowed(1, 0));
        assert!(f.is_allowed(1, 1));
        assert_eq!(f.disallowed_count(), 2);
        assert_eq!(f.first_allowed(0), Some(0));
        assert_eq!(f.first_allowed(1), Some(1));
    }

    #[test]
    fn disallow_is_idempotent_and_reversible_per_player() {
        let g = two_player_game();
        let mut f = StrategyFilter::allow_all(g.structure());
        f.disallow(0, 1);
        f.disallow(0, 1);
        assert_eq!(f.disallowed_count(), 1);
        assert!(!f.all_allowed());
        f.allow_all_for_player(0);
        assert!(f.all_allowed());
    }

    #[test]
    fn fully_masked_player_has_no_first_allowed() {
        let g = two_player_game();
        let f = StrategyFilter::from_masked_resources(g.structure(), &[true, true, true]);
        assert_eq!(f.first_allowed(0), None);
        assert_eq!(f.allowed_count(0), 0);
    }

    #[test]
    fn projection_is_shard_local_and_faithful() {
        // Two disconnected 3-resource blocks; mask one resource of block 1.
        let mut g = CongestionGame::new(vec![1.0; 6]);
        g.add_player(vec![vec![(0, 1.0), (2, 1.0)], vec![(1, 1.0), (2, 1.0)]]);
        g.add_player(vec![vec![(3, 1.0), (5, 1.0)], vec![(4, 1.0), (5, 1.0)]]);
        let plan = crate::ShardPlan::compute(g.structure(), 0);
        let global =
            StrategyFilter::from_masked_resources(g.structure(), &[false, false, false, true]);

        let spec = plan.shard(1);
        let (local, _) = spec.build_local(g.structure(), g.weights());
        let projected = global.project(spec, &local);
        // Shard 1 holds only player 1 → one player, two strategies.
        assert_eq!(projected.num_players(), 1);
        assert!(!projected.is_allowed(0, 0)); // global (1, 0) touches r3
        assert!(projected.is_allowed(0, 1));
        assert_eq!(projected.disallowed_count(), 1);

        // The untouched shard projects to an all-allowing filter.
        let spec0 = plan.shard(0);
        let (local0, _) = spec0.build_local(g.structure(), g.weights());
        assert!(global.project(spec0, &local0).all_allowed());
    }

    #[test]
    fn short_mask_treats_tail_resources_as_available() {
        let g = two_player_game();
        let f = StrategyFilter::from_masked_resources(g.structure(), &[true]);
        assert!(!f.is_allowed(0, 0));
        assert!(f.is_allowed(0, 1));
        assert!(f.is_allowed(0, 2));
        assert!(!f.is_allowed(1, 0));
        assert!(f.is_allowed(1, 1));
    }
}
