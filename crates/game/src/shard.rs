//! Sharding a congestion game into independent subgames.
//!
//! Two strategies of *different* players interact only when they share a
//! resource, so the game graph — resources as nodes, strategies as
//! hyperedges — decomposes into connected components. On MEC topologies
//! whose base stations reach disjoint server clusters this makes the P2-A
//! game block-diagonal: each block can be solved by an independent CGBA run
//! and the results merged. [`ShardPlan`] computes the blocks with a
//! union-find pass over the `touching` index, remaps each block into a
//! dense, cache-linear local [`GameStructure`]/[`ResourceWeights`] pair
//! (resources renumbered `0..`, players in ascending global order so the
//! MaxGain tie-break is preserved), and provides the choice split/merge
//! maps.
//!
//! Players whose strategy set spans several components (*cut players*, e.g.
//! devices covered by two BS islands) are homed to the component holding
//! most of their strategies; their out-of-home strategies are dropped from
//! the local view and a bounded global reconciliation pass after the merge
//! restores their best response (see `eotora-core::sharded`). When cut
//! players exceed [`MAX_CUT_FRACTION`] of the population the cut is *not*
//! weak — sharding would mutilate too many strategy sets — so the plan
//! collapses to a single shard and the solve degrades gracefully to the
//! sequential path.

use eotora_util::UnionFind;

use crate::{GameStructure, ResourceWeights, Strategy};

/// Fraction of cut players above which [`ShardPlan::compute`] refuses to
/// cut and returns a single-shard plan. A cut is only worth taking when it
/// is *weak* — nearly all players live entirely inside one component.
pub const MAX_CUT_FRACTION: f64 = 0.25;

/// A fixed-capacity bitset over `0..len` backed by `u64` words — the
/// branch-light membership structure used for cut-player marking and
/// shard-local masks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An all-zeros bitset of capacity `len`.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// One shard of a [`ShardPlan`]: which global players and resources it
/// owns, plus the strategy maps for its cut players.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Global player ids, ascending — local player `li` is `players[li]`.
    players: Vec<usize>,
    /// Global resource ids, ascending — local resource `lr` is
    /// `resources[lr]`.
    resources: Vec<usize>,
    /// Per local player: local strategy index → global strategy index.
    /// Empty means the identity (the player is not cut — every global
    /// strategy survives in the local view).
    strategy_maps: Vec<Vec<u32>>,
}

impl ShardSpec {
    /// Global player ids owned by this shard, ascending.
    pub fn players(&self) -> &[usize] {
        &self.players
    }

    /// Global resource ids owned by this shard, ascending.
    pub fn resources(&self) -> &[usize] {
        &self.resources
    }

    /// Maps local player `li`'s local strategy `ls` to its global strategy
    /// index.
    #[inline]
    pub fn global_strategy(&self, li: usize, ls: usize) -> usize {
        let map = &self.strategy_maps[li];
        if map.is_empty() {
            ls
        } else {
            map[ls] as usize
        }
    }

    /// The local-strategy → global-strategy map of local player `li`;
    /// empty when the identity.
    pub fn strategy_map(&self, li: usize) -> &[u32] {
        &self.strategy_maps[li]
    }

    /// Builds the dense local game: resources renumbered to `0..`, players
    /// in ascending global order, strategy resource order preserved — so
    /// local cost sums run over bit-identical float sequences and the
    /// MaxGain tie-break (lowest player index) matches the global order.
    pub fn build_local(
        &self,
        structure: &GameStructure,
        weights: &ResourceWeights,
    ) -> (GameStructure, ResourceWeights) {
        let mut local_of = vec![u32::MAX; structure.num_resources()];
        for (lr, &gr) in self.resources.iter().enumerate() {
            local_of[gr] = lr as u32;
        }
        let players: Vec<Vec<Strategy>> = self
            .players
            .iter()
            .enumerate()
            .map(|(li, &gi)| {
                let all = structure.strategies(gi);
                let map = &self.strategy_maps[li];
                let kept: Box<dyn Iterator<Item = &Strategy>> = if map.is_empty() {
                    Box::new(all.iter())
                } else {
                    Box::new(map.iter().map(|&gs| &all[gs as usize]))
                };
                kept.map(|strategy| {
                    strategy.iter().map(|&(r, w)| (local_of[r] as usize, w)).collect()
                })
                .collect()
            })
            .collect();
        let local_structure = GameStructure::new(self.resources.len(), players)
            .expect("local view of a valid game must validate");
        let local_weights =
            ResourceWeights::from_raw(self.resources.iter().map(|&gr| weights.get(gr)).collect());
        (local_structure, local_weights)
    }

    /// Refreshes a previously built local game in place from the current
    /// global weights: resource weights `m_r` (BDMA round updates) and
    /// per-player strategy weights `p_{i,r}` (per-slot state updates). The
    /// shape is untouched, so local `CgbaScratch` caches stay valid.
    ///
    /// # Panics
    ///
    /// Panics if `local` was built from a structurally different game.
    pub fn sync_local(
        &self,
        structure: &GameStructure,
        weights: &ResourceWeights,
        local_structure: &mut GameStructure,
        local_weights: &mut ResourceWeights,
    ) {
        for (lr, &gr) in self.resources.iter().enumerate() {
            local_weights.set(lr, weights.get(gr));
        }
        for (li, &gi) in self.players.iter().enumerate() {
            let all = structure.strategies(gi);
            for ls in 0..local_structure.strategies(li).len() {
                let gs = self.global_strategy(li, ls);
                let global_strategy = &all[gs];
                let local_strategy = &mut local_structure.players[li][ls];
                assert_eq!(local_strategy.len(), global_strategy.len(), "shape drift");
                for (slot, &(_, w)) in local_strategy.iter_mut().zip(global_strategy) {
                    slot.1 = w;
                }
            }
        }
    }
}

/// The decomposition of a [`GameStructure`] into independent subgames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<ShardSpec>,
    /// Per global player: owning shard.
    player_shard: Vec<u32>,
    /// Per global player: index within its shard.
    player_local: Vec<u32>,
    cut_players: Vec<usize>,
    cut_bits: BitSet,
    num_components: usize,
    fingerprint: (usize, usize, usize),
}

impl ShardPlan {
    /// Computes the plan for `structure`, packing components into at most
    /// `max_shards` shards (`0` = one shard per component).
    ///
    /// Resources are connected when they co-occur in any strategy; each
    /// connected component is a candidate shard. Cut players are homed to
    /// the component holding most of their strategies (tie → smallest
    /// component id). The plan collapses to a single shard when the game
    /// has one component, when `max_shards == 1`, or when more than
    /// [`MAX_CUT_FRACTION`] of players are cut (the cut is not weak).
    pub fn compute(structure: &GameStructure, max_shards: usize) -> Self {
        let num_players = structure.num_players();
        let num_resources = structure.num_resources();

        let mut uf = UnionFind::new(num_resources);
        for i in 0..num_players {
            for strategy in structure.strategies(i) {
                for pair in strategy.windows(2) {
                    uf.union(pair[0].0, pair[1].0);
                }
            }
        }
        let comp_of = uf.component_ids();
        let num_components = uf.components();

        // Home every player; collect cut players.
        let mut player_home = vec![0usize; num_players];
        let mut cut_players = Vec::new();
        let mut cut_bits = BitSet::new(num_players);
        let mut votes: Vec<(usize, usize)> = Vec::new(); // (component, count)
        for (i, home_slot) in player_home.iter_mut().enumerate() {
            votes.clear();
            for strategy in structure.strategies(i) {
                let Some(&(r, _)) = strategy.first() else { continue };
                let c = comp_of[r];
                match votes.iter_mut().find(|(vc, _)| *vc == c) {
                    Some((_, n)) => *n += 1,
                    None => votes.push((c, 1)),
                }
            }
            votes.sort_unstable();
            let home =
                votes.iter().copied().max_by_key(|&(c, n)| (n, usize::MAX - c)).map(|(c, _)| c);
            *home_slot = home.unwrap_or(0);
            if votes.len() > 1 {
                cut_players.push(i);
                cut_bits.insert(i);
            }
        }

        let fingerprint = Self::shape_fingerprint(structure);
        let weak_cut = (cut_players.len() as f64) <= MAX_CUT_FRACTION * num_players as f64;
        if num_components <= 1 || max_shards == 1 || !weak_cut {
            return Self::trivial(structure, num_components, fingerprint);
        }

        // Players and resources per component (only player-bearing
        // components become shards; unused resources attach to whichever
        // component union-find put them in and are dropped with it).
        let mut comp_players = vec![0usize; num_components];
        for &c in &player_home {
            comp_players[c] += 1;
        }
        let live: Vec<usize> = (0..num_components).filter(|&c| comp_players[c] > 0).collect();
        if live.len() <= 1 {
            return Self::trivial(structure, num_components, fingerprint);
        }

        // Greedy balanced bin-packing of components into shards: heaviest
        // component first into the lightest bin (ties → lowest index) — a
        // deterministic assignment independent of worker count.
        let bins = if max_shards == 0 { live.len() } else { max_shards.min(live.len()) };
        let mut order = live.clone();
        order.sort_unstable_by_key(|&c| (usize::MAX - comp_players[c], c));
        let mut comp_bin = vec![usize::MAX; num_components];
        let mut bin_load = vec![0usize; bins];
        for &c in &order {
            let lightest = bin_load
                .iter()
                .enumerate()
                .min_by_key(|&(b, &load)| (load, b))
                .map(|(b, _)| b)
                .unwrap_or(0);
            comp_bin[c] = lightest;
            bin_load[lightest] += comp_players[c];
        }

        let mut shards: Vec<ShardSpec> = (0..bins)
            .map(|_| ShardSpec {
                players: Vec::new(),
                resources: Vec::new(),
                strategy_maps: Vec::new(),
            })
            .collect();
        for (r, &c) in comp_of.iter().enumerate() {
            if comp_bin[c] != usize::MAX {
                shards[comp_bin[c]].resources.push(r);
            }
        }
        let mut player_shard = vec![0u32; num_players];
        let mut player_local = vec![0u32; num_players];
        for i in 0..num_players {
            let home = player_home[i];
            let bin = comp_bin[home];
            let shard = &mut shards[bin];
            player_shard[i] = bin as u32;
            player_local[i] = shard.players.len() as u32;
            shard.players.push(i);
            let map = if cut_bits.contains(i) {
                structure
                    .strategies(i)
                    .iter()
                    .enumerate()
                    .filter(|(_, strategy)| {
                        strategy.first().is_none_or(|&(r, _)| comp_of[r] == home)
                    })
                    .map(|(s, _)| s as u32)
                    .collect()
            } else {
                Vec::new()
            };
            shard.strategy_maps.push(map);
        }

        Self {
            shards,
            player_shard,
            player_local,
            cut_players,
            cut_bits,
            num_components,
            fingerprint,
        }
    }

    /// The single-shard fallback: identity mapping over the whole game.
    fn trivial(
        structure: &GameStructure,
        num_components: usize,
        fingerprint: (usize, usize, usize),
    ) -> Self {
        let num_players = structure.num_players();
        Self {
            shards: vec![ShardSpec {
                players: (0..num_players).collect(),
                resources: (0..structure.num_resources()).collect(),
                strategy_maps: vec![Vec::new(); num_players],
            }],
            player_shard: vec![0; num_players],
            player_local: (0..num_players as u32).collect(),
            cut_players: Vec::new(),
            cut_bits: BitSet::new(num_players),
            num_components,
            fingerprint,
        }
    }

    /// The shape key a plan is valid for: `(players, resources, total
    /// strategy count)`. Per-slot weight updates keep the shape; adding or
    /// removing players/strategies changes it and invalidates the plan.
    pub fn shape_fingerprint(structure: &GameStructure) -> (usize, usize, usize) {
        let total: usize =
            (0..structure.num_players()).map(|i| structure.strategies(i).len()).sum();
        (structure.num_players(), structure.num_resources(), total)
    }

    /// Whether this plan was computed for a structure of the same shape.
    pub fn matches(&self, structure: &GameStructure) -> bool {
        self.fingerprint == Self::shape_fingerprint(structure)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in deterministic merge order.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// Shard `s`.
    pub fn shard(&self, s: usize) -> &ShardSpec {
        &self.shards[s]
    }

    /// Number of connected resource components found (before bin-packing
    /// and independent of the cut-fraction fallback).
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Whether the plan is the single-shard fallback.
    pub fn is_trivial(&self) -> bool {
        self.shards.len() == 1
    }

    /// Global ids of players whose strategies span several components,
    /// ascending. Empty on separable games — there the sharded solve is
    /// decision-identical to the sequential one.
    pub fn cut_players(&self) -> &[usize] {
        &self.cut_players
    }

    /// Whether global player `i` is a cut player.
    #[inline]
    pub fn is_cut(&self, i: usize) -> bool {
        self.cut_bits.contains(i)
    }

    /// Player count of the most populated shard.
    pub fn largest_shard_players(&self) -> usize {
        self.shards.iter().map(|s| s.players.len()).max().unwrap_or(0)
    }

    /// Splits global per-player choices into per-shard local choice
    /// vectors. A cut player's out-of-home global choice has no local
    /// image; it falls back to local strategy 0 (reconciliation restores
    /// its best response after the merge).
    pub fn split_choices(&self, global: &[usize]) -> Vec<Vec<usize>> {
        let mut locals: Vec<Vec<usize>> =
            self.shards.iter().map(|s| Vec::with_capacity(s.players.len())).collect();
        for (shard, spec) in self.shards.iter().enumerate() {
            let out = &mut locals[shard];
            for (li, &gi) in spec.players.iter().enumerate() {
                let map = &spec.strategy_maps[li];
                let choice = if map.is_empty() {
                    global[gi]
                } else {
                    map.binary_search(&(global[gi] as u32)).unwrap_or(0)
                };
                out.push(choice);
            }
        }
        locals
    }

    /// Merges per-shard local choices back into `out` (global indexing).
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree with the plan.
    pub fn merge_choices(&self, locals: &[Vec<usize>], out: &mut [usize]) {
        assert_eq!(locals.len(), self.shards.len(), "one choice vector per shard");
        assert_eq!(out.len(), self.player_shard.len(), "one output slot per player");
        for (spec, local) in self.shards.iter().zip(locals) {
            assert_eq!(local.len(), spec.players.len(), "one choice per shard player");
            for (li, &gi) in spec.players.iter().enumerate() {
                out[gi] = spec.global_strategy(li, local[li]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CongestionGame, SplitGame};

    /// Two disconnected blocks of 2 players × 3 resources each (strategies
    /// bundle a private resource with the block's shared one, like the
    /// paper's server + link bundles), plus an optional cut player whose
    /// strategies span both blocks.
    fn block_game(with_cut: bool) -> CongestionGame {
        let mut g = CongestionGame::new(vec![1.0; 6]);
        for block in 0..2 {
            let (a, b, c) = (3 * block, 3 * block + 1, 3 * block + 2);
            g.add_player(vec![vec![(a, 1.0), (c, 0.5)], vec![(b, 1.0), (c, 0.5)]]);
            g.add_player(vec![vec![(a, 2.0), (c, 1.0)], vec![(b, 2.0), (c, 1.0)]]);
        }
        if with_cut {
            g.add_player(vec![
                vec![(0, 1.0), (2, 0.5)],
                vec![(1, 1.0), (2, 0.5)],
                vec![(3, 1.0), (5, 0.5)],
            ]);
        }
        g.validate().unwrap();
        g
    }

    #[test]
    fn bitset_basics() {
        let mut b = BitSet::new(130);
        assert!(!b.is_empty() && b.len() == 130);
        for i in [0, 63, 64, 129] {
            b.insert(i);
        }
        assert_eq!(b.count_ones(), 4);
        assert!(b.contains(64) && !b.contains(65) && !b.contains(500));
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        b.remove(64);
        assert!(!b.contains(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn separable_game_splits_into_blocks() {
        let g = block_game(false);
        let plan = ShardPlan::compute(g.structure(), 0);
        assert_eq!(plan.num_shards(), 2);
        assert!(plan.cut_players().is_empty());
        assert_eq!(plan.shard(0).players(), &[0, 1]);
        assert_eq!(plan.shard(1).players(), &[2, 3]);
        assert_eq!(plan.shard(0).resources(), &[0, 1, 2]);
        assert_eq!(plan.shard(1).resources(), &[3, 4, 5]);
        assert_eq!(plan.largest_shard_players(), 2);
        assert!(plan.matches(g.structure()));
    }

    #[test]
    fn cut_player_is_homed_by_strategy_majority() {
        let g = block_game(true);
        let plan = ShardPlan::compute(g.structure(), 0);
        assert_eq!(plan.num_shards(), 2);
        assert_eq!(plan.cut_players(), &[4]);
        assert!(plan.is_cut(4) && !plan.is_cut(0));
        // Two of three strategies live in block 0 → homed there, with the
        // block-1 strategy dropped from the local view.
        assert_eq!(plan.shard(0).players(), &[0, 1, 4]);
        assert_eq!(plan.shard(0).strategy_map(2), &[0, 1]);
        assert_eq!(plan.shard(0).global_strategy(2, 1), 1);
    }

    #[test]
    fn heavy_cut_collapses_to_single_shard() {
        // Every player straddles both resource blocks → cut fraction 1.0.
        let mut g = CongestionGame::new(vec![1.0; 2]);
        for _ in 0..4 {
            g.add_player(vec![vec![(0, 1.0)], vec![(1, 1.0)]]);
        }
        // Two singleton components but all players cut: not a weak cut.
        let plan = ShardPlan::compute(g.structure(), 0);
        assert!(plan.is_trivial());
        assert_eq!(plan.num_components(), 2);
    }

    #[test]
    fn max_shards_bin_packs_components() {
        // Four 1-player blocks packed into 2 shards → 2 players each.
        let mut g = CongestionGame::new(vec![1.0; 12]);
        for block in 0..4 {
            let (a, b, c) = (3 * block, 3 * block + 1, 3 * block + 2);
            g.add_player(vec![vec![(a, 1.0), (c, 0.5)], vec![(b, 1.0), (c, 0.5)]]);
        }
        let plan = ShardPlan::compute(g.structure(), 2);
        assert_eq!(plan.num_shards(), 2);
        assert_eq!(plan.num_components(), 4);
        let sizes: Vec<usize> = plan.shards().iter().map(|s| s.players().len()).collect();
        assert_eq!(sizes, vec![2, 2]);
        // Every player appears in exactly one shard.
        let mut seen = vec![0usize; 4];
        for s in plan.shards() {
            for &p in s.players() {
                seen[p] += 1;
            }
        }
        assert_eq!(seen, vec![1; 4]);
    }

    #[test]
    fn local_game_costs_match_global() {
        let g = block_game(false);
        let plan = ShardPlan::compute(g.structure(), 0);
        let global_choices = vec![0, 1, 1, 0];
        let global = crate::Profile::from_choices(&g, global_choices.clone());
        let locals = plan.split_choices(&global_choices);
        let mut total = 0.0;
        for (spec, local_choices) in plan.shards().iter().zip(&locals) {
            let (ls, lw) = spec.build_local(g.structure(), g.weights());
            let game = SplitGame { structure: &ls, weights: &lw };
            let p = crate::Profile::from_choices(&game, local_choices.clone());
            total += p.total_cost(&game);
        }
        assert!((total - global.total_cost(&g)).abs() < 1e-12);
    }

    #[test]
    fn split_then_merge_is_identity_on_separable_games() {
        let g = block_game(false);
        let plan = ShardPlan::compute(g.structure(), 0);
        for choices in [[0, 0, 0, 0], [1, 0, 1, 0], [1, 1, 1, 1]] {
            let locals = plan.split_choices(&choices);
            let mut out = vec![usize::MAX; 4];
            plan.merge_choices(&locals, &mut out);
            assert_eq!(out, choices);
        }
    }

    #[test]
    fn sync_local_tracks_weight_updates() {
        let mut g = block_game(false);
        let plan = ShardPlan::compute(g.structure(), 0);
        let spec = plan.shard(1);
        let (mut ls, mut lw) = spec.build_local(g.structure(), g.weights());
        g.set_resource_weight(3, 7.0);
        g.set_strategy_weights(3, 0, &[9.0, 4.0]);
        spec.sync_local(g.structure(), g.weights(), &mut ls, &mut lw);
        // Global resource 3 is local resource 0 of shard 1.
        assert_eq!(lw.get(0), 7.0);
        // Global player 3 is local player 1; its strategy 0 bundles global
        // resources (3, 5) → local (0, 2).
        assert_eq!(ls.strategies(1)[0], vec![(0, 9.0), (2, 4.0)]);
    }
}
