//! Property tests for the shard layer (satellites of the sharded slot
//! solve): [`ShardPlan::compute`] always yields a true partition, and on
//! separable games the per-shard CGBA runs are move-for-move identical to
//! the global MaxGain reference — the restriction argument the sharded
//! solver's decision-identity guarantee rests on.

use eotora_game::{
    cgba_from_with_scratch, CgbaConfig, CgbaScratch, CongestionGame, Profile, ShardPlan, SplitGame,
};
use eotora_util::rng::Pcg32;
use proptest::prelude::*;

/// `blocks` disconnected blocks of `res_per_block` resources each, with
/// `players_per_block` players per block added round-robin (so shard-local
/// player order interleaves with global order). Every strategy bundles
/// resources from its own block only — the resource graph has exactly
/// `blocks` connected components.
fn block_game(
    rng: &mut Pcg32,
    blocks: usize,
    players_per_block: usize,
    res_per_block: usize,
) -> CongestionGame {
    let weights: Vec<f64> = (0..blocks * res_per_block).map(|_| rng.uniform_in(0.2, 3.0)).collect();
    let mut game = CongestionGame::new(weights);
    for _ in 0..players_per_block {
        for b in 0..blocks {
            let base = b * res_per_block;
            // Every strategy bundles the block's shared last resource (like
            // the paper's fronthaul link), so the block's used resources
            // form a single connected component and no player is cut.
            let shared = base + res_per_block - 1;
            let num_strats = 2 + rng.below(2);
            let strategies = (0..num_strats)
                .map(|_| {
                    let forced = base + rng.below(res_per_block - 1);
                    let mut strategy = Vec::new();
                    for r in base..shared {
                        if r == forced || rng.below(2) == 0 {
                            strategy.push((r, rng.uniform_in(0.1, 2.0)));
                        }
                    }
                    strategy.push((shared, rng.uniform_in(0.1, 2.0)));
                    strategy
                })
                .collect();
            game.add_player(strategies);
        }
    }
    game.validate().expect("generated game is valid");
    game
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    /// Whatever the topology (separable, cut players, or a refused cut
    /// collapsing to the trivial plan), the plan is a true partition:
    /// every player lands in exactly one shard, no resource lands in two,
    /// shard player lists stay in ascending global order, and every
    /// retained strategy uses only its shard's resources (all of them, via
    /// the identity map, for non-cut players).
    #[test]
    fn plan_is_a_true_partition(
        seed in 0u64..500,
        blocks in 2usize..5,
        players_per_block in 1usize..4,
        cuts in 0usize..3,
    ) {
        let mut rng = Pcg32::seed(seed);
        let mut game = block_game(&mut rng, blocks, players_per_block, 3);
        for c in 0..cuts {
            let left = c % (blocks - 1);
            game.add_player(vec![
                vec![(left * 3, 1.0), (left * 3 + 1, 0.5)],
                vec![((left + 1) * 3, 1.0)],
            ]);
        }
        game.validate().expect("cut-extended game is valid");
        let plan = ShardPlan::compute(game.structure(), 0);

        let mut player_owner = vec![0usize; game.num_players()];
        let mut resource_owner = vec![0usize; game.num_resources()];
        for spec in plan.shards() {
            prop_assert!(spec.players().windows(2).all(|w| w[0] < w[1]));
            for &p in spec.players() {
                player_owner[p] += 1;
            }
            for &r in spec.resources() {
                resource_owner[r] += 1;
            }
        }
        prop_assert!(player_owner.iter().all(|&n| n == 1));
        // Resources never land in two shards; player-less components are
        // dropped from non-trivial plans, so coverage is only exact on the
        // trivial fallback.
        prop_assert!(resource_owner.iter().all(|&n| n <= 1));
        if plan.is_trivial() {
            prop_assert!(resource_owner.iter().all(|&n| n == 1));
        }

        for spec in plan.shards() {
            let in_shard: std::collections::HashSet<usize> =
                spec.resources().iter().copied().collect();
            for (li, &gi) in spec.players().iter().enumerate() {
                let map = spec.strategy_map(li);
                // An empty map is the identity and only non-cut players
                // (whose every strategy survives) may use it.
                let retained: Vec<usize> = if map.is_empty() {
                    prop_assert!(plan.is_trivial() || !plan.is_cut(gi));
                    (0..game.strategies(gi).len()).collect()
                } else {
                    prop_assert!(plan.is_cut(gi));
                    prop_assert!(map.windows(2).all(|w| w[0] < w[1]));
                    map.iter().map(|&s| s as usize).collect()
                };
                prop_assert!(!retained.is_empty());
                for gs in retained {
                    for &(r, _) in &game.strategies(gi)[gs] {
                        prop_assert!(
                            in_shard.contains(&r),
                            "player {} strategy {} uses resource {} outside its shard",
                            gi, gs, r
                        );
                    }
                }
            }
        }
    }

    /// On separable games, running CGBA per shard reproduces the global
    /// MaxGain run exactly: the global mover sequence restricted to a
    /// shard's players equals that shard's own mover sequence, and the
    /// merged converged choices equal the global ones.
    #[test]
    fn per_shard_solve_matches_global_move_for_move(
        seed in 0u64..300,
        blocks in 2usize..5,
        players_per_block in 1usize..4,
    ) {
        let mut rng = Pcg32::seed(seed);
        let game = block_game(&mut rng, blocks, players_per_block, 3);
        let config = CgbaConfig::default();
        let initial: Vec<usize> =
            (0..game.num_players()).map(|i| rng.below(game.strategies(i).len())).collect();

        let mut global_scratch = CgbaScratch::default();
        let report = cgba_from_with_scratch(
            &game,
            Profile::from_choices(&game, initial.clone()),
            &config,
            &mut global_scratch,
        );
        prop_assert!(report.converged);

        let plan = ShardPlan::compute(game.structure(), 0);
        prop_assert_eq!(plan.num_shards(), blocks);
        prop_assert!(plan.cut_players().is_empty());

        let locals = plan.split_choices(&initial);
        let mut merged = vec![usize::MAX; game.num_players()];
        let mut shard_moves: Vec<Vec<(usize, usize)>> = Vec::new();
        for (s, spec) in plan.shards().iter().enumerate() {
            let (ls, lw) = spec.build_local(game.structure(), game.weights());
            let local = SplitGame { structure: &ls, weights: &lw };
            let mut scratch = CgbaScratch::default();
            let r = cgba_from_with_scratch(
                &local,
                Profile::from_choices(&local, locals[s].clone()),
                &config,
                &mut scratch,
            );
            prop_assert!(r.converged);
            shard_moves.push(
                scratch
                    .moves()
                    .iter()
                    .map(|&(li, lsi)| (spec.players()[li], spec.global_strategy(li, lsi)))
                    .collect(),
            );
            for (li, &gi) in spec.players().iter().enumerate() {
                merged[gi] = spec.global_strategy(li, r.profile.choices()[li]);
            }
        }

        for (s, spec) in plan.shards().iter().enumerate() {
            let members: std::collections::HashSet<usize> =
                spec.players().iter().copied().collect();
            let restricted: Vec<(usize, usize)> = global_scratch
                .moves()
                .iter()
                .copied()
                .filter(|&(i, _)| members.contains(&i))
                .collect();
            prop_assert_eq!(&restricted, &shard_moves[s], "shard {} mover sequence diverged", s);
        }
        prop_assert_eq!(merged, report.profile.choices().to_vec());
    }
}
