//! Property test: the incremental dirty-set MaxGain scheduler picks the
//! same mover sequence and final profile as the naive full rescan, across
//! random games and random in-place weight updates (satellite of the
//! zero-rebuild engine refactor).

use eotora_game::{
    cgba_from_with_scratch, CgbaConfig, CgbaReport, CgbaScratch, CongestionGame, Profile,
};
use eotora_util::rng::Pcg32;
use proptest::prelude::*;

/// A random valid game: every strategy uses a non-empty set of distinct
/// resources with positive finite weights.
fn random_game(
    rng: &mut Pcg32,
    players: usize,
    resources: usize,
    max_strats: usize,
) -> CongestionGame {
    let weights: Vec<f64> = (0..resources).map(|_| rng.uniform_in(0.2, 3.0)).collect();
    let mut game = CongestionGame::new(weights);
    for _ in 0..players {
        let num_strats = 1 + rng.below(max_strats);
        let strategies = (0..num_strats)
            .map(|_| {
                let forced = rng.below(resources);
                let mut strategy = Vec::new();
                for r in 0..resources {
                    if r == forced || rng.below(3) == 0 {
                        strategy.push((r, rng.uniform_in(0.1, 2.0)));
                    }
                }
                strategy
            })
            .collect();
        game.add_player(strategies);
    }
    game.validate().expect("generated game is valid");
    game
}

/// The pre-refactor MaxGain loop, replicated through the public API only,
/// recording every move it makes.
fn naive_trace(
    game: &CongestionGame,
    initial: Profile,
    config: &CgbaConfig,
) -> (Vec<(usize, usize)>, CgbaReport) {
    let mut profile = initial;
    let initial_cost = profile.total_cost(game);
    let mut moves = Vec::new();
    let mut converged = false;
    while moves.len() < config.max_iterations {
        let mut mover: Option<(usize, usize)> = None;
        let mut best_gap = 0.0;
        for i in 0..game.num_players() {
            let cost = profile.player_cost(game, i);
            let (s, br) = profile.best_response(game, i);
            if (1.0 - config.lambda) * cost > br {
                let gap = cost - br;
                if gap > best_gap {
                    best_gap = gap;
                    mover = Some((i, s));
                }
            }
        }
        match mover {
            Some((i, s)) => {
                profile.switch(game, i, s);
                moves.push((i, s));
            }
            None => {
                converged = true;
                break;
            }
        }
    }
    let total_cost = profile.total_cost(game);
    let iterations = moves.len();
    (moves, CgbaReport { profile, total_cost, initial_cost, iterations, converged })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    #[test]
    fn incremental_matches_naive_rescan(
        seed in 0u64..1_000_000,
        players in 1usize..12,
        resources in 1usize..6,
        max_strats in 1usize..5,
        lambda in 0usize..3,
    ) {
        let mut rng = Pcg32::seed(seed);
        let mut game = random_game(&mut rng, players, resources, max_strats);
        let config = CgbaConfig {
            lambda: [0.0, 0.05, 0.12][lambda],
            ..Default::default()
        };
        let mut scratch = CgbaScratch::default();
        // Solve, then perturb weights in place and re-solve with the SAME
        // scratch — the reuse path must stay equivalent after updates.
        for round in 0..3u64 {
            let initial = Profile::random(&game, &mut Pcg32::seed(seed ^ round));
            let (naive_moves, naive_report) = naive_trace(&game, initial.clone(), &config);
            let report = cgba_from_with_scratch(&game, initial, &config, &mut scratch);
            prop_assert_eq!(scratch.moves(), &naive_moves[..]);
            prop_assert_eq!(&report, &naive_report);
            prop_assert!(report.converged);

            // Random in-place weight updates: a resource weight and one
            // strategy's player weights.
            let r = rng.below(resources);
            game.set_resource_weight(r, rng.uniform_in(0.2, 3.0));
            let i = rng.below(players);
            let s = rng.below(game.strategies(i).len());
            let fresh: Vec<f64> =
                game.strategies(i)[s].iter().map(|_| rng.uniform_in(0.1, 2.0)).collect();
            game.set_strategy_weights(i, s, &fresh);
        }
    }
}
