//! Property tests for fault masking: CGBA on a filtered game must never
//! assign a strategy touching a masked resource, and lifting the filter
//! must restore bit-identical behavior to the never-masked cold path.

use eotora_game::{
    cgba_from_filtered, cgba_from_reference, CgbaConfig, CongestionGame, Profile, StrategyFilter,
};
use eotora_util::rng::Pcg32;
use proptest::prelude::*;

/// A random valid game: every strategy uses a non-empty set of distinct
/// resources with positive finite weights.
fn random_game(
    rng: &mut Pcg32,
    players: usize,
    resources: usize,
    max_strats: usize,
) -> CongestionGame {
    let weights: Vec<f64> = (0..resources).map(|_| rng.uniform_in(0.2, 3.0)).collect();
    let mut game = CongestionGame::new(weights);
    for _ in 0..players {
        let num_strats = 1 + rng.below(max_strats);
        let strategies = (0..num_strats)
            .map(|_| {
                let forced = rng.below(resources);
                let mut strategy = Vec::new();
                for r in 0..resources {
                    if r == forced || rng.below(3) == 0 {
                        strategy.push((r, rng.uniform_in(0.1, 2.0)));
                    }
                }
                strategy
            })
            .collect();
        game.add_player(strategies);
    }
    game.validate().expect("generated game is valid");
    game
}

/// A deterministic seed profile every player can occupy under `filter`:
/// each player's cheapest-alone allowed strategy. Mirrors the fault-path
/// cold start in `eotora-core`.
fn solo_seed(game: &CongestionGame, filter: &StrategyFilter) -> Profile {
    let choices: Vec<usize> = (0..game.num_players())
        .map(|i| Profile::solo_cheapest_filtered(game, i, filter).expect("player has a strategy"))
        .collect();
    Profile::from_choices(game, choices)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    /// Masked CGBA never lands any player on a strategy touching a masked
    /// resource (for players the mask leaves a choice; fully-masked players
    /// are re-allowed best-effort and exempt), and the run still converges
    /// to an equilibrium *of the filtered game*.
    #[test]
    fn masked_cgba_never_touches_masked_resources(
        seed in 0u64..1_000_000,
        players in 1usize..10,
        resources in 2usize..6,
        max_strats in 1usize..5,
    ) {
        let mut rng = Pcg32::seed(seed);
        let game = random_game(&mut rng, players, resources, max_strats);
        let mut masked = vec![false; resources];
        // Mask a random non-empty proper subset of resources.
        masked[rng.below(resources)] = true;
        for m in masked.iter_mut() {
            if rng.below(3) == 0 {
                *m = true;
            }
        }
        let mut filter = StrategyFilter::from_masked_resources(game.structure(), &masked);
        // Best-effort: a player with nothing left keeps its full set (and is
        // exempt from the no-masked-resource guarantee below).
        let mut exempt = vec![false; players];
        for (i, e) in exempt.iter_mut().enumerate() {
            if filter.first_allowed(i).is_none() {
                filter.allow_all_for_player(i);
                *e = true;
            }
        }
        let report = cgba_from_filtered(&game, solo_seed(&game, &filter), &CgbaConfig::default(),
            &filter, || false);
        prop_assert!(report.converged);
        for (i, &s) in report.profile.choices().iter().enumerate() {
            prop_assert!(filter.is_allowed(i, s), "player {i} on disallowed strategy {s}");
            if !exempt[i] {
                for &(r, _) in &game.strategies(i)[s] {
                    prop_assert!(!masked[r], "player {i} touches masked resource {r}");
                }
            }
        }
        // Filtered equilibrium: no *allowed* unilateral improvement remains.
        for i in 0..players {
            let cost = report.profile.player_cost(&game, i);
            let (_, br) = report.profile.best_response_filtered(&game, i, &filter)
                .expect("filter leaves every player a strategy");
            prop_assert!(cost <= br + 1e-12, "player {i} can still improve: {cost} > {br}");
        }
    }

    /// Unmasking restores the never-masked cold path bit-for-bit: an
    /// all-allowing filter with no deadline reproduces `cgba_from_reference`
    /// exactly — same moves, same floats, same report.
    #[test]
    fn all_allowed_filter_is_bit_identical_to_reference(
        seed in 0u64..1_000_000,
        players in 1usize..10,
        resources in 1usize..6,
        max_strats in 1usize..5,
        lambda in 0usize..3,
        scheduling in 0usize..2,
    ) {
        let mut rng = Pcg32::seed(seed);
        let game = random_game(&mut rng, players, resources, max_strats);
        let config = CgbaConfig {
            lambda: [0.0, 0.05, 0.12][lambda],
            scheduling: [eotora_game::SchedulingRule::MaxGain,
                eotora_game::SchedulingRule::RoundRobin][scheduling],
            ..Default::default()
        };
        let initial = Profile::random(&game, &mut Pcg32::seed(seed ^ 0xABCD));
        let filter = StrategyFilter::allow_all(game.structure());
        let reference = cgba_from_reference(&game, initial.clone(), &config);
        let filtered = cgba_from_filtered(&game, initial, &config, &filter, || false);
        prop_assert_eq!(&filtered, &reference);
    }

    /// Satellite regression: the filtered repair path must land every
    /// displaced player on an *allowed* (reachable) strategy — clamping
    /// alone is not enough when the clamped choice is masked.
    #[test]
    fn filtered_repair_lands_on_allowed_strategies(
        seed in 0u64..1_000_000,
        players in 1usize..10,
        resources in 2usize..6,
        max_strats in 2usize..6,
    ) {
        let mut rng = Pcg32::seed(seed);
        let game = random_game(&mut rng, players, resources, max_strats);
        let masked_r = rng.below(resources);
        let mut masked = vec![false; resources];
        masked[masked_r] = true;
        let mut filter = StrategyFilter::from_masked_resources(game.structure(), &masked);
        for i in 0..players {
            if filter.first_allowed(i).is_none() {
                filter.allow_all_for_player(i);
            }
        }
        // Stale retained choices: deliberately out of range, so the clamp
        // runs first and may land on a masked strategy.
        let stale: Vec<usize> = (0..players).map(|_| usize::MAX - rng.below(3)).collect();
        let (repaired, displaced) =
            Profile::from_retained_choices_filtered(&game, &stale, &filter)
                .expect("player count matches");
        let mut expected_displaced = 0;
        for (i, &s) in repaired.choices().iter().enumerate() {
            prop_assert!(filter.is_allowed(i, s), "repair left player {i} on masked strategy");
            let clamped = (usize::MAX - 2).min(game.strategies(i).len() - 1);
            if !filter.is_allowed(i, clamped) {
                expected_displaced += 1;
            }
        }
        // Every stale index clamps to len-1, so displacement happens exactly
        // when the last strategy is disallowed.
        prop_assert_eq!(displaced, expected_displaced);

        // With an all-allowing filter the repair matches the legacy clamp
        // exactly, with zero displacements.
        let allow_all = StrategyFilter::allow_all(game.structure());
        let (plain, zero) =
            Profile::from_retained_choices_filtered(&game, &stale, &allow_all).unwrap();
        prop_assert_eq!(zero, 0);
        let legacy = Profile::from_retained_choices(&game, &stale).unwrap();
        prop_assert_eq!(plain, legacy);
    }
}

#[test]
fn count_mismatch_is_unrepairable() {
    let mut rng = Pcg32::seed(3);
    let game = random_game(&mut rng, 5, 3, 3);
    let filter = StrategyFilter::allow_all(game.structure());
    assert!(Profile::from_retained_choices_filtered(&game, &[0; 4], &filter).is_none());
    assert!(Profile::from_retained_choices_filtered(&game, &[0; 6], &filter).is_none());
}

#[test]
fn deadline_predicate_stops_the_loop_with_converged_false() {
    let mut rng = Pcg32::seed(21);
    let game = random_game(&mut rng, 8, 4, 4);
    let config = CgbaConfig::default();
    let filter = StrategyFilter::allow_all(game.structure());
    let initial = Profile::random(&game, &mut Pcg32::seed(99));
    let full = cgba_from_filtered(&game, initial.clone(), &config, &filter, || false);
    // Stop after two iterations: the loop must return the best-so-far
    // profile without claiming convergence (unless it truly converged in
    // fewer moves).
    let mut polls = 0;
    let cut = cgba_from_filtered(&game, initial, &config, &filter, move || {
        polls += 1;
        polls > 2
    });
    if full.iterations > 2 {
        assert!(!cut.converged);
        assert_eq!(cut.iterations, 2);
    } else {
        assert_eq!(cut, full);
    }
}
