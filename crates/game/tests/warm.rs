//! Property tests for the warm-start CGBA path: from *any* seed profile —
//! random, the previous converged profile, or deliberately stale choices
//! repaired via [`Profile::from_retained_choices`] — the warm entry point
//! must terminate at a true λ-equilibrium and pick the same mover sequence
//! as the pre-refactor naive rescan seeded identically (warm starts change
//! how fast the moves are found, never which moves are made).

use eotora_game::{
    cgba_warm_from_with_scratch, CgbaConfig, CgbaReport, CgbaScratch, CongestionGame, Profile,
};
use eotora_util::rng::Pcg32;
use proptest::prelude::*;

/// A random valid game: every strategy uses a non-empty set of distinct
/// resources with positive finite weights.
fn random_game(
    rng: &mut Pcg32,
    players: usize,
    resources: usize,
    max_strats: usize,
) -> CongestionGame {
    let weights: Vec<f64> = (0..resources).map(|_| rng.uniform_in(0.2, 3.0)).collect();
    let mut game = CongestionGame::new(weights);
    for _ in 0..players {
        let num_strats = 1 + rng.below(max_strats);
        let strategies = (0..num_strats)
            .map(|_| {
                let forced = rng.below(resources);
                let mut strategy = Vec::new();
                for r in 0..resources {
                    if r == forced || rng.below(3) == 0 {
                        strategy.push((r, rng.uniform_in(0.1, 2.0)));
                    }
                }
                strategy
            })
            .collect();
        game.add_player(strategies);
    }
    game.validate().expect("generated game is valid");
    game
}

/// The pre-refactor MaxGain loop through the public API only, recording
/// every move it makes.
fn naive_trace(
    game: &CongestionGame,
    initial: Profile,
    config: &CgbaConfig,
) -> (Vec<(usize, usize)>, CgbaReport) {
    let mut profile = initial;
    let initial_cost = profile.total_cost(game);
    let mut moves = Vec::new();
    let mut converged = false;
    while moves.len() < config.max_iterations {
        let mut mover: Option<(usize, usize)> = None;
        let mut best_gap = 0.0;
        for i in 0..game.num_players() {
            let cost = profile.player_cost(game, i);
            let (s, br) = profile.best_response(game, i);
            if (1.0 - config.lambda) * cost > br {
                let gap = cost - br;
                if gap > best_gap {
                    best_gap = gap;
                    mover = Some((i, s));
                }
            }
        }
        match mover {
            Some((i, s)) => {
                profile.switch(game, i, s);
                moves.push((i, s));
            }
            None => {
                converged = true;
                break;
            }
        }
    }
    let total_cost = profile.total_cost(game);
    let iterations = moves.len();
    (moves, CgbaReport { profile, total_cost, initial_cost, iterations, converged })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..Default::default() })]

    #[test]
    fn warm_path_matches_naive_and_reaches_equilibrium(
        seed in 0u64..1_000_000,
        players in 1usize..10,
        resources in 1usize..6,
        max_strats in 1usize..5,
        lambda in 0usize..3,
    ) {
        let mut rng = Pcg32::seed(seed);
        let mut game = random_game(&mut rng, players, resources, max_strats);
        let config = CgbaConfig { lambda: [0.0, 0.05, 0.12][lambda], ..Default::default() };
        let mut scratch = CgbaScratch::default();
        let mut prev_choices: Option<Vec<usize>> = None;
        // Round 0 starts random; later rounds reuse the previous converged
        // choices, sometimes deliberately staled out of range so the repair
        // path runs too. Weights drift in place between rounds, exactly
        // like successive slots of the online loop.
        for round in 0..4u64 {
            let initial = match &prev_choices {
                None => Profile::random(&game, &mut Pcg32::seed(seed ^ round)),
                Some(choices) => {
                    let mut stale = choices.clone();
                    for c in stale.iter_mut() {
                        if rng.below(4) == 0 {
                            *c += 100; // out of range; repair must clamp
                        }
                    }
                    Profile::from_retained_choices(&game, &stale)
                        .expect("player count unchanged")
                }
            };
            let (naive_moves, naive_report) = naive_trace(&game, initial.clone(), &config);
            let report = cgba_warm_from_with_scratch(&game, initial, &config, &mut scratch);
            prop_assert_eq!(scratch.moves(), &naive_moves[..]);
            prop_assert_eq!(&report, &naive_report);
            prop_assert!(report.converged);
            // True equilibrium: no improving unilateral move remains.
            prop_assert!(report.profile.is_lambda_equilibrium(&game, config.lambda, 0.0));
            prev_choices = Some(report.profile.choices().to_vec());

            let r = rng.below(resources);
            game.set_resource_weight(r, rng.uniform_in(0.2, 3.0));
            if rng.below(2) == 0 {
                let i = rng.below(players);
                let s = rng.below(game.strategies(i).len());
                let fresh: Vec<f64> =
                    game.strategies(i)[s].iter().map(|_| rng.uniform_in(0.1, 2.0)).collect();
                game.set_strategy_weights(i, s, &fresh);
            }
        }
    }
}

#[test]
fn unchanged_game_warm_rerun_makes_no_moves() {
    // Re-seeding with the converged profile on an untouched game must be
    // recognized as already-converged: zero moves, and (via the snapshot)
    // zero rescans.
    let mut rng = Pcg32::seed(7);
    let game = random_game(&mut rng, 6, 4, 3);
    let config = CgbaConfig::default();
    let mut scratch = CgbaScratch::default();
    let first = cgba_warm_from_with_scratch(
        &game,
        Profile::random(&game, &mut Pcg32::seed(1)),
        &config,
        &mut scratch,
    );
    assert!(first.converged);
    let again = cgba_warm_from_with_scratch(
        &game,
        Profile::from_retained_choices(&game, first.profile.choices()).unwrap(),
        &config,
        &mut scratch,
    );
    assert_eq!(again.iterations, 0);
    assert!(again.converged);
    // Loads are re-summed from scratch by the repair, so compare choices
    // (loads can differ in the last bit from the incremental updates).
    assert_eq!(again.profile.choices(), first.profile.choices());
}

#[test]
fn repair_clamps_or_rejects_stale_choices() {
    let mut rng = Pcg32::seed(11);
    let game = random_game(&mut rng, 5, 3, 4);
    // Out-of-range indices clamp to each player's last strategy.
    let repaired = Profile::from_retained_choices(&game, &[usize::MAX; 5]).unwrap();
    for (i, &c) in repaired.choices().iter().enumerate() {
        assert_eq!(c, game.strategies(i).len() - 1, "player {i}");
    }
    // A player-count mismatch is unrepairable.
    assert!(Profile::from_retained_choices(&game, &[0; 4]).is_none());
    assert!(Profile::from_retained_choices(&game, &[0; 6]).is_none());
}
