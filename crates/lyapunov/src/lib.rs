//! Lyapunov stochastic optimization: virtual queues and the generic
//! drift-plus-penalty (DPP) loop of paper §V.
//!
//! The paper converts the time-average energy-cost constraint
//! `lim (1/T) Σ E[Θ(Ω_t, p_t)] ≤ 0` into a **virtual queue**
//! `Q(t+1) = max{Q(t) + θ(t), 0}` (eq. 21) and, each slot, solves
//!
//! ```text
//! min  V · objective(α_t)  +  Q(t) · constraint_excess(α_t)      (P2)
//! ```
//!
//! Queue stability then implies the constraint holds on time average, and
//! Theorem 4 gives an `O(1/V)` optimality gap growing with the state period
//! `D`. The machinery is problem-agnostic, so this crate exposes it
//! generically:
//!
//! * [`VirtualQueue`] — the scalar queue with its update rule.
//! * [`SlotSolver`] — "given state, `V`, and `Q(t)`, return a decision with
//!   its objective value and constraint excess." The paper's BDMA is one
//!   implementation (in `eotora-core`); test doubles are trivial to write.
//! * [`DppController`] — drives observe → solve → update-queue and keeps
//!   running time averages of both metrics.
//! * [`MultiQueue`] — the multi-constraint generalization (one queue per
//!   constraint), the extension hook DESIGN.md lists.
//!
//! # Examples
//!
//! ```
//! use eotora_lyapunov::{DppController, SlotOutcome, SlotSolver};
//!
//! /// A toy solver: pay `state` latency, overspend by `state - 1`.
//! struct Toy;
//! impl SlotSolver for Toy {
//!     type State = f64;
//!     type Decision = ();
//!     fn solve(&mut self, state: &f64, _v: f64, _q: f64) -> SlotOutcome<()> {
//!         SlotOutcome { decision: (), objective: *state, constraint_excess: state - 1.0 }
//!     }
//! }
//!
//! let mut ctl = DppController::new(Toy, 50.0);
//! ctl.step(&2.0);
//! assert_eq!(ctl.queue_backlog(), 1.0); // max(0 + (2-1), 0)
//! assert_eq!(ctl.average_objective(), 2.0);
//! ```

use serde::{Deserialize, Serialize};

use eotora_util::stats::Welford;

/// The scalar virtual queue `Q(t)` of eq. (21).
///
/// # Examples
///
/// ```
/// use eotora_lyapunov::VirtualQueue;
///
/// let mut q = VirtualQueue::new(0.0);
/// q.update(3.0);
/// q.update(-5.0);
/// assert_eq!(q.backlog(), 0.0); // clamped at zero
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtualQueue {
    backlog: f64,
}

impl VirtualQueue {
    /// Creates a queue with initial backlog `Q(1) = q0`.
    ///
    /// # Panics
    ///
    /// Panics if `q0` is negative or non-finite.
    pub fn new(q0: f64) -> Self {
        assert!(q0 >= 0.0 && q0.is_finite(), "initial backlog must be non-negative");
        Self { backlog: q0 }
    }

    /// Current backlog `Q(t)`.
    pub fn backlog(&self) -> f64 {
        self.backlog
    }

    /// Applies `Q(t+1) = max{Q(t) + excess, 0}` and returns the new backlog.
    pub fn update(&mut self, excess: f64) -> f64 {
        self.backlog = (self.backlog + excess).max(0.0);
        self.backlog
    }
}

/// Decision plus per-slot metrics returned by a [`SlotSolver`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotOutcome<D> {
    /// The decision `α_t` to execute this slot.
    pub decision: D,
    /// The objective term (the paper's latency `T_t`).
    pub objective: f64,
    /// The constraint excess `θ(t)` (the paper's `C_t − C̄`); negative when
    /// under budget.
    pub constraint_excess: f64,
}

/// A per-slot oracle for the DPP subproblem P2.
///
/// Implementations should (approximately) minimize
/// `V·objective + Q·constraint_excess` over feasible decisions. The
/// controller treats the solver as a black box — Theorem 4's guarantee
/// degrades gracefully to the solver's approximation ratio `R`.
pub trait SlotSolver {
    /// The observed state `β_t`.
    type State;
    /// The decision `α_t`.
    type Decision;

    /// Solves (approximately) the slot problem for `state` under the given
    /// penalty weight `v` and queue backlog `q`.
    fn solve(&mut self, state: &Self::State, v: f64, q: f64) -> SlotOutcome<Self::Decision>;
}

/// Result of one controller step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DppStep<D> {
    /// Slot index (0-based count of steps taken before this one).
    pub slot: u64,
    /// Queue backlog used when solving (i.e. `Q(t)`).
    pub queue_before: f64,
    /// Queue backlog after the update (i.e. `Q(t+1)`).
    pub queue_after: f64,
    /// The solver outcome executed this slot.
    pub outcome: SlotOutcome<D>,
}

/// Drives the DPP loop (paper Algorithm 1, minus the problem-specific parts).
#[derive(Debug, Clone)]
pub struct DppController<S> {
    solver: S,
    v: f64,
    queue: VirtualQueue,
    slots: u64,
    objective_avg: Welford,
    excess_avg: Welford,
}

impl<S: SlotSolver> DppController<S> {
    /// Creates a controller with penalty weight `V` and `Q(1) = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not positive.
    pub fn new(solver: S, v: f64) -> Self {
        Self::with_initial_queue(solver, v, 0.0)
    }

    /// Creates a controller with an explicit initial backlog.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not positive or `q0` is negative.
    pub fn with_initial_queue(solver: S, v: f64, q0: f64) -> Self {
        assert!(v > 0.0, "penalty weight V must be positive");
        Self {
            solver,
            v,
            queue: VirtualQueue::new(q0),
            slots: 0,
            objective_avg: Welford::new(),
            excess_avg: Welford::new(),
        }
    }

    /// The penalty weight `V`.
    pub fn v(&self) -> f64 {
        self.v
    }

    /// Current backlog `Q(t)`.
    pub fn queue_backlog(&self) -> f64 {
        self.queue.backlog()
    }

    /// Number of slots executed so far.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Running time-average of the objective, `(1/T) Σ T_t`.
    pub fn average_objective(&self) -> f64 {
        self.objective_avg.mean()
    }

    /// Running time-average of the constraint excess, `(1/T) Σ θ(t)`;
    /// `≤ 0` means the budget is honoured on average.
    pub fn average_excess(&self) -> f64 {
        self.excess_avg.mean()
    }

    /// Borrow the underlying solver (e.g. to inspect adaptive state).
    pub fn solver(&self) -> &S {
        &self.solver
    }

    /// Mutably borrow the underlying solver (e.g. to restore RNG state when
    /// resuming from a checkpoint).
    pub fn solver_mut(&mut self) -> &mut S {
        &mut self.solver
    }

    /// Executes one slot: solve P2 at the current backlog, then update the
    /// queue with the realized excess.
    pub fn step(&mut self, state: &S::State) -> DppStep<S::Decision> {
        let queue_before = self.queue.backlog();
        let outcome = self.solver.solve(state, self.v, queue_before);
        let queue_after = self.queue.update(outcome.constraint_excess);
        self.objective_avg.push(outcome.objective);
        self.excess_avg.push(outcome.constraint_excess);
        let slot = self.slots;
        self.slots += 1;
        DppStep { slot, queue_before, queue_after, outcome }
    }
}

/// Serializable snapshot of a [`DppController`]'s dynamic state (queue,
/// slot count, running averages) — everything needed to resume a run after
/// a restart, given the same solver and states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerCheckpoint {
    /// Queue backlog `Q(t)` at checkpoint time.
    pub queue: f64,
    /// Slots executed so far.
    pub slots: u64,
    /// Running objective average state.
    pub objective_avg: Welford,
    /// Running constraint-excess average state.
    pub excess_avg: Welford,
}

impl<S: SlotSolver> DppController<S> {
    /// Snapshots the controller's dynamic state.
    pub fn checkpoint(&self) -> ControllerCheckpoint {
        ControllerCheckpoint {
            queue: self.queue.backlog(),
            slots: self.slots,
            objective_avg: self.objective_avg,
            excess_avg: self.excess_avg,
        }
    }

    /// Restores a previously captured snapshot.
    ///
    /// The caller is responsible for resuming the *solver* and the state
    /// stream at the matching slot; the controller itself is memoryless
    /// beyond this snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint carries a negative queue backlog.
    pub fn restore(&mut self, checkpoint: &ControllerCheckpoint) {
        self.queue = VirtualQueue::new(checkpoint.queue);
        self.slots = checkpoint.slots;
        self.objective_avg = checkpoint.objective_avg;
        self.excess_avg = checkpoint.excess_avg;
    }
}

/// One virtual queue per constraint — the multi-budget generalization
/// (e.g. a separate energy budget per server room).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiQueue {
    queues: Vec<VirtualQueue>,
}

impl MultiQueue {
    /// Creates `n` queues, all starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one queue");
        Self { queues: vec![VirtualQueue::new(0.0); n] }
    }

    /// Number of constraints tracked.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Whether there are no queues (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Backlogs `Q_j(t)`.
    pub fn backlogs(&self) -> Vec<f64> {
        self.queues.iter().map(VirtualQueue::backlog).collect()
    }

    /// The weighted drift term `Σ_j Q_j(t) · excess_j` to add to the slot
    /// objective.
    ///
    /// # Panics
    ///
    /// Panics if `excesses.len()` differs from the queue count.
    pub fn drift_weight(&self, excesses: &[f64]) -> f64 {
        assert_eq!(excesses.len(), self.queues.len(), "one excess per queue");
        self.queues.iter().zip(excesses).map(|(q, &e)| q.backlog() * e).sum()
    }

    /// Updates every queue with its realized excess.
    ///
    /// # Panics
    ///
    /// Panics if `excesses.len()` differs from the queue count.
    pub fn update(&mut self, excesses: &[f64]) {
        assert_eq!(excesses.len(), self.queues.len(), "one excess per queue");
        for (q, &e) in self.queues.iter_mut().zip(excesses) {
            q.update(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eotora_util::assert_close;
    use eotora_util::rng::Pcg32;

    #[test]
    fn queue_dynamics_match_eq_21() {
        let mut q = VirtualQueue::new(2.0);
        assert_eq!(q.update(3.0), 5.0);
        assert_eq!(q.update(-1.5), 3.5);
        assert_eq!(q.update(-10.0), 0.0);
        assert_eq!(q.update(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_initial_backlog_panics() {
        VirtualQueue::new(-1.0);
    }

    /// A solvable toy problem with a closed-form DPP behaviour: each slot we
    /// choose x ∈ [0, 1]; objective = 1/x (want x big), constraint excess =
    /// x − budget (want x small). The slot problem min V/x + Q(x − b) has
    /// solution x = min(1, sqrt(V/Q)).
    struct ToySolver {
        budget: f64,
    }

    impl SlotSolver for ToySolver {
        type State = ();
        type Decision = f64;
        fn solve(&mut self, _: &(), v: f64, q: f64) -> SlotOutcome<f64> {
            let x = if q <= 0.0 { 1.0 } else { (v / q).sqrt().min(1.0) };
            SlotOutcome { decision: x, objective: 1.0 / x, constraint_excess: x - self.budget }
        }
    }

    #[test]
    fn controller_enforces_time_average_budget() {
        let mut ctl = DppController::new(ToySolver { budget: 0.5 }, 100.0);
        let mut tail_excess = 0.0;
        for t in 0..20_000 {
            let s = ctl.step(&());
            if t >= 10_000 {
                tail_excess += s.outcome.constraint_excess;
            }
        }
        // Time-average excess approaches ≤ 0 at rate O(V/T) (Theorem 4,
        // eq. 29): the full-horizon average still carries the queue-filling
        // transient (≈ Q*/T = +0.02 here), while the tail is converged.
        assert!(ctl.average_excess() < 0.03, "excess {}", ctl.average_excess());
        assert!(tail_excess / 10_000.0 < 1e-3, "tail excess {}", tail_excess / 10_000.0);
        // And the decision should hover near the budget, not collapse to 0.
        assert!(ctl.average_objective() < 2.5, "objective {}", ctl.average_objective());
    }

    #[test]
    fn larger_v_gives_better_objective_and_bigger_queue() {
        let run = |v: f64| {
            let mut ctl = DppController::new(ToySolver { budget: 0.5 }, v);
            let mut q_tail = 0.0;
            for t in 0..20_000 {
                let s = ctl.step(&());
                if t >= 15_000 {
                    q_tail += s.queue_after;
                }
            }
            (ctl.average_objective(), q_tail / 5_000.0)
        };
        let (obj_small, q_small) = run(10.0);
        let (obj_large, q_large) = run(200.0);
        assert!(obj_large <= obj_small + 1e-9, "objective should improve with V");
        assert!(q_large > q_small, "queue should grow with V (O(V) backlog)");
    }

    #[test]
    fn queue_scales_linearly_in_v() {
        // For the toy problem the fixed point is Q* = V/(x*)² = V/b² — check
        // the measured tail backlog tracks V linearly (paper Fig. 8 left).
        let tail_backlog = |v: f64| {
            let mut ctl = DppController::new(ToySolver { budget: 0.5 }, v);
            let mut acc = 0.0;
            for t in 0..30_000 {
                let s = ctl.step(&());
                if t >= 25_000 {
                    acc += s.queue_after;
                }
            }
            acc / 5_000.0
        };
        let q1 = tail_backlog(50.0);
        let q2 = tail_backlog(100.0);
        assert!((q2 / q1 - 2.0).abs() < 0.2, "ratio {}", q2 / q1);
    }

    #[test]
    fn step_reports_queue_before_and_after() {
        let mut ctl = DppController::new(ToySolver { budget: 0.0 }, 10.0);
        let s0 = ctl.step(&());
        assert_eq!(s0.slot, 0);
        assert_eq!(s0.queue_before, 0.0);
        assert!(s0.queue_after > 0.0); // x > 0 with zero budget always overspends
        let s1 = ctl.step(&());
        assert_eq!(s1.slot, 1);
        assert_eq!(s1.queue_before, s0.queue_after);
    }

    #[test]
    fn averages_track_welford() {
        let mut ctl = DppController::new(ToySolver { budget: 0.5 }, 100.0);
        let mut objs = Vec::new();
        for _ in 0..100 {
            objs.push(ctl.step(&()).outcome.objective);
        }
        let mean: f64 = objs.iter().sum::<f64>() / objs.len() as f64;
        assert_close!(ctl.average_objective(), mean, 1e-9);
        assert_eq!(ctl.slots(), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_v_panics() {
        DppController::new(ToySolver { budget: 1.0 }, 0.0);
    }

    #[test]
    fn checkpoint_resume_is_seamless() {
        // 30 continuous slots == 15 slots + checkpoint/restore + 15 slots.
        let mut continuous = DppController::new(ToySolver { budget: 0.5 }, 80.0);
        for _ in 0..30 {
            continuous.step(&());
        }

        let mut first = DppController::new(ToySolver { budget: 0.5 }, 80.0);
        for _ in 0..15 {
            first.step(&());
        }
        let cp = first.checkpoint();
        let mut resumed = DppController::new(ToySolver { budget: 0.5 }, 80.0);
        resumed.restore(&cp);
        for _ in 0..15 {
            resumed.step(&());
        }
        assert_eq!(resumed.slots(), continuous.slots());
        assert!((resumed.queue_backlog() - continuous.queue_backlog()).abs() < 1e-12);
        assert!((resumed.average_objective() - continuous.average_objective()).abs() < 1e-12);
        assert!((resumed.average_excess() - continuous.average_excess()).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_serde_roundtrip() {
        let mut ctl = DppController::new(ToySolver { budget: 0.5 }, 80.0);
        for _ in 0..5 {
            ctl.step(&());
        }
        let cp = ctl.checkpoint();
        let json = serde_json::to_string(&cp).unwrap();
        let back: ControllerCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn multi_queue_drift_and_update() {
        let mut mq = MultiQueue::new(3);
        assert_eq!(mq.len(), 3);
        assert!(!mq.is_empty());
        mq.update(&[1.0, -1.0, 2.0]);
        assert_eq!(mq.backlogs(), vec![1.0, 0.0, 2.0]);
        let w = mq.drift_weight(&[0.5, 10.0, 1.0]);
        assert_close!(w, 1.0 * 0.5 + 0.0 * 10.0 + 2.0 * 1.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "one excess per queue")]
    fn multi_queue_length_mismatch_panics() {
        MultiQueue::new(2).update(&[1.0]);
    }

    #[test]
    fn random_excess_sequence_keeps_queue_nonnegative() {
        let mut rng = Pcg32::seed(44);
        let mut q = VirtualQueue::new(0.0);
        for _ in 0..10_000 {
            q.update(rng.uniform_in(-2.0, 2.0));
            assert!(q.backlog() >= 0.0);
        }
    }
}
