//! Refactored-vs-reference equivalence: the zero-rebuild engine (reused
//! `SlotWorkspace`, incremental CGBA, in-place weight refreshes) must
//! reproduce the pre-refactor solve path bit for bit, across a full online
//! DPP run.

use eotora_core::bdma::{solve_p2_reference, BdmaConfig};
use eotora_core::dpp::{DppConfig, EotoraDpp};
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_game::CgbaConfig;
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;

/// Replays Algorithm 1 with the pre-refactor per-slot solve: fresh P2-A
/// build + full validation every BDMA round, naive-rescan CGBA, explicit
/// queue recursion `Q(t+1) = max{Q(t) + C_t − C̄, 0}`.
fn reference_run(
    system: &MecSystem,
    config: &DppConfig,
    horizon: u64,
    state_seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let mut provider =
        StateProvider::paper(system.topology(), &PaperStateConfig::default(), state_seed);
    // Same dedicated stream the DPP controller seeds its solver RNG with.
    let mut rng = Pcg32::seed_stream(config.seed, 0xD99);
    let bdma = BdmaConfig { rounds: config.bdma_rounds, ..Default::default() };
    let cgba = CgbaConfig::default();
    let mut queue = config.initial_queue;
    let mut latencies = Vec::new();
    let mut queues = Vec::new();
    for slot in 0..horizon {
        let state = provider.observe(slot, system.topology());
        let sol = solve_p2_reference(system, &state, config.v, queue, &bdma, &cgba, &mut rng);
        latencies.push(sol.latency);
        // Same association as `VirtualQueue::update`: the excess is formed
        // first, then added to the backlog (float addition isn't
        // associative, and this test demands bit equality).
        let excess = sol.energy_cost - system.budget_per_slot();
        queue = (queue + excess).max(0.0);
        queues.push(queue);
    }
    (latencies, queues)
}

#[test]
fn dpp_run_is_bit_identical_to_reference_loop() {
    let horizon = 20;
    let system = MecSystem::random(&SystemConfig::paper_defaults(18), 301);
    let config = DppConfig { v: 120.0, bdma_rounds: 3, seed: 301, ..Default::default() };
    let (ref_latencies, ref_queues) = reference_run(&system, &config, horizon, 301);

    let mut provider = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 301);
    let mut dpp = EotoraDpp::new(system, config);
    for slot in 0..horizon {
        let state = provider.observe(slot, dpp.system().topology());
        let step = dpp.step(&state);
        // Exact float equality on purpose: the refactor promises the same
        // numbers, not merely close ones.
        assert_eq!(
            step.outcome.objective, ref_latencies[slot as usize],
            "latency diverged at slot {slot}"
        );
        assert_eq!(dpp.queue_backlog(), ref_queues[slot as usize], "queue diverged at slot {slot}");
    }
}

#[test]
fn single_round_bdma_also_matches_reference() {
    // rounds = 1 exercises the build-only path (no between-round frequency
    // refresh); a second config exercises a different V / seed.
    for (v, rounds, seed) in [(60.0, 1, 311u64), (250.0, 2, 312u64)] {
        let horizon = 12;
        let system = MecSystem::random(&SystemConfig::paper_defaults(11), seed);
        let config = DppConfig { v, bdma_rounds: rounds, seed, ..Default::default() };
        let (ref_latencies, ref_queues) = reference_run(&system, &config, horizon, seed);

        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let mut dpp = EotoraDpp::new(system, config);
        let mut latencies = Vec::new();
        let mut queues = Vec::new();
        for slot in 0..horizon {
            let state = provider.observe(slot, dpp.system().topology());
            let step = dpp.step(&state);
            latencies.push(step.outcome.objective);
            queues.push(dpp.queue_backlog());
        }
        assert_eq!(latencies, ref_latencies, "v={v} rounds={rounds}");
        assert_eq!(queues, ref_queues, "v={v} rounds={rounds}");
    }
}
