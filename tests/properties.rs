//! Property-based cross-crate invariants (proptest).

use eotora_core::allocation::optimal_allocation;
use eotora_core::decision::Assignment;
use eotora_core::latency::{latency_under, optimal_latency};
use eotora_core::p2a::P2aProblem;
use eotora_core::p2b::solve_p2b;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_lyapunov::VirtualQueue;
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_topology::BaseStationId;
use eotora_util::rng::Pcg32;
use proptest::prelude::*;

/// Builds a deterministic instance from proptest-chosen knobs.
fn instance(devices: usize, seed: u64) -> (MecSystem, eotora_states::SystemState) {
    let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
    let mut provider = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
    let state = provider.observe(0, system.topology());
    (system, state)
}

fn random_assignments(system: &MecSystem, seed: u64) -> Vec<Assignment> {
    let topo = system.topology();
    let mut rng = Pcg32::seed(seed);
    (0..topo.num_devices())
        .map(|_| {
            let k = BaseStationId(rng.below(topo.num_base_stations()));
            let server = *rng.pick(&topo.servers_reachable_from(k)).unwrap();
            Assignment { base_station: k, server }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

    /// The Lemma 1 allocation is always feasible and reproduces the closed
    /// form exactly (eq. (18)–(20) vs eqs. (7)–(11)).
    #[test]
    fn lemma1_feasible_and_consistent(devices in 2usize..20, seed in 0u64..1_000) {
        let (system, state) = instance(devices, seed);
        let assignments = random_assignments(&system, seed ^ 0xA5);
        let freqs = system.max_frequencies();
        let decision = optimal_allocation(&system, &state, &assignments, &freqs);
        prop_assert!(decision.validate(&system).is_ok());
        let general = latency_under(&system, &state, &decision).total();
        let closed = optimal_latency(&system, &state, &assignments, &freqs).total();
        prop_assert!((general - closed).abs() <= 1e-9 * closed.max(1.0));
    }

    /// The congestion-game social cost equals the closed-form latency for
    /// every profile (the §V-B mapping identity).
    #[test]
    fn game_cost_identity(devices in 2usize..15, seed in 0u64..1_000) {
        let (system, state) = instance(devices, seed);
        let freqs = system.min_frequencies();
        let p2a = P2aProblem::build(&system, &state, &freqs);
        let mut rng = Pcg32::seed(seed);
        let choices: Vec<usize> =
            (0..devices).map(|i| rng.below(p2a.num_strategies(i))).collect();
        let game_cost = p2a.total_latency(&choices);
        let assignments = p2a.assignments_from_choices(&choices);
        let direct = optimal_latency(&system, &state, &assignments, &freqs).total();
        prop_assert!((game_cost - direct).abs() <= 1e-9 * direct.max(1.0));
    }

    /// P2-B returns in-bounds frequencies whose objective beats uniform
    /// candidates (min, mid, max frequency fleets).
    #[test]
    fn p2b_beats_uniform_frequencies(
        devices in 2usize..15,
        seed in 0u64..500,
        v in 1.0f64..500.0,
        queue in 0.0f64..2_000.0,
    ) {
        let (system, state) = instance(devices, seed);
        let assignments = random_assignments(&system, seed ^ 0x5A);
        let sol = solve_p2b(&system, &state, &assignments, v, queue);
        let topo = system.topology();
        for (n, &f) in sol.freqs_hz.iter().enumerate() {
            let s = topo.server(eotora_topology::ServerId(n));
            prop_assert!(f >= s.freq_min_hz - 1.0 && f <= s.freq_max_hz + 1.0);
        }
        let objective = |freqs: &[f64]| {
            v * optimal_latency(&system, &state, &assignments, freqs).total()
                + queue * system.constraint_excess(state.price_per_kwh, freqs)
        };
        for fleet in [
            system.min_frequencies(),
            system.max_frequencies(),
            system
                .min_frequencies()
                .iter()
                .zip(system.max_frequencies())
                .map(|(&a, b)| 0.5 * (a + b))
                .collect::<Vec<_>>(),
        ] {
            prop_assert!(sol.objective <= objective(&fleet) + 1e-6);
        }
    }

    /// Virtual-queue dynamics: Q stays non-negative and obeys the one-step
    /// bound |Q(t+1) − Q(t)| ≤ |θ(t)|.
    #[test]
    fn queue_dynamics_bounded(excesses in prop::collection::vec(-10.0f64..10.0, 1..200)) {
        let mut q = VirtualQueue::new(0.0);
        let mut prev = 0.0;
        for &e in &excesses {
            let now = q.update(e);
            prop_assert!(now >= 0.0);
            prop_assert!((now - prev).abs() <= e.abs() + 1e-12);
            prev = now;
        }
    }

    /// Scaling every task size by c scales the processing latency by c
    /// (homogeneity of eq. (18)).
    #[test]
    fn processing_latency_is_homogeneous(devices in 2usize..12, seed in 0u64..500, c in 1.1f64..4.0) {
        let (system, mut state) = instance(devices, seed);
        let assignments = random_assignments(&system, seed ^ 0x3C);
        let freqs = system.max_frequencies();
        let base = optimal_latency(&system, &state, &assignments, &freqs).processing;
        for f in state.task_cycles.iter_mut() {
            *f *= c;
        }
        let scaled = optimal_latency(&system, &state, &assignments, &freqs).processing;
        prop_assert!((scaled - c * base).abs() <= 1e-9 * scaled.max(1.0));
    }
}
