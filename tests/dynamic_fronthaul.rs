//! The time-varying fronthaul path: the paper claims "the algorithm can
//! handle the case that `h_k^F` varies over time" — this exercises it end to
//! end through the state provider and controller.

use eotora_core::dpp::{DppConfig, EotoraDpp};
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_states::process::PeriodicProcess;
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;

#[test]
fn controller_runs_with_time_varying_fronthaul() {
    let system = MecSystem::random(&SystemConfig::paper_defaults(8), 601);
    let k = system.topology().num_base_stations();
    let procs: Vec<PeriodicProcess> = (0..k)
        .map(|i| PeriodicProcess::new(vec![6.0, 10.0, 14.0], 0.05, Pcg32::seed(601 + i as u64)))
        .collect();
    let mut provider = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 601)
        .with_fronthaul_processes(procs);
    let mut dpp = EotoraDpp::new(system, DppConfig { bdma_rounds: 1, ..Default::default() });
    let mut seen = Vec::new();
    for t in 0..9 {
        let beta = provider.observe(t, dpp.system().topology());
        // The provider must deliver the period-3 process values (trend
        // 6/10/14 with 5% relative noise), not the static topology constant.
        let trend = [6.0, 10.0, 14.0][(t % 3) as usize];
        for &h in &beta.fronthaul_efficiency {
            assert!(
                (h - trend).abs() <= 0.3 * trend,
                "slot {t}: fronthaul {h} should track trend {trend}"
            );
        }
        seen.push(beta.fronthaul_efficiency[0]);
        let step = dpp.step(&beta);
        step.outcome.decision.validate(dpp.system()).unwrap();
    }
    // And it genuinely varies over time.
    assert!(seen.windows(2).any(|w| (w[0] - w[1]).abs() > 1.0));
}

#[test]
fn degraded_fronthaul_increases_latency() {
    // Same instance, fronthaul efficiency 10 vs 2 bit/s/Hz: the optimal
    // latency must be strictly worse under the degraded fronthaul.
    let system = MecSystem::random(&SystemConfig::paper_defaults(10), 602);
    let k = system.topology().num_base_stations();

    let run_with_fronthaul = |eff: f64| {
        let procs: Vec<PeriodicProcess> =
            (0..k).map(|_| PeriodicProcess::new(vec![eff], 0.0, Pcg32::seed(0))).collect();
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), 602)
                .with_fronthaul_processes(procs);
        let mut dpp =
            EotoraDpp::new(system.clone(), DppConfig { bdma_rounds: 1, ..Default::default() });
        let mut total = 0.0;
        for t in 0..6 {
            let beta = provider.observe(t, dpp.system().topology());
            total += dpp.step(&beta).outcome.objective;
        }
        total
    };

    let healthy = run_with_fronthaul(10.0);
    let degraded = run_with_fronthaul(2.0);
    assert!(degraded > healthy, "degraded {degraded} should exceed healthy {healthy}");
}
