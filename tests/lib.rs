//! Cross-crate integration tests for the `eotora` workspace.
//!
//! The actual tests live in the sibling `[[test]]` targets:
//!
//! * `end_to_end` — the full Algorithm 1 pipeline: budget satisfaction,
//!   V-monotonicity, per-slot feasibility, determinism.
//! * `approximation` — CGBA against brute force / branch-and-bound on tiny
//!   instances (Theorem 2's 2.62 bound, empirically ≈ 1.0x).
//! * `lemma1_cross_check` — the closed-form allocation against a numerical
//!   projected-gradient oracle from `eotora-optim`.
//! * `dynamic_fronthaul` — the time-varying `h_k^F` path the paper claims
//!   the algorithm handles.
//! * `properties` — proptest invariants spanning crates (social-cost
//!   identity, queue dynamics, allocation share structure).

/// Common tiny-system helpers shared by the integration tests.
pub mod support {
    use eotora_core::system::{MecSystem, SystemConfig};
    use eotora_states::{PaperStateConfig, StateProvider, SystemState};

    /// Builds a small paper-shaped system plus its first observed state.
    pub fn tiny_system(devices: usize, seed: u64) -> (MecSystem, SystemState) {
        let system = MecSystem::random(&SystemConfig::paper_defaults(devices), seed);
        let mut provider =
            StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
        let state = provider.observe(0, system.topology());
        (system, state)
    }
}
