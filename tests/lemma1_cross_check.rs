//! Lemma 1 against a numerical oracle: the closed-form allocation must
//! match box/simplex-projected gradient descent on the true latency
//! objective (eqs. (7)–(11)).

use eotora_core::allocation::optimal_allocation;
use eotora_core::decision::Assignment;
use eotora_core::latency::latency_under;
use eotora_optim::gradient::{minimize_projected, GradientConfig};
use eotora_optim::simplex::project_simplex;
use eotora_tests::support::tiny_system;
use eotora_topology::BaseStationId;
use eotora_util::rng::Pcg32;

#[test]
fn compute_shares_match_projected_gradient() {
    let (system, state) = tiny_system(6, 501);
    let topo = system.topology();
    // Put everyone on one server via one base station so the compute
    // allocation subproblem is a single simplex program.
    let k = BaseStationId(0);
    let n = topo.servers_reachable_from(k)[0];
    let assignments = vec![Assignment { base_station: k, server: n }; 6];
    let freqs = system.max_frequencies();
    let closed = optimal_allocation(&system, &state, &assignments, &freqs);

    // Numerical solve of min Σ_i w_i/φ_i over the simplex, where
    // w_i = f_i / (rate · σ_{i,n}).
    let rate = system.compute_rate(n, freqs[n.index()]);
    let w: Vec<f64> = (0..6)
        .map(|i| {
            state.task_cycles[i] / (rate * system.suitability(eotora_topology::DeviceId(i), n))
        })
        .collect();
    let numeric = minimize_projected(
        |x| w.iter().zip(x).map(|(wi, xi)| wi / xi.max(1e-12)).sum(),
        |x| w.iter().zip(x).map(|(wi, xi)| -wi / (xi.max(1e-12) * xi.max(1e-12))).collect(),
        |v| project_simplex(v, 1.0),
        &[1.0 / 6.0; 6],
        GradientConfig { max_iter: 50_000, tol: 1e-13, ..Default::default() },
    );
    for (a, b) in closed.compute_share.iter().zip(&numeric.x) {
        assert!((a - b).abs() < 1e-3, "closed {a} vs numeric {b}");
    }
}

#[test]
fn no_random_feasible_allocation_beats_lemma1() {
    let (system, state) = tiny_system(10, 502);
    let topo = system.topology();
    let mut rng = Pcg32::seed(7);
    let assignments: Vec<Assignment> = (0..10)
        .map(|_| {
            let k = BaseStationId(rng.below(topo.num_base_stations()));
            let server = *rng.pick(&topo.servers_reachable_from(k)).unwrap();
            Assignment { base_station: k, server }
        })
        .collect();
    let freqs = system.max_frequencies();
    let best = optimal_allocation(&system, &state, &assignments, &freqs);
    let best_latency = latency_under(&system, &state, &best).total();

    // 200 random feasible share vectors (renormalized per resource).
    for _ in 0..200 {
        let mut cand = best.clone();
        let mut acc = vec![0.0; topo.num_base_stations()];
        let mut fh = vec![0.0; topo.num_base_stations()];
        let mut cmp = vec![0.0; topo.num_servers()];
        for (i, a) in assignments.iter().enumerate() {
            cand.access_share[i] = rng.uniform_in(0.05, 1.0);
            cand.fronthaul_share[i] = rng.uniform_in(0.05, 1.0);
            cand.compute_share[i] = rng.uniform_in(0.05, 1.0);
            acc[a.base_station.index()] += cand.access_share[i];
            fh[a.base_station.index()] += cand.fronthaul_share[i];
            cmp[a.server.index()] += cand.compute_share[i];
        }
        for (i, a) in assignments.iter().enumerate() {
            cand.access_share[i] /= acc[a.base_station.index()];
            cand.fronthaul_share[i] /= fh[a.base_station.index()];
            cand.compute_share[i] /= cmp[a.server.index()];
        }
        cand.validate(&system).unwrap();
        let latency = latency_under(&system, &state, &cand).total();
        assert!(
            latency >= best_latency - 1e-9,
            "random allocation beat Lemma 1: {latency} < {best_latency}"
        );
    }
}

#[test]
fn bandwidth_shares_follow_square_root_rule() {
    // ψ^A ∝ √(d/h): the ratio of any two co-located devices' shares equals
    // the square root of the ratio of their d/h.
    let (system, state) = tiny_system(8, 503);
    let topo = system.topology();
    let k = BaseStationId(1);
    let n = topo.servers_reachable_from(k)[0];
    let assignments = vec![Assignment { base_station: k, server: n }; 8];
    let d = optimal_allocation(&system, &state, &assignments, &system.max_frequencies());
    for i in 0..8 {
        for j in 0..8 {
            let expected = ((state.data_bits[i] / state.spectral_efficiency[i][k.index()])
                / (state.data_bits[j] / state.spectral_efficiency[j][k.index()]))
            .sqrt();
            let actual = d.access_share[i] / d.access_share[j];
            assert!((actual - expected).abs() < 1e-9, "{actual} vs {expected}");
        }
    }
}
