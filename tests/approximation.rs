//! Approximation-quality integration tests: CGBA and BDMA against exact
//! optima on instances small enough to certify.

use eotora_core::baselines::ExactSolver;
use eotora_core::bdma::{solve_p2, BdmaConfig, CgbaSolver, P2aSolver};
use eotora_core::p2a::P2aProblem;
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_states::{PaperStateConfig, StateProvider};
use eotora_util::rng::Pcg32;

fn tiny_p2a(devices: usize, seed: u64) -> P2aProblem {
    let system = MecSystem::random(&SystemConfig::tiny(devices), seed);
    let mut provider = StateProvider::paper(system.topology(), &PaperStateConfig::default(), seed);
    let state = provider.observe(0, system.topology());
    P2aProblem::build(&system, &state, &system.min_frequencies())
}

#[test]
fn cgba_is_near_optimal_on_certifiable_instances() {
    // The paper reports CGBA(0) ≈ 1.02 × OPT (Fig. 4). On tiny instances we
    // can prove optimality and check the same band.
    let mut worst_ratio: f64 = 1.0;
    for seed in 0..10u64 {
        let p2a = tiny_p2a(5, 200 + seed);
        let mut rng = Pcg32::seed(seed);
        let report = ExactSolver { node_budget: 2_000_000, warm_start: false }
            .solve_with_report(&p2a, &mut rng);
        assert!(report.proven_optimal, "instance must be certifiable");
        let mut rng = Pcg32::seed(seed + 50);
        let cgba = CgbaSolver::default().solve(&p2a, &mut rng);
        let ratio = p2a.total_latency(&cgba) / report.latency;
        assert!(ratio <= 2.62 + 1e-9, "Theorem 2 violated: {ratio}");
        worst_ratio = worst_ratio.max(ratio);
    }
    // Empirical near-optimality, matching the paper's observation.
    assert!(worst_ratio < 1.25, "CGBA should be near optimal, worst ratio {worst_ratio}");
}

#[test]
fn bdma_more_rounds_and_lambda_zero_never_lose_to_lambda_high() {
    // Sanity across the BDMA stack: z=5, λ=0 should be at least as good on
    // the P2 objective as z=1, λ=0.12 with the same randomness.
    let system = MecSystem::random(&SystemConfig::paper_defaults(15), 31);
    let mut provider = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 31);
    let state = provider.observe(0, system.topology());
    let (v, q) = (100.0, 20.0);

    let mut strong = CgbaSolver::with_lambda(0.0);
    let mut weak = CgbaSolver::with_lambda(0.12);
    let mut rng_a = Pcg32::seed(1);
    let mut rng_b = Pcg32::seed(1);
    let good = solve_p2(
        &system,
        &state,
        v,
        q,
        &BdmaConfig { rounds: 5, ..Default::default() },
        &mut strong,
        &mut rng_a,
    );
    let rough = solve_p2(
        &system,
        &state,
        v,
        q,
        &BdmaConfig { rounds: 1, ..Default::default() },
        &mut weak,
        &mut rng_b,
    );
    assert!(good.objective <= rough.objective + 1e-9);
}

#[test]
fn exact_lower_bound_is_sound_under_any_budget() {
    // Truncated searches must never certify a bound above a feasible value.
    for seed in 0..5u64 {
        let p2a = tiny_p2a(7, 300 + seed);
        let mut rng = Pcg32::seed(seed);
        let full = ExactSolver { node_budget: 2_000_000, warm_start: false }
            .solve_with_report(&p2a, &mut rng);
        assert!(full.proven_optimal);
        for budget in [1usize, 10, 100, 1_000] {
            let mut rng = Pcg32::seed(seed);
            let truncated = ExactSolver { node_budget: budget, warm_start: true }
                .solve_with_report(&p2a, &mut rng);
            assert!(
                truncated.lower_bound <= full.latency + 1e-9,
                "budget {budget}: bound {} exceeds optimum {}",
                truncated.lower_bound,
                full.latency
            );
            assert!(truncated.latency >= full.latency - 1e-9, "incumbent beats optimum");
        }
    }
}

#[test]
fn game_potential_bounds_social_cost_identity() {
    // Across real instances: Σ_i T_i == Σ_r m_r p_r² and Φ ≤ Σ_i T_i ≤ 2Φ
    // (standard potential sandwich for affine congestion games).
    let p2a = tiny_p2a(10, 400);
    let game = p2a.game();
    let mut rng = Pcg32::seed(9);
    for _ in 0..50 {
        let profile = eotora_game::Profile::random(game, &mut rng);
        let total = profile.total_cost(game);
        let by_player: f64 = (0..game.num_players()).map(|i| profile.player_cost(game, i)).sum();
        assert!((total - by_player).abs() <= 1e-9 * total.max(1.0));
        let phi = profile.potential(game);
        assert!(phi <= total + 1e-9, "Φ ≤ T");
        assert!(total <= 2.0 * phi + 1e-9, "T ≤ 2Φ");
    }
}
