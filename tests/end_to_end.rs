//! End-to-end integration of Algorithm 1: observe → BDMA → Lemma 1 → queue.

use eotora_core::dpp::{DppConfig, EotoraDpp, SolverKind};
use eotora_core::system::{MecSystem, SystemConfig};
use eotora_sim::runner::run;
use eotora_sim::scenario::Scenario;
use eotora_states::{PaperStateConfig, StateProvider};

#[test]
fn budget_is_honored_over_long_horizon() {
    let result = run(&Scenario::paper(10, 17).with_horizon(240).with_v(80.0).with_bdma_rounds(1));
    // Theorem 4 eq. (29): time-average cost converges below the budget;
    // allow the O(V/T) transient at this horizon.
    assert!(
        result.average_cost <= result.budget + 0.05,
        "avg cost {} exceeds budget {}",
        result.average_cost,
        result.budget
    );
    // And the tail (converged regime) must be strictly within budget.
    let tail_cost = result.cost.tail_average(96);
    assert!(tail_cost <= result.budget + 0.03, "tail cost {tail_cost} vs budget {}", result.budget);
}

#[test]
fn infeasibly_small_budget_throttles_to_floor() {
    // A budget below the all-min-frequency cost cannot be met; DPP should
    // pin the fleet near its minimum frequencies (cost floor) while the
    // queue grows — but never crash or produce infeasible decisions.
    let result =
        run(&Scenario::paper(8, 18).with_horizon(60).with_budget(0.05).with_bdma_rounds(1));
    let floor = {
        let system = MecSystem::random(&SystemConfig::paper_defaults(8), 18);
        // Mean price of the embedded profile ≈ $0.048/kWh.
        system.energy_cost(0.048, &system.min_frequencies())
    };
    let tail_cost = result.cost.tail_average(24);
    assert!(
        tail_cost <= floor * 1.35,
        "throttled cost {tail_cost} should approach the floor {floor}"
    );
    // Queue grows roughly linearly (unsatisfiable constraint).
    let q = result.queue.values();
    assert!(q[59] > q[29], "queue should keep growing under an infeasible budget");
}

#[test]
fn latency_monotone_in_v_across_three_levels() {
    let latency = |v: f64| {
        run(&Scenario::paper(12, 19).with_horizon(96).with_v(v).with_bdma_rounds(1)).average_latency
    };
    let l10 = latency(10.0);
    let l100 = latency(100.0);
    let l1000 = latency(1000.0);
    assert!(l100 <= l10 + 1e-9, "V=100 ({l100}) vs V=10 ({l10})");
    assert!(l1000 <= l100 + 1e-9, "V=1000 ({l1000}) vs V=100 ({l100})");
}

#[test]
fn every_slot_decision_is_feasible_for_all_solvers() {
    for solver in [
        SolverKind::Cgba { lambda: 0.05 },
        SolverKind::Ropt,
        SolverKind::Greedy,
        SolverKind::Mcba { iterations: 200 },
    ] {
        let system = MecSystem::random(&SystemConfig::paper_defaults(6), 20);
        let mut states = StateProvider::paper(system.topology(), &PaperStateConfig::default(), 20);
        let mut dpp =
            EotoraDpp::new(system, DppConfig { solver, bdma_rounds: 2, ..Default::default() });
        for t in 0..8 {
            let beta = states.observe(t, dpp.system().topology());
            let step = dpp.step(&beta);
            step.outcome.decision.validate(dpp.system()).unwrap_or_else(|e| {
                panic!("{} produced infeasible decision at slot {t}: {e}", solver.name())
            });
        }
    }
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let scenario = Scenario::paper(8, 21).with_horizon(12).with_bdma_rounds(2);
    let a = run(&scenario);
    let b = run(&scenario);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.queue, b.queue);
}

#[test]
fn scenario_and_result_serde_roundtrip() {
    let scenario = Scenario::paper(6, 22).with_horizon(4).with_bdma_rounds(1);
    let result = run(&scenario);
    let sj = serde_json::to_string(&scenario).unwrap();
    let rj = serde_json::to_string(&result).unwrap();
    let s2: Scenario = serde_json::from_str(&sj).unwrap();
    let r2: eotora_sim::SimulationResult = serde_json::from_str(&rj).unwrap();
    assert_eq!(s2, scenario);
    // Floats may lose the last ULP through JSON text; compare within 1e-12.
    assert_eq!(r2.label, result.label);
    assert_eq!(r2.budget, result.budget);
    assert_eq!(r2.latency.len(), result.latency.len());
    for (a, b) in r2.latency.values().iter().zip(result.latency.values()) {
        assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0));
    }
    for (a, b) in r2.queue.values().iter().zip(result.queue.values()) {
        assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0));
    }
}

#[test]
fn bdma_dpp_beats_ropt_dpp_on_latency() {
    let bdma = run(&Scenario::paper(15, 23).with_horizon(48).with_bdma_rounds(2));
    let ropt = run(&Scenario::paper(15, 23)
        .with_horizon(48)
        .with_bdma_rounds(2)
        .with_solver(SolverKind::Ropt));
    assert!(
        bdma.average_latency < ropt.average_latency,
        "BDMA {} should beat ROPT {}",
        bdma.average_latency,
        ropt.average_latency
    );
    // Both respect the budget (the constraint side is solver-independent).
    assert!(ropt.average_cost <= ropt.budget + 0.08);
}

#[test]
fn queue_tracks_price_after_convergence() {
    // In the converged regime the queue should grow during expensive slots
    // and shrink in cheap ones (the Fig. 7 narrative), measured as a
    // positive correlation between price and queue increments.
    let result = run(&Scenario::paper(12, 24).with_horizon(240).with_v(60.0).with_bdma_rounds(1));
    let q = result.queue.values();
    let p = result.price.values();
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    for t in 120..q.len() {
        xs.push(p[t]);
        ys.push(q[t] - q[t - 1]);
    }
    let mx = xs.iter().sum::<f64>() / xs.len() as f64;
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    assert!(cov > 0.0, "queue increments should correlate positively with price");
}
