#!/usr/bin/env bash
# Tier-1 gate plus lint gates. Everything runs offline: the registry
# stand-ins under vendor/ are wired through [patch.crates-io] and
# .cargo/config.toml pins cargo to offline mode.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> slot_solve bench smoke (quick mode)"
EOTORA_QUICK=1 cargo bench -p eotora-bench --bench slot_solve

echo "==> slot_solve regression guard (engine p50 speedup >= 1.5x at 30 devices)"
awk '
  /"devices":/ { dev = $2; gsub(/[^0-9]/, "", dev) }
  /"p50_speedup":/ && dev == 30 {
    val = $2; gsub(/[^0-9.]/, "", val); found = 1
    if (val + 0 < 1.5) {
      printf "FAIL: engine p50 speedup %.2fx < 1.5x at 30 devices\n", val
      exit 1
    }
    printf "OK: engine p50 speedup %.2fx at 30 devices\n", val
  }
  END { if (!found) { print "FAIL: no 30-device row in quick bench output"; exit 1 } }
' target/BENCH_slot_solve.quick.json

echo "ci: all green"
