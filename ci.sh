#!/usr/bin/env bash
# Tier-1 gate plus lint gates. Everything runs offline: the registry
# stand-ins under vendor/ are wired through [patch.crates-io] and
# .cargo/config.toml pins cargo to offline mode.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> slot_solve bench smoke (quick mode)"
EOTORA_QUICK=1 cargo bench -p eotora-bench --bench slot_solve

echo "==> slot_solve regression guard (engine p50 speedup >= 1.5x at 30 devices)"
awk '
  /"devices":/ { dev = $2; gsub(/[^0-9]/, "", dev) }
  /"p50_speedup":/ && dev == 30 {
    val = $2; gsub(/[^0-9.]/, "", val); found = 1
    if (val + 0 < 1.5) {
      printf "FAIL: engine p50 speedup %.2fx < 1.5x at 30 devices\n", val
      exit 1
    }
    printf "OK: engine p50 speedup %.2fx at 30 devices\n", val
  }
  END { if (!found) { print "FAIL: no 30-device row in quick bench output"; exit 1 } }
' target/BENCH_slot_solve.quick.json

echo "==> shard identity guard (sharded arm bit-identical, plan non-trivial)"
awk '
  /"shard_scales":/ { in_shards = 1 }
  in_shards && /"shards_used":/ {
    val = $2; gsub(/[^0-9]/, "", val); found = 1
    if (val + 0 < 2) {
      printf "FAIL: sharded bench row used %d shard(s); island plan collapsed\n", val
      exit 1
    }
    printf "OK: sharded bench row solved %d shards (identity asserted in-bench)\n", val
  }
  END { if (!found) { print "FAIL: no shard_scales row in quick bench output"; exit 1 } }
' target/BENCH_slot_solve.quick.json

echo "==> shard speedup guard (>= 2x at 10k devices, skipped under 4 workers)"
# Reads the committed full-scale bench artifact: the 2x bar only means
# something with real parallelism, so boxes under 4 workers just report.
awk '
  /"shard_scales":/ { in_shards = 1 }
  in_shards && /"devices":/ { dev = $2; gsub(/[^0-9]/, "", dev) }
  in_shards && /"workers":/ { workers = $2; gsub(/[^0-9]/, "", workers) }
  in_shards && /"shard_speedup":/ && dev == 10000 {
    val = $2; gsub(/[^0-9.]/, "", val); found = 1
    if (workers + 0 < 4) {
      printf "SKIP: shard speedup %.2fx at 10k devices recorded on %d worker(s)\n", val, workers
      next
    }
    if (val + 0 < 2.0) {
      printf "FAIL: shard speedup %.2fx < 2x at 10k devices on %d workers\n", val, workers
      exit 1
    }
    printf "OK: shard speedup %.2fx at 10k devices on %d workers\n", val, workers
  }
  END { if (!found) { print "FAIL: no 10k shard row in BENCH_slot_solve.json"; exit 1 } }
' BENCH_slot_solve.json

echo "==> journal overhead guard (slot journaling <= 5% of engine p50 at 30 devices)"
awk '
  /"devices":/ { dev = $2; gsub(/[^0-9]/, "", dev) }
  /"journal_overhead_pct":/ && dev == 30 {
    val = $2; gsub(/[^0-9.]/, "", val); found = 1
    if (val + 0 > 5.0) {
      printf "FAIL: journal overhead %.2f%% > 5%% of engine p50 at 30 devices\n", val
      exit 1
    }
    printf "OK: journal overhead %.2f%% of engine p50 at 30 devices\n", val
  }
  END { if (!found) { print "FAIL: no 30-device journal row in quick bench output"; exit 1 } }
' target/BENCH_slot_solve.quick.json

echo "==> live telemetry overhead guard (obs hot path <= 2% of engine p50 at 30 devices)"
awk '
  /"devices":/ { dev = $2; gsub(/[^0-9]/, "", dev) }
  /"live_overhead_pct":/ && dev == 30 {
    val = $2; gsub(/[^0-9.]/, "", val); found = 1
    if (val + 0 > 2.0) {
      printf "FAIL: live telemetry overhead %.2f%% > 2%% of engine p50 at 30 devices\n", val
      exit 1
    }
    printf "OK: live telemetry overhead %.2f%% of engine p50 at 30 devices\n", val
  }
  END { if (!found) { print "FAIL: no 30-device live row in quick bench output"; exit 1 } }
' target/BENCH_slot_solve.quick.json

echo "==> speculation hit-rate guard (>= 0.5 on periodic-price states)"
awk '
  /"speculation":/ { in_spec = 1 }
  in_spec && /"spec_hit_rate":/ {
    val = $2; gsub(/[^0-9.]/, "", val); found = 1
    if (val + 0 < 0.5) {
      printf "FAIL: speculation hit rate %.2f < 0.5 on periodic-price states\n", val
      exit 1
    }
    printf "OK: speculation hit rate %.2f on periodic-price states\n", val
  }
  END { if (!found) { print "FAIL: no speculation row in quick bench output"; exit 1 } }
' target/BENCH_slot_solve.quick.json

echo "==> speculation critical-path guard (repair-only p50 >= 1.3x faster than warm engine)"
awk '
  /"speculation":/ { in_spec = 1 }
  in_spec && /"critical_path_speedup":/ {
    val = $2; gsub(/[^0-9.]/, "", val); found = 1
    if (val + 0 < 1.3) {
      printf "FAIL: critical-path speedup %.2fx < 1.3x over the warm engine\n", val
      exit 1
    }
    printf "OK: critical-path speedup %.2fx over the warm engine\n", val
  }
  END { if (!found) { print "FAIL: no speculation speedup in quick bench output"; exit 1 } }
' target/BENCH_slot_solve.quick.json

echo "==> chaos smoke (seeded fault trace through the robust engine)"
# Short scripted trace: a server crash, a fronthaul flap, and a corrupt-state
# burst over 40 slots. Gate: the run completes (zero panics), every fault
# class fires, and the virtual queue stays bounded. The release binary was
# built by the first step.
CHAOS_DIR="$(mktemp -d)"
trap 'rm -rf "$CHAOS_DIR"' EXIT
./target/release/eotora template --devices 10 --seed 11 \
  | sed 's/"horizon": [0-9]*/"horizon": 40/' > "$CHAOS_DIR/scenario.json"
cat > "$CHAOS_DIR/faults.json" <<'EOF'
{"events": [
  {"slot": 5,  "action": {"ServerDown": {"server": 1}}},
  {"slot": 10, "action": {"LinkDown": {"station": 0, "server": 3}}},
  {"slot": 14, "action": {"CorruptState": {"slots": 3}}},
  {"slot": 20, "action": {"ServerUp": {"server": 1}}},
  {"slot": 24, "action": {"LinkUp": {"station": 0, "server": 3}}}
]}
EOF
./target/release/eotora run "$CHAOS_DIR/scenario.json" \
  --fault-trace "$CHAOS_DIR/faults.json" --slot-deadline-ms 250 \
  --out "$CHAOS_DIR/result.json" > "$CHAOS_DIR/summary.txt"
cat "$CHAOS_DIR/summary.txt"
python3 - "$CHAOS_DIR/result.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
c = r["counters"]
assert len(r["latency"]["values"]) == 40, "chaos run did not complete 40 slots"
assert all(v > 0 and v == v for v in r["latency"]["values"]), "non-finite slot latency"
assert c.get("fault.masked_resources", 0) > 0, "masking never fired"
assert c.get("fault.state_substitutions", 0) > 0, "sanitizer never fired"
assert max(r["queue"]["values"]) < 50.0, "virtual queue wound up"
print("OK: chaos smoke — 40 slots, masking + sanitization fired, queue bounded")
EOF

echo "==> telemetry smoke (metrics snapshots, exposition, health, forced postmortem)"
# A 100-slot run snapshotting its live registry every 10 slots, the same run
# exported as a Prometheus exposition, `eotora health` on both, and a
# sanitizer-off corrupt-state run that must escalate the robust ladder and
# dump a valid flight-recorder postmortem.
TEL_DIR="$(mktemp -d)"
trap 'rm -rf "$CHAOS_DIR" "$TEL_DIR"' EXIT
./target/release/eotora template --devices 8 --seed 31 \
  | sed 's/"horizon": [0-9]*/"horizon": 100/' > "$TEL_DIR/scenario.json"
./target/release/eotora run "$TEL_DIR/scenario.json" \
  --metrics-out "$TEL_DIR/metrics.jsonl" --metrics-every 10 > "$TEL_DIR/clean.txt"
grep -q "^health: ok" "$TEL_DIR/clean.txt"
./target/release/eotora run "$TEL_DIR/scenario.json" \
  --metrics-out "$TEL_DIR/metrics.prom" > /dev/null
./target/release/eotora health "$TEL_DIR/metrics.jsonl" | grep -q "overall ok"
./target/release/eotora health "$TEL_DIR/metrics.prom" | grep -q "overall ok"
python3 - "$TEL_DIR/metrics.jsonl" "$TEL_DIR/metrics.prom" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
assert len(lines) == 11, f"expected 11 snapshots (10 periodic + final), got {len(lines)}"
assert lines[-1]["counters"]["slots"] == 100, "final snapshot missed slots"
assert all("deltas" in l for l in lines), "snapshot lines are missing deltas"
prom = open(sys.argv[2]).read().splitlines()
samples = [l for l in prom if l and not l.startswith("#")]
assert all(len(l.rsplit(" ", 1)) == 2 for l in samples), "malformed exposition sample"
assert any(l.startswith("eotora_slots_total 100") for l in samples), "slots counter missing"
assert any("_bucket{le=" in l for l in samples), "no histogram buckets in exposition"
print("OK: metrics snapshots + exposition well-formed")
EOF
cat > "$TEL_DIR/faults.json" <<'EOF'
{"events": [{"slot": 5, "action": {"CorruptState": {"slots": 25}}}]}
EOF
./target/release/eotora run "$TEL_DIR/scenario.json" \
  --fault-trace "$TEL_DIR/faults.json" --no-sanitize \
  --metrics-out "$TEL_DIR/faulted.jsonl" --metrics-every 10 > "$TEL_DIR/faulted.txt"
grep -q "postmortems" "$TEL_DIR/faulted.txt"
./target/release/eotora health "$TEL_DIR/faulted.jsonl" | grep -q "worst critical"
python3 - "$TEL_DIR" <<'EOF'
import glob, json, sys
dumps = glob.glob(sys.argv[1] + "/flight-slot*.jsonl")
assert dumps, "no flight-recorder postmortems dumped"
for path in dumps:
    for line in open(path):
        rec = json.loads(line)
        assert {"seq", "t_ns", "type"} <= rec.keys(), f"bad postmortem line in {path}"
print(f"OK: forced escalation dumped {len(dumps)} valid postmortem(s)")
EOF

echo "==> durability smoke (kill at slot 57, resume, bit-for-bit CSV diff)"
# A 100-slot run checkpointed every 10 slots is killed mid-flight at slot 57
# and resumed from its checkpoint directory. Gate: the resumed run's per-slot
# CSV matches the uninterrupted reference exactly once wall-clock columns
# (solve_time_s, stage_*_s) and the durability.* counter columns are dropped.
DUR_DIR="$(mktemp -d)"
trap 'rm -rf "$CHAOS_DIR" "$TEL_DIR" "$DUR_DIR"' EXIT
./target/release/eotora template --devices 8 --seed 23 \
  | sed 's/"horizon": [0-9]*/"horizon": 100/' > "$DUR_DIR/scenario.json"
./target/release/eotora run "$DUR_DIR/scenario.json" --csv "$DUR_DIR/ref" > /dev/null
./target/release/eotora run "$DUR_DIR/scenario.json" \
  --checkpoint-dir "$DUR_DIR/ckpt" --checkpoint-every 10 --kill-at-slot 57 \
  | grep -q "interrupted after slot 57"
./target/release/eotora run --resume "$DUR_DIR/ckpt" --csv "$DUR_DIR/resumed" > /dev/null
python3 - "$DUR_DIR/ref_slots.csv" "$DUR_DIR/resumed_slots.csv" <<'EOF'
import sys

def decisions(path):
    rows = [line.rstrip("\n").split(",") for line in open(sys.argv[1] if path == "ref" else sys.argv[2])]
    header = rows[0]
    keep = [
        i
        for i, name in enumerate(header)
        if name != "solve_time_s"
        and not name.startswith("stage_")
        and not name.startswith("ctr_durability.")
    ]
    return [[row[i] for i in keep] for row in rows]

ref, resumed = decisions("ref"), decisions("resumed")
assert len(ref) == 101, f"reference CSV has {len(ref) - 1} slots, expected 100"
assert ref == resumed, "resumed run diverged from the uninterrupted reference"
print("OK: durability smoke — kill at 57, resume, 100 slots bit-identical")
EOF

echo "==> shard smoke (island fleet, --shards auto vs sequential, bit-for-bit CSV diff)"
# A 500-device, 8-island scale-out scenario run twice: the sequential
# engine and the sharded engine (`--shards auto`). The island resource
# graph is separable, so the decision series must match exactly once
# wall-clock columns are dropped.
SHARD_DIR="$(mktemp -d)"
trap 'rm -rf "$CHAOS_DIR" "$TEL_DIR" "$DUR_DIR" "$SHARD_DIR"' EXIT
./target/release/eotora template --devices 500 --islands 8 --seed 41 \
  | sed 's/"horizon": [0-9]*/"horizon": 12/' > "$SHARD_DIR/scenario.json"
./target/release/eotora run "$SHARD_DIR/scenario.json" --csv "$SHARD_DIR/seq" > /dev/null
./target/release/eotora run "$SHARD_DIR/scenario.json" --shards auto \
  --csv "$SHARD_DIR/sharded" --out "$SHARD_DIR/sharded.json" > /dev/null
python3 - "$SHARD_DIR/seq_slots.csv" "$SHARD_DIR/sharded_slots.csv" "$SHARD_DIR/sharded.json" <<'EOF'
import json, sys

def decisions(path):
    rows = [line.rstrip("\n").split(",") for line in open(path)]
    header = rows[0]
    keep = [
        i
        for i, name in enumerate(header)
        if name != "solve_time_s"
        and not name.startswith("stage_")
        and not name.startswith("ctr_shard.")
    ]
    return [[row[i] for i in keep] for row in rows]

seq, sharded = decisions(sys.argv[1]), decisions(sys.argv[2])
assert len(seq) == 13, f"sequential CSV has {len(seq) - 1} slots, expected 12"
assert seq == sharded, "sharded run diverged from the sequential engine"
counters = json.load(open(sys.argv[3]))["counters"]
solves = counters.get("shard.solves", 0)
assert solves > 0, "sharded run never entered the sharded solver"
print(f"OK: shard smoke — 12 slots bit-identical, {solves} shard solves")
EOF

echo "==> speculation smoke (200-slot periodic scenario, --speculate vs plain, bit-for-bit)"
# Fully deterministic periodic-price states: the periodic-price predictor
# is exact after one 24-slot period, so a 200-slot run must adopt >= 50%
# of its slots AND stay decision-identical to the plain engine. Adopted
# slots report no solver wall time or BDMA telemetry (the staged solve ran
# off the critical path), so the comparison drops solve_time_s, stage_*,
# bdma_rounds, and ctr_spec.* columns.
SPEC_DIR="$(mktemp -d)"
trap 'rm -rf "$CHAOS_DIR" "$TEL_DIR" "$DUR_DIR" "$SHARD_DIR" "$SPEC_DIR"' EXIT
./target/release/eotora template --devices 8 --seed 47 > "$SPEC_DIR/base.json"
python3 - "$SPEC_DIR/base.json" "$SPEC_DIR/scenario.json" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
s["states"].update({
    "task_cycles_range": [125e6, 125e6],
    "data_bits_range": [6.5e6, 6.5e6],
    "spectral_efficiency_range": [32.0, 32.0],
    "price_noise_rel": 0.0,
    "period": 24,
})
s["horizon"] = 200
json.dump(s, open(sys.argv[2], "w"))
EOF
./target/release/eotora run "$SPEC_DIR/scenario.json" --csv "$SPEC_DIR/plain" > /dev/null
./target/release/eotora run "$SPEC_DIR/scenario.json" \
  --speculate --spec-predictor periodic-price --spec-tolerance 0 \
  --csv "$SPEC_DIR/spec" --out "$SPEC_DIR/spec.json" > /dev/null
python3 - "$SPEC_DIR/plain_slots.csv" "$SPEC_DIR/spec_slots.csv" "$SPEC_DIR/spec.json" <<'EOF'
import json, sys

def decisions(path):
    rows = [line.rstrip("\n").split(",") for line in open(path)]
    header = rows[0]
    keep = [
        i
        for i, name in enumerate(header)
        if name != "solve_time_s"
        and name != "bdma_rounds"
        and not name.startswith("stage_")
        and not name.startswith("ctr_spec.")
    ]
    return rows[0], [[row[i] for i in keep] for row in rows]

plain_header, plain = decisions(sys.argv[1])
spec_header, spec = decisions(sys.argv[2])
assert len(plain) == 201, f"plain CSV has {len(plain) - 1} slots, expected 200"
assert plain == spec, "speculative run diverged from the plain engine"
assert "ctr_spec.hits" in spec_header, "spec.hits counter column missing from CSV"
r = json.load(open(sys.argv[3]))
hits = r["counters"].get("spec.hits", 0)
assert hits >= 100, f"hit rate {hits / 200:.2f} < 0.5 on the periodic scenario"
assert abs(r["average_latency"]) > 0, "degenerate run"
print(f"OK: speculation smoke — 200 slots bit-identical, {hits} adopted ({hits / 2:.0f}% hit rate)")
EOF

echo "==> server smoke (daemon stream vs batch, hot-reload, SIGTERM + restart, bit-for-bit)"
# A 200-slot state stream fed to the daemon through a FIFO. Mid-stream it
# gets a garbage hot-reload (must reject, old config stays live), a good
# one (must apply), then SIGTERM after slot 120 (graceful: snapshot at the
# exact cursor). The restart resends the full stream — the solved prefix
# coalesces — and the concatenated decision records must match the batch
# engine's CSV bit for bit with zero duplicate slots.
SRV_DIR="$(mktemp -d)"
trap 'rm -rf "$CHAOS_DIR" "$TEL_DIR" "$DUR_DIR" "$SHARD_DIR" "$SPEC_DIR" "$SRV_DIR"' EXIT
./target/release/eotora template --devices 8 --seed 53 \
  | sed 's/"horizon": [0-9]*/"horizon": 200/' > "$SRV_DIR/scenario.json"
./target/release/eotora run "$SRV_DIR/scenario.json" --csv "$SRV_DIR/ref" > /dev/null
./target/release/eotora states "$SRV_DIR/scenario.json" --slots 200 > "$SRV_DIR/states.jsonl"
cat > "$SRV_DIR/server.toml" <<EOF
[scenario]
path = "$SRV_DIR/scenario.json"
[admission]
capacity = 64
policy = "block"
[durability]
dir = "$SRV_DIR/ckpt"
checkpoint_every = 10
fsync = "os"
EOF
sed 's/capacity = 64/capacity = 96/' "$SRV_DIR/server.toml" > "$SRV_DIR/good.toml"
echo "definitely = not = toml" > "$SRV_DIR/garbage.toml"
{
  head -n 10 "$SRV_DIR/states.jsonl"
  printf '{"control": "reload", "path": "%s"}\n' "$SRV_DIR/garbage.toml"
  printf '{"control": "reload", "path": "%s"}\n' "$SRV_DIR/good.toml"
  sed -n '11,120p' "$SRV_DIR/states.jsonl"
} > "$SRV_DIR/phase1.jsonl"
mkfifo "$SRV_DIR/input.pipe"
./target/release/eotora serve --config "$SRV_DIR/server.toml" \
  --input "$SRV_DIR/input.pipe" > "$SRV_DIR/dec1.jsonl" 2> "$SRV_DIR/ev1.log" &
SRV_PID=$!
sleep 300 > "$SRV_DIR/input.pipe" &  # hold the write end open past the payload
HOLD_PID=$!
cat "$SRV_DIR/phase1.jsonl" > "$SRV_DIR/input.pipe"
reached=0
for _ in $(seq 1 600); do
  if [ "$(wc -l < "$SRV_DIR/dec1.jsonl")" -ge 120 ]; then reached=1; break; fi
  sleep 0.1
done
if [ "$reached" != 1 ]; then echo "FAIL: server never reached slot 120"; exit 1; fi
kill -TERM "$SRV_PID"
wait "$SRV_PID"
kill "$HOLD_PID" 2> /dev/null || true
grep -q '"event":"reload_rejected"' "$SRV_DIR/ev1.log"
grep -q '"event":"reload_applied"' "$SRV_DIR/ev1.log"
./target/release/eotora serve --config "$SRV_DIR/server.toml" \
  --input "$SRV_DIR/states.jsonl" > "$SRV_DIR/dec2.jsonl" 2> "$SRV_DIR/ev2.log"
grep -q '"resumed_at_slot":120' "$SRV_DIR/ev2.log"
python3 - "$SRV_DIR/ref_slots.csv" "$SRV_DIR/dec1.jsonl" "$SRV_DIR/dec2.jsonl" <<'EOF'
import json, sys
rows = [l.rstrip("\n").split(",") for l in open(sys.argv[1])]
idx = {name: i for i, name in enumerate(rows[0])}
ref = {int(r[idx["slot"]]): r for r in rows[1:]}
records = {}
for path in sys.argv[2:4]:
    for line in open(path):
        rec = json.loads(line)
        assert rec["slot"] not in records, f"duplicate slot {rec['slot']} after graceful restart"
        records[rec["slot"]] = rec
assert len(records) == 200, f"decision streams cover {len(records)} slots, expected 200"
for s, rec in sorted(records.items()):
    for col in ("latency_s", "cost_usd", "queue", "price", "bdma_rounds"):
        got, want = float(rec[col]), float(ref[s][idx[col]])
        assert got == want, f"slot {s} {col}: server {got} != batch {want}"
print("OK: server smoke — 200 slots bit-identical across hot-reload + SIGTERM + restart")
EOF

echo "==> federation smoke (3 regions, 200 slots, lossy link + 40-slot partition)"
# A 3-region federation over a seeded faulty peer link: drops, duplication,
# delay, reordering, and a full partition of region 2 for slots 80..120.
# Gates: the run completes (zero panics), the degradation ladder fires and
# heals, the fleet time-average cost stays within 2% of the shared budget
# and within 5% of a single global controller's, and a clean-link Fixed
# federation is decision-identical to N independent fixed-share runs.
FED_DIR="$(mktemp -d)"
trap 'rm -rf "$CHAOS_DIR" "$TEL_DIR" "$DUR_DIR" "$SHARD_DIR" "$SPEC_DIR" "$SRV_DIR" "$FED_DIR"' EXIT
cat > "$FED_DIR/trace.json" <<'EOF'
{"seed": 11, "drop_prob": 0.25, "dup_prob": 0.1, "delay_prob": 0.2,
 "max_delay_slots": 3, "reorder_prob": 0.2,
 "partitions": [{"from_slot": 80, "to_slot": 120, "regions": [2]}]}
EOF
./target/release/eotora federate --regions 3 --devices 24 --horizon 200 \
  --sync-every 10 --seed 11 --link-faults "$FED_DIR/trace.json" \
  --out "$FED_DIR/fed.json" > "$FED_DIR/fed.txt"
cat "$FED_DIR/fed.txt"
./target/release/eotora template --devices 24 --seed 11 \
  | sed 's/"horizon": [0-9]*/"horizon": 200/' > "$FED_DIR/global.json"
./target/release/eotora run "$FED_DIR/global.json" --out "$FED_DIR/globalres.json" > /dev/null
python3 - "$FED_DIR/fed.json" "$FED_DIR/globalres.json" <<'EOF'
import json, sys
fed = json.load(open(sys.argv[1]))
glob = json.load(open(sys.argv[2]))
budget = fed["config"]["total_budget"]
cost = fed["fleet_average_cost"]
assert cost <= 1.02 * budget, f"fleet cost {cost:.4f} > 2% over budget {budget:.4f}"
assert glob["average_cost"] <= 1.02 * budget, "global baseline blew the budget"
assert cost <= glob["average_cost"] + 0.05 * budget, (
    f"federated cost {cost:.4f} more than 5% of budget above global "
    f"{glob['average_cost']:.4f}"
)
for i, region in enumerate(fed["regions"]):
    values = region["latency"]["values"]
    assert len(values) == 200, f"region {i} completed {len(values)} slots, expected 200"
    assert all(v > 0 and v == v for v in values), f"region {i}: non-finite slot latency"
c = fed["counters"]
assert c.get("fed.partitions", 0) > 0, "partition window never tripped the ladder"
assert c.get("fed.stale_epochs", 0) > 0, "no stale epochs under a 40-slot partition"
assert c.get("fed.gossip_dropped", 0) > 0, "lossy link never dropped a frame"
assert c.get("fed.budget_rebalances", 0) > 0, "shares never rebalanced"
share_sum = sum(fed["final_shares"])
assert share_sum <= 1.0 + 1e-9, f"final shares sum to {share_sum} > 1"
print(
    f"OK: federation smoke — fleet cost {cost:.4f} <= 1.02x budget, "
    f"{c['fed.partitions']} partition transition(s), "
    f"{c['fed.stale_epochs']} stale epoch(s) healed"
)
EOF
./target/release/eotora federate --regions 3 --devices 24 --horizon 200 \
  --sync-every 10 --seed 11 --policy fixed --csv-dir "$FED_DIR/fed-csv" > /dev/null
./target/release/eotora federate --regions 3 --devices 24 --horizon 200 \
  --sync-every 10 --seed 11 --policy fixed --standalone \
  --csv-dir "$FED_DIR/solo-csv" > /dev/null
python3 - "$FED_DIR" <<'EOF'
import csv, sys

def decisions(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    header = rows[0]
    keep = [
        i
        for i, name in enumerate(header)
        if name != "solve_time_s"
        and not name.startswith("stage_")
        and not name.startswith("ctr_fed.")
    ]
    return [[row[i] for i in keep] for row in rows]

for i in range(3):
    fed = decisions(f"{sys.argv[1]}/fed-csv/region-{i}.csv")
    solo = decisions(f"{sys.argv[1]}/solo-csv/region-{i}.csv")
    assert len(fed) == 201, f"region {i} CSV has {len(fed) - 1} slots, expected 200"
    assert fed == solo, f"region {i}: clean-link federation diverged from fixed-share run"
print("OK: clean-link Fixed federation decision-identical to independent fixed-share runs")
EOF

echo "ci: all green"
