#!/usr/bin/env bash
# Tier-1 gate plus lint gates. Everything runs offline: the registry
# stand-ins under vendor/ are wired through [patch.crates-io] and
# .cargo/config.toml pins cargo to offline mode.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> slot_solve bench smoke (quick mode)"
EOTORA_QUICK=1 cargo bench -p eotora-bench --bench slot_solve

echo "ci: all green"
